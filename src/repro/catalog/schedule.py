"""Class schedules and offering-probability models.

Two concerns live here:

* :class:`Schedule` — the deterministic schedule ``S_i`` of Section 2: for
  each course, the set of terms it is offered.  This is what the
  deadline-driven and goal-driven algorithms consult.
* :class:`OfferingModel` — the probabilistic view of §4.3.1's
  reliability ranking: ``prob(c_i, s)``, the probability that course ``c_i``
  is offered in semester ``s``.  Universities release final schedules only
  one or two terms ahead, so offerings inside that release horizon have
  probability 1 (or 0) while later terms fall back to historical frequency.

:class:`HistoricalOfferingModel` implements exactly that split and can also
*project* a schedule forward (every future term where the probability is
positive), which is how ranked exploration searches beyond the released
horizon.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Tuple,
)

from ..errors import CatalogError
from ..semester import Term, term_range

__all__ = [
    "Schedule",
    "OfferingModel",
    "DeterministicOfferings",
    "HistoricalOfferingModel",
]


class Schedule:
    """Per-course offered-term sets (the paper's ``S_i``).

    A ``Schedule`` is an immutable mapping from course id to a frozenset of
    :class:`~repro.semester.Term`.  Courses absent from the mapping are never
    offered.
    """

    __slots__ = ("_offerings", "_by_term")

    def __init__(self, offerings: Mapping[str, Iterable[Term]] = ()):
        table: Dict[str, FrozenSet[Term]] = {}
        for course_id, terms in dict(offerings).items():
            terms = frozenset(terms)
            for term in terms:
                if not isinstance(term, Term):
                    raise TypeError(f"schedule terms must be Term, got {term!r}")
            table[course_id] = terms
        self._offerings = table
        by_term: Dict[Term, set] = {}
        for course_id, terms in table.items():
            for term in terms:
                by_term.setdefault(term, set()).add(course_id)
        self._by_term = {term: frozenset(ids) for term, ids in by_term.items()}

    # -- queries -------------------------------------------------------------

    def offerings(self, course_id: str) -> FrozenSet[Term]:
        """The set of terms ``course_id`` is offered (empty if unknown)."""
        return self._offerings.get(course_id, frozenset())

    def is_offered(self, course_id: str, term: Term) -> bool:
        """Whether ``course_id`` is offered in ``term``."""
        return term in self._offerings.get(course_id, frozenset())

    def offered_in(self, term: Term) -> FrozenSet[str]:
        """All course ids offered in ``term``."""
        return self._by_term.get(term, frozenset())

    def offered_between(self, start: Term, end: Term) -> FrozenSet[str]:
        """Course ids offered in at least one term of ``[start, end]``.

        This is the ``C_offered`` set of the course-availability pruning
        strategy (§4.2.2).
        """
        result: set = set()
        for term in term_range(start, end):
            result |= self.offered_in(term)
        return frozenset(result)

    def course_ids(self) -> FrozenSet[str]:
        """Every course id the schedule mentions."""
        return frozenset(self._offerings)

    def terms(self) -> FrozenSet[Term]:
        """Every term with at least one offering."""
        return frozenset(self._by_term)

    def span(self) -> Optional[Tuple[Term, Term]]:
        """``(first, last)`` offered terms, or ``None`` when empty."""
        if not self._by_term:
            return None
        ordered = sorted(self._by_term)
        return ordered[0], ordered[-1]

    def __contains__(self, course_id: object) -> bool:
        return course_id in self._offerings

    def __iter__(self) -> Iterator[str]:
        return iter(self._offerings)

    def __len__(self) -> int:
        return len(self._offerings)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schedule):
            return self._offerings == other._offerings
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset((cid, terms) for cid, terms in self._offerings.items()))

    def __repr__(self) -> str:
        return f"Schedule({len(self._offerings)} courses, {len(self._by_term)} terms)"

    # -- derivation ------------------------------------------------------------

    def merged_with(self, other: "Schedule") -> "Schedule":
        """Union of two schedules (per-course term-set union)."""
        merged: Dict[str, FrozenSet[Term]] = dict(self._offerings)
        for course_id in other.course_ids():
            merged[course_id] = merged.get(course_id, frozenset()) | other.offerings(course_id)
        return Schedule(merged)

    def restricted_to(self, start: Term, end: Term) -> "Schedule":
        """The sub-schedule covering only terms in ``[start, end]``."""
        window = set(term_range(start, end))
        return Schedule(
            {
                course_id: terms & window
                for course_id, terms in self._offerings.items()
                if terms & window
            }
        )

    def without_courses(self, course_ids: AbstractSet[str]) -> "Schedule":
        """A copy with the given courses removed (student avoid-lists)."""
        return Schedule(
            {
                course_id: terms
                for course_id, terms in self._offerings.items()
                if course_id not in course_ids
            }
        )

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation; inverse of :meth:`from_dict`."""
        return {
            course_id: sorted(str(t) for t in terms)
            for course_id, terms in sorted(self._offerings.items())
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Iterable[str]]) -> "Schedule":
        """Rebuild from :meth:`to_dict` output (term names parsed)."""
        return cls(
            {
                course_id: frozenset(Term.parse(text) for text in terms)
                for course_id, terms in data.items()
            }
        )


class OfferingModel:
    """Abstract probability model ``prob(c_i, s)`` (§4.3.1)."""

    def probability(self, course_id: str, term: Term) -> float:
        """Probability that ``course_id`` is offered in ``term``."""
        raise NotImplementedError

    def selection_probability(self, course_ids: Iterable[str], term: Term) -> float:
        """Probability that *every* course in a selection is offered —
        the product the paper uses as the reliability edge cost."""
        result = 1.0
        for course_id in course_ids:
            result *= self.probability(course_id, term)
        return result

    def projected_schedule(
        self, course_ids: Iterable[str], start: Term, end: Term, threshold: float = 0.0
    ) -> Schedule:
        """A :class:`Schedule` listing each term in ``[start, end]`` where a
        course's offering probability exceeds ``threshold``.

        Ranked exploration over uncertain future terms runs the ordinary
        algorithms on this projected schedule while the reliability ranking
        discounts the less certain branches.
        """
        offerings: Dict[str, FrozenSet[Term]] = {}
        terms = list(term_range(start, end))
        for course_id in course_ids:
            offered = frozenset(
                term for term in terms if self.probability(course_id, term) > threshold
            )
            if offered:
                offerings[course_id] = offered
        return Schedule(offerings)


class DeterministicOfferings(OfferingModel):
    """An :class:`OfferingModel` wrapping a fixed schedule: 1.0 or 0.0."""

    def __init__(self, schedule: Schedule):
        self._schedule = schedule

    def probability(self, course_id: str, term: Term) -> float:
        return 1.0 if self._schedule.is_offered(course_id, term) else 0.0


class HistoricalOfferingModel(OfferingModel):
    """Released-schedule certainty plus historical frequency beyond it.

    Parameters
    ----------
    released:
        The officially released schedule; offerings in terms up to
        ``release_horizon_end`` have probability 1 (offered) or 0 (not).
    release_horizon_end:
        Last term covered by the released schedule.
    season_frequency:
        ``{(course_id, season): p}`` — historical probability that the
        course is offered in that season of an arbitrary future year.
        Missing entries default to 0.
    """

    def __init__(
        self,
        released: Schedule,
        release_horizon_end: Term,
        season_frequency: Mapping[Tuple[str, str], float],
    ):
        for key, p in season_frequency.items():
            if not 0.0 <= p <= 1.0:
                raise CatalogError(f"probability for {key!r} out of range: {p}")
        self._released = released
        self._horizon_end = release_horizon_end
        self._frequency = dict(season_frequency)

    @property
    def release_horizon_end(self) -> Term:
        """Last term for which the schedule is certain."""
        return self._horizon_end

    def probability(self, course_id: str, term: Term) -> float:
        if term <= self._horizon_end:
            return 1.0 if self._released.is_offered(course_id, term) else 0.0
        return self._frequency.get((course_id, term.season), 0.0)

    @classmethod
    def from_history(
        cls,
        history: Schedule,
        history_start: Term,
        history_end: Term,
        released: Schedule,
        release_horizon_end: Term,
    ) -> "HistoricalOfferingModel":
        """Estimate per-season frequencies from a multi-year history.

        For each ``(course, season)``, the frequency is the fraction of
        years in ``[history_start, history_end]`` containing that season in
        which the course was offered.
        """
        season_years: Dict[str, set] = {}
        for term in term_range(history_start, history_end):
            season_years.setdefault(term.season, set()).add(term.year)
        counts: Dict[Tuple[str, str], int] = {}
        for term in term_range(history_start, history_end):
            for course_id in history.offered_in(term):
                key = (course_id, term.season)
                counts[key] = counts.get(key, 0) + 1
        frequency = {
            (course_id, season): count / len(season_years[season])
            for (course_id, season), count in counts.items()
        }
        return cls(released, release_horizon_end, frequency)
