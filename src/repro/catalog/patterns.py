"""Registrar schedule patterns — declarative offering rules.

Registrars schedule courses by *rule*, not by enumerating terms: "every
semester", "every fall", "alternate spring semesters".  This module makes
those rules first-class so synthetic datasets, tests, and real deployments
can declare a schedule as ``{course_id: pattern}`` and expand it over any
term window:

    >>> from repro.semester import Term
    >>> schedule = build_schedule(
    ...     {"CS 101": "every", "CS 240": "fall", "CS 350": "spring-odd"},
    ...     Term(2011, "Spring"), Term(2012, "Fall"),
    ... )
    >>> sorted(str(t) for t in schedule.offerings("CS 240"))
    ['Fall 2011', 'Fall 2012']

Supported pattern strings: ``every``, ``<season>`` (e.g. ``fall``,
``spring``), ``<season>-even`` / ``<season>-odd`` (calendar-year parity),
and ``never``.  Season names are validated against the calendar of the
window's start term, so typos fail loudly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping

from ..errors import CatalogError
from ..semester import Term, term_range
from .schedule import Schedule

__all__ = ["pattern_terms", "build_schedule", "VALID_SUFFIXES"]

VALID_SUFFIXES = ("", "-even", "-odd")


def _parse_pattern(pattern: str, calendar) -> tuple:
    """Split a pattern into ``(season or None, parity or None)``."""
    lowered = pattern.strip().lower()
    if lowered == "every":
        return None, None
    if lowered == "never":
        return "", None  # matches nothing
    parity = None
    base = lowered
    if lowered.endswith("-even"):
        base, parity = lowered[: -len("-even")], 0
    elif lowered.endswith("-odd"):
        base, parity = lowered[: -len("-odd")], 1
    try:
        season = calendar.canonical_season(base)
    except ValueError as exc:
        raise CatalogError(f"unknown schedule pattern {pattern!r}: {exc}") from exc
    return season, parity


def pattern_terms(pattern: str, first: Term, last: Term) -> FrozenSet[Term]:
    """All terms in ``[first, last]`` matching ``pattern``."""
    season, parity = _parse_pattern(pattern, first.calendar)
    if season == "":  # "never"
        return frozenset()
    matched = []
    for term in term_range(first, last):
        if season is not None and term.season != season:
            continue
        if parity is not None and term.year % 2 != parity:
            continue
        matched.append(term)
    return frozenset(matched)


def build_schedule(
    patterns: Mapping[str, str], first: Term, last: Term
) -> Schedule:
    """Expand ``{course_id: pattern}`` over the window into a Schedule."""
    offerings: Dict[str, FrozenSet[Term]] = {}
    for course_id, pattern in patterns.items():
        offerings[course_id] = pattern_terms(pattern, first, last)
    return Schedule(offerings)
