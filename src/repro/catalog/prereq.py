"""Prerequisite condition expressions.

The paper (Section 2) describes each course's prerequisite condition as a
boolean expression over "course completed" variables:

    Q_i = (x_j ∧ … ∧ x_k) ∨ … ∨ (x_m ∧ … ∧ x_n)

This module implements that expression language as a small immutable AST:

* :data:`TRUE` / :data:`FALSE` — constants (``TRUE`` is the condition of a
  course with no prerequisites).
* :class:`CourseReq` — a single literal ``x_j`` ("course *j* completed").
* :class:`And` / :class:`Or` — n-ary conjunction / disjunction.
* :class:`KOf` — "at least *k* of these", an extension used by degree-style
  prerequisites ("two of the following"); it expands to DNF when needed.

Beyond evaluation, the AST supports the two operations the path-generation
algorithms need:

* :meth:`PrereqExpr.to_dnf` — a canonical disjunctive normal form (a
  frozenset of conjunction course-sets, with absorbed supersets removed),
  used for minimum-cost satisfaction.
* :meth:`PrereqExpr.min_courses_to_satisfy` — the *exact* minimum number of
  additional courses needed to make the condition true given a completed
  set.  Exactness matters: the goal-driven algorithm's time-based pruning is
  only sound when ``left_i`` never over-estimates (Lemma 1).

Expressions compose with ``&`` and ``|``, compare structurally, hash, and
round-trip through :mod:`repro.parsing.prereq_parser` and ``to_dict`` /
``from_dict``.
"""

from __future__ import annotations

import itertools
import math
from typing import AbstractSet, Any, Dict, FrozenSet, Iterable, Tuple

__all__ = [
    "PrereqExpr",
    "TRUE",
    "FALSE",
    "CourseReq",
    "And",
    "Or",
    "KOf",
    "requires",
    "all_of",
    "any_of",
]

#: A DNF: a frozenset of conjunctions, each a frozenset of course ids.
#: ``frozenset({frozenset()})`` is the always-true DNF; ``frozenset()`` is
#: the unsatisfiable DNF.
Dnf = FrozenSet[FrozenSet[str]]


def _prune_absorbed(conjunctions: Iterable[FrozenSet[str]]) -> Dnf:
    """Drop every conjunction that is a strict superset of another.

    Supersets are redundant in a DNF (``a ∨ (a ∧ b) ≡ a``) and pruning them
    keeps both the representation canonical and ``min_courses_to_satisfy``
    fast.
    """
    unique = set(conjunctions)
    kept = {
        conj
        for conj in unique
        if not any(other < conj for other in unique)
    }
    return frozenset(kept)


class PrereqExpr:
    """Abstract base class for prerequisite expressions.

    Subclasses are immutable value objects.  Do not instantiate this class
    directly.
    """

    __slots__ = ()

    # -- core semantics -----------------------------------------------------

    def evaluate(self, completed: AbstractSet[str]) -> bool:
        """``True`` iff the condition holds for a student who completed
        exactly the courses in ``completed``."""
        raise NotImplementedError

    def courses(self) -> FrozenSet[str]:
        """Every course id mentioned anywhere in the expression."""
        raise NotImplementedError

    def to_dnf(self) -> Dnf:
        """Disjunctive normal form with absorbed conjunctions pruned.

        The result is a frozenset of frozensets of course ids: the
        expression is satisfied iff *all* courses of *some* member set are
        completed.
        """
        raise NotImplementedError

    # -- derived operations ---------------------------------------------------

    def min_courses_to_satisfy(self, completed: AbstractSet[str] = frozenset()) -> float:
        """Minimum number of *additional* courses needed to satisfy this.

        Returns ``0`` when already satisfied and ``math.inf`` when the
        expression is unsatisfiable (:data:`FALSE`).  Exact, via DNF.
        """
        dnf = self.to_dnf()
        if not dnf:
            return math.inf
        return min(len(conj - completed) for conj in dnf)

    def is_satisfiable(self) -> bool:
        """Whether any completed-course set satisfies the expression."""
        return bool(self.to_dnf())

    def satisfying_sets(self) -> Tuple[FrozenSet[str], ...]:
        """The minimal satisfying course sets, smallest first."""
        return tuple(sorted(self.to_dnf(), key=lambda s: (len(s), sorted(s))))

    # -- composition ------------------------------------------------------------

    def __and__(self, other: "PrereqExpr") -> "PrereqExpr":
        if not isinstance(other, PrereqExpr):
            return NotImplemented
        return And(self, other)

    def __or__(self, other: "PrereqExpr") -> "PrereqExpr":
        if not isinstance(other, PrereqExpr):
            return NotImplemented
        return Or(self, other)

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation; inverse of :func:`from_dict`."""
        raise NotImplementedError

    def to_string(self) -> str:
        """Registrar-style text that the prerequisite parser accepts."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_string()


class _TruePrereq(PrereqExpr):
    """The always-satisfied condition (a course with no prerequisites)."""

    __slots__ = ()

    def evaluate(self, completed: AbstractSet[str]) -> bool:
        return True

    def courses(self) -> FrozenSet[str]:
        return frozenset()

    def to_dnf(self) -> Dnf:
        return frozenset({frozenset()})

    def to_dict(self) -> Dict[str, Any]:
        return {"op": "true"}

    def to_string(self) -> str:
        return "NONE"

    def __repr__(self) -> str:
        return "TRUE"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _TruePrereq)

    def __hash__(self) -> int:
        return hash("_TruePrereq")


class _FalsePrereq(PrereqExpr):
    """The never-satisfied condition.

    Not produced by the parser; exists so the expression algebra is closed
    (e.g. simplifying an :class:`Or` with no children) and so tests can
    exercise unsatisfiable goals.
    """

    __slots__ = ()

    def evaluate(self, completed: AbstractSet[str]) -> bool:
        return False

    def courses(self) -> FrozenSet[str]:
        return frozenset()

    def to_dnf(self) -> Dnf:
        return frozenset()

    def to_dict(self) -> Dict[str, Any]:
        return {"op": "false"}

    def to_string(self) -> str:
        return "NEVER"

    def __repr__(self) -> str:
        return "FALSE"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _FalsePrereq)

    def __hash__(self) -> int:
        return hash("_FalsePrereq")


#: Singleton instances of the constant conditions.
TRUE = _TruePrereq()
FALSE = _FalsePrereq()


class CourseReq(PrereqExpr):
    """A single "course completed" literal (``x_j`` in the paper)."""

    __slots__ = ("course_id",)

    def __init__(self, course_id: str):
        if not isinstance(course_id, str) or not course_id.strip():
            raise ValueError(f"course id must be a non-empty string, got {course_id!r}")
        object.__setattr__(self, "course_id", course_id.strip())

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("CourseReq is immutable")

    def evaluate(self, completed: AbstractSet[str]) -> bool:
        return self.course_id in completed

    def courses(self) -> FrozenSet[str]:
        return frozenset({self.course_id})

    def to_dnf(self) -> Dnf:
        return frozenset({frozenset({self.course_id})})

    def to_dict(self) -> Dict[str, Any]:
        return {"op": "course", "id": self.course_id}

    def to_string(self) -> str:
        return self.course_id

    def __repr__(self) -> str:
        return f"CourseReq({self.course_id!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CourseReq) and other.course_id == self.course_id

    def __hash__(self) -> int:
        return hash(("CourseReq", self.course_id))


def _flatten(cls: type, children: Iterable[PrereqExpr]) -> Tuple[PrereqExpr, ...]:
    """Flatten nested same-type nodes and drop duplicates, keeping order."""
    flat = []
    seen = set()
    for child in children:
        if not isinstance(child, PrereqExpr):
            raise TypeError(f"expected PrereqExpr, got {child!r}")
        parts = child.children if isinstance(child, cls) else (child,)
        for part in parts:
            if part not in seen:
                seen.add(part)
                flat.append(part)
    return tuple(flat)


class And(PrereqExpr):
    """Conjunction: every child condition must hold.

    Construction normalizes: nested ``And`` children are flattened,
    duplicates removed, :data:`TRUE` children dropped.  An ``And`` with no
    effective children equals :data:`TRUE` — use the :func:`all_of` factory
    (or the constructor, which returns the simplified node via ``__new__``
    tricks being deliberately avoided; call :func:`all_of` for simplification).
    """

    __slots__ = ("children",)

    def __init__(self, *children: PrereqExpr):
        object.__setattr__(self, "children", _flatten(And, children))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("And is immutable")

    def evaluate(self, completed: AbstractSet[str]) -> bool:
        return all(child.evaluate(completed) for child in self.children)

    def courses(self) -> FrozenSet[str]:
        return frozenset().union(*(c.courses() for c in self.children)) if self.children else frozenset()

    def to_dnf(self) -> Dnf:
        result: Iterable[FrozenSet[str]] = [frozenset()]
        for child in self.children:
            child_dnf = child.to_dnf()
            if not child_dnf:
                return frozenset()  # an unsatisfiable conjunct
            result = [a | b for a in result for b in child_dnf]
            result = _prune_absorbed(result)
        return frozenset(result)

    def to_dict(self) -> Dict[str, Any]:
        return {"op": "and", "children": [c.to_dict() for c in self.children]}

    def to_string(self) -> str:
        if not self.children:
            return TRUE.to_string()
        parts = []
        for child in self.children:
            text = child.to_string()
            if isinstance(child, (Or, KOf)):
                text = f"({text})"
            parts.append(text)
        return " AND ".join(parts)

    def __repr__(self) -> str:
        return f"And{self.children!r}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and frozenset(other.children) == frozenset(self.children)

    def __hash__(self) -> int:
        return hash(("And", frozenset(self.children)))


class Or(PrereqExpr):
    """Disjunction: at least one child condition must hold."""

    __slots__ = ("children",)

    def __init__(self, *children: PrereqExpr):
        object.__setattr__(self, "children", _flatten(Or, children))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Or is immutable")

    def evaluate(self, completed: AbstractSet[str]) -> bool:
        return any(child.evaluate(completed) for child in self.children)

    def courses(self) -> FrozenSet[str]:
        return frozenset().union(*(c.courses() for c in self.children)) if self.children else frozenset()

    def to_dnf(self) -> Dnf:
        conjunctions: set = set()
        for child in self.children:
            conjunctions |= child.to_dnf()
        return _prune_absorbed(conjunctions)

    def to_dict(self) -> Dict[str, Any]:
        return {"op": "or", "children": [c.to_dict() for c in self.children]}

    def to_string(self) -> str:
        if not self.children:
            return FALSE.to_string()
        parts = []
        for child in self.children:
            text = child.to_string()
            if isinstance(child, KOf):
                text = f"({text})"
            parts.append(text)
        return " OR ".join(parts)

    def __repr__(self) -> str:
        return f"Or{self.children!r}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and frozenset(other.children) == frozenset(self.children)

    def __hash__(self) -> int:
        return hash(("Or", frozenset(self.children)))


class KOf(PrereqExpr):
    """"At least *k* of the listed conditions hold."

    ``KOf(0, …)`` is always true; ``KOf(k, …)`` with ``k`` greater than the
    number of children is never true.  ``to_dnf`` expands combinatorially —
    fine for the handful-of-children shapes registrar text produces.
    """

    __slots__ = ("k", "children")

    def __init__(self, k: int, children: Iterable[PrereqExpr]):
        children = tuple(children)
        if not isinstance(k, int) or k < 0:
            raise ValueError(f"k must be a non-negative int, got {k!r}")
        for child in children:
            if not isinstance(child, PrereqExpr):
                raise TypeError(f"expected PrereqExpr, got {child!r}")
        object.__setattr__(self, "k", k)
        object.__setattr__(self, "children", children)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("KOf is immutable")

    def evaluate(self, completed: AbstractSet[str]) -> bool:
        satisfied = sum(1 for child in self.children if child.evaluate(completed))
        return satisfied >= self.k

    def courses(self) -> FrozenSet[str]:
        return frozenset().union(*(c.courses() for c in self.children)) if self.children else frozenset()

    def to_dnf(self) -> Dnf:
        if self.k == 0:
            return TRUE.to_dnf()
        if self.k > len(self.children):
            return frozenset()
        conjunctions: set = set()
        for subset in itertools.combinations(self.children, self.k):
            conjunctions |= And(*subset).to_dnf()
        return _prune_absorbed(conjunctions)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": "kof",
            "k": self.k,
            "children": [c.to_dict() for c in self.children],
        }

    def to_string(self) -> str:
        inner = ", ".join(child.to_string() for child in self.children)
        return f"{self.k} OF [{inner}]"

    def __repr__(self) -> str:
        return f"KOf({self.k}, {list(self.children)!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, KOf)
            and other.k == self.k
            and other.children == self.children
        )

    def __hash__(self) -> int:
        return hash(("KOf", self.k, self.children))


# -- factories ---------------------------------------------------------------


def requires(*course_ids: str) -> PrereqExpr:
    """Conjunction of course literals: ``requires("11A", "21A")``.

    With a single id, returns the bare :class:`CourseReq`; with none,
    :data:`TRUE`.
    """
    literals = [CourseReq(cid) for cid in course_ids]
    return all_of(literals)


def all_of(exprs: Iterable[PrereqExpr]) -> PrereqExpr:
    """Simplifying conjunction: drops TRUE, collapses to FALSE, unwraps singletons."""
    kept = []
    for expr in _flatten(And, exprs):
        if expr == TRUE:
            continue
        if expr == FALSE:
            return FALSE
        kept.append(expr)
    if not kept:
        return TRUE
    if len(kept) == 1:
        return kept[0]
    return And(*kept)


def any_of(exprs: Iterable[PrereqExpr]) -> PrereqExpr:
    """Simplifying disjunction: drops FALSE, collapses to TRUE, unwraps singletons."""
    kept = []
    for expr in _flatten(Or, exprs):
        if expr == FALSE:
            continue
        if expr == TRUE:
            return TRUE
        kept.append(expr)
    if not kept:
        return FALSE
    if len(kept) == 1:
        return kept[0]
    return Or(*kept)


def from_dict(data: Dict[str, Any]) -> PrereqExpr:
    """Rebuild an expression from :meth:`PrereqExpr.to_dict` output."""
    op = data.get("op")
    if op == "true":
        return TRUE
    if op == "false":
        return FALSE
    if op == "course":
        return CourseReq(data["id"])
    if op == "and":
        return And(*(from_dict(child) for child in data["children"]))
    if op == "or":
        return Or(*(from_dict(child) for child in data["children"]))
    if op == "kof":
        return KOf(data["k"], [from_dict(child) for child in data["children"]])
    raise ValueError(f"unknown prerequisite op {op!r}")
