"""The :class:`Catalog`: courses + schedule + offering model, validated.

The catalog is what the paper's back-end hands to the Learning Path
Generator: the course set ``C`` with per-course prerequisite conditions
``Q_i``, the schedule ``S_i``, and (for reliability ranking) the offering
probability model.  It also exposes the one status-derivation primitive all
three algorithms share:

    Y_i = { c_j ∈ C − X_i  |  Q_j(X_i) == true, s_i ∈ S_j }

via :meth:`Catalog.eligible_courses`.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..errors import CatalogError, DuplicateCourseError, UnknownCourseError
from ..semester import Term
from .course import Course
from .schedule import DeterministicOfferings, OfferingModel, Schedule

__all__ = ["Catalog"]


class Catalog(Mapping[str, Course]):
    """An immutable, validated collection of courses plus their schedule.

    ``Catalog`` implements the :class:`~collections.abc.Mapping` protocol
    over course ids, so ``catalog["COSI 11a"]``, ``"COSI 11a" in catalog``,
    ``len(catalog)`` and iteration all behave as expected.

    Parameters
    ----------
    courses:
        The course records.  Duplicate ids raise
        :class:`~repro.errors.DuplicateCourseError`.
    schedule:
        The offered-term sets.  Courses scheduled but not in ``courses``
        raise :class:`~repro.errors.UnknownCourseError`.
    offering_model:
        Probability model for reliability ranking; defaults to the
        deterministic 0/1 model over ``schedule``.
    strict:
        When true (default), prerequisite conditions may only reference
        courses present in the catalog, and prerequisite cycles raise
        :class:`~repro.errors.CatalogError`.
    """

    def __init__(
        self,
        courses: Iterable[Course],
        schedule: Schedule = Schedule(),
        offering_model: Optional[OfferingModel] = None,
        strict: bool = True,
    ):
        table: Dict[str, Course] = {}
        for course in courses:
            if not isinstance(course, Course):
                raise TypeError(f"expected Course, got {course!r}")
            if course.course_id in table:
                raise DuplicateCourseError(course.course_id)
            table[course.course_id] = course
        self._courses = table
        self._schedule = schedule
        self._offering_model = offering_model or DeterministicOfferings(schedule)
        if strict:
            self._validate()

    def _validate(self) -> None:
        for course in self._courses.values():
            for ref in course.prereq.courses():
                if ref not in self._courses:
                    raise UnknownCourseError(
                        ref, context=f"prerequisite of {course.course_id!r}"
                    )
        for course_id in self._schedule.course_ids():
            if course_id not in self._courses:
                raise UnknownCourseError(course_id, context="schedule entry")
        cycle = self.find_prerequisite_cycle()
        if cycle:
            raise CatalogError(f"prerequisite cycle: {' -> '.join(cycle)}")

    # -- mapping protocol -----------------------------------------------------

    def __getitem__(self, course_id: str) -> Course:
        try:
            return self._courses[course_id]
        except KeyError:
            raise UnknownCourseError(course_id) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._courses)

    def __len__(self) -> int:
        return len(self._courses)

    def __repr__(self) -> str:
        return f"Catalog({len(self._courses)} courses)"

    # -- attributes ---------------------------------------------------------------

    @property
    def schedule(self) -> Schedule:
        """The offered-term sets (``S_i`` for every course)."""
        return self._schedule

    @property
    def offering_model(self) -> OfferingModel:
        """The probability model ``prob(c_i, s)`` used by reliability ranking."""
        return self._offering_model

    def course_ids(self) -> FrozenSet[str]:
        """Every course id in the catalog."""
        return frozenset(self._courses)

    def courses(self) -> Tuple[Course, ...]:
        """All course records, in insertion order."""
        return tuple(self._courses.values())

    def courses_with_tag(self, tag: str) -> FrozenSet[str]:
        """Ids of courses carrying ``tag``."""
        return frozenset(cid for cid, c in self._courses.items() if c.has_tag(tag))

    # -- the Y_i primitive ---------------------------------------------------------

    def eligible_courses(
        self,
        completed: AbstractSet[str],
        term: Term,
        exclude: AbstractSet[str] = frozenset(),
        schedule: Optional[Schedule] = None,
    ) -> FrozenSet[str]:
        """The option set ``Y`` for a student with ``completed`` in ``term``.

        A course is eligible iff it is not already completed, not in
        ``exclude`` (student avoid-lists), offered in ``term``, and its
        prerequisite condition evaluates to true over ``completed``.

        ``schedule`` overrides the catalog schedule — ranked exploration
        passes a projected schedule here.
        """
        schedule = schedule if schedule is not None else self._schedule
        eligible = []
        for course_id in schedule.offered_in(term):
            if course_id in completed or course_id in exclude:
                continue
            course = self._courses.get(course_id)
            if course is None:
                raise UnknownCourseError(course_id, context="schedule entry")
            if course.prereq.evaluate(completed):
                eligible.append(course_id)
        return frozenset(eligible)

    # -- prerequisite structure -------------------------------------------------------

    def prerequisite_edges(self) -> List[Tuple[str, str]]:
        """All ``(prerequisite, course)`` pairs mentioned by any condition.

        Disjunctive structure is flattened: every course appearing anywhere
        in ``Q_i`` contributes an edge.  This over-approximates hard
        dependencies (an OR branch is optional) but is the right relation
        for cycle detection and for ordering courses by depth.
        """
        edges = []
        for course in self._courses.values():
            for ref in course.prereq.courses():
                edges.append((ref, course.course_id))
        return edges

    def find_prerequisite_cycle(self) -> Optional[List[str]]:
        """A prerequisite cycle as a course-id list, or ``None`` if acyclic."""
        graph: Dict[str, List[str]] = {cid: [] for cid in self._courses}
        for pre, post in self.prerequisite_edges():
            if pre in graph:
                graph[pre].append(post)
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {cid: WHITE for cid in graph}
        parent: Dict[str, Optional[str]] = {}

        for root in graph:
            if color[root] != WHITE:
                continue
            stack = [(root, iter(graph[root]))]
            color[root] = GRAY
            parent[root] = None
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if color[child] == WHITE:
                        color[child] = GRAY
                        parent[child] = node
                        stack.append((child, iter(graph[child])))
                        advanced = True
                        break
                    if color[child] == GRAY:
                        cycle = [child, node]
                        walk = node
                        while parent[walk] is not None and walk != child:
                            walk = parent[walk]  # type: ignore[assignment]
                            cycle.append(walk)
                            if walk == child:
                                break
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    def topological_order(self) -> List[str]:
        """Course ids ordered so prerequisites precede dependents.

        Ties broken by course id for determinism.
        """
        indegree = {cid: 0 for cid in self._courses}
        adjacency: Dict[str, List[str]] = {cid: [] for cid in self._courses}
        for pre, post in self.prerequisite_edges():
            adjacency[pre].append(post)
            indegree[post] += 1
        ready = sorted(cid for cid, deg in indegree.items() if deg == 0)
        order: List[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            inserted = []
            for child in adjacency[node]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    inserted.append(child)
            if inserted:
                ready.extend(inserted)
                ready.sort()
        if len(order) != len(self._courses):
            raise CatalogError("prerequisite graph contains a cycle")
        return order

    def prerequisite_depth(self, course_id: str) -> int:
        """Length of the longest prerequisite chain below ``course_id``.

        Intro courses have depth 0.
        """
        memo: Dict[str, int] = {}

        def depth(cid: str) -> int:
            if cid in memo:
                return memo[cid]
            memo[cid] = 0  # breaks ties on (validated-absent) cycles
            refs = self[cid].prereq.courses()
            memo[cid] = 1 + max((depth(ref) for ref in refs), default=-1)
            return memo[cid]

        if course_id not in self._courses:
            raise UnknownCourseError(course_id)
        return depth(course_id)

    def prerequisite_closure(self, course_id: str) -> FrozenSet[str]:
        """Every course reachable downward through prerequisite mentions."""
        if course_id not in self._courses:
            raise UnknownCourseError(course_id)
        seen: set = set()
        frontier = list(self[course_id].prereq.courses())
        while frontier:
            cid = frontier.pop()
            if cid in seen:
                continue
            seen.add(cid)
            frontier.extend(self[cid].prereq.courses())
        return frozenset(seen)

    # -- derivation ----------------------------------------------------------------

    def with_schedule(
        self, schedule: Schedule, offering_model: Optional[OfferingModel] = None
    ) -> "Catalog":
        """A copy of this catalog with a different schedule."""
        return Catalog(
            self._courses.values(),
            schedule=schedule,
            offering_model=offering_model,
        )

    # -- serialization ----------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation; inverse of :meth:`from_dict`.

        The offering model is not serialized (rebuild it from history).
        """
        return {
            "courses": [course.to_dict() for course in self._courses.values()],
            "schedule": self._schedule.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Catalog":
        """Rebuild a catalog from :meth:`to_dict` output."""
        return cls(
            [Course.from_dict(item) for item in data.get("courses", ())],
            schedule=Schedule.from_dict(data.get("schedule", {})),
        )
