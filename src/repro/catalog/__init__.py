"""Course, prerequisite, schedule, and catalog models.

This package is the registrar-facing substrate of the reproduction: it holds
everything the paper's Section 2 defines about course information — the
course set ``C``, per-course prerequisite conditions ``Q_i`` (boolean
expressions over completed-course literals) and schedules ``S_i`` (sets of
semesters the course is offered), plus the offering-probability model that
Section 4.3.1's reliability ranking relies on.
"""

from .prereq import (
    TRUE,
    FALSE,
    And,
    CourseReq,
    KOf,
    Or,
    PrereqExpr,
    all_of,
    any_of,
    requires,
)
from .course import Course
from .schedule import (
    DeterministicOfferings,
    HistoricalOfferingModel,
    OfferingModel,
    Schedule,
)
from .catalog import Catalog
from .lint import LintIssue, earliest_completions, lint_catalog
from .patterns import build_schedule, pattern_terms

__all__ = [
    "LintIssue",
    "lint_catalog",
    "earliest_completions",
    "build_schedule",
    "pattern_terms",
    "PrereqExpr",
    "TRUE",
    "FALSE",
    "CourseReq",
    "And",
    "Or",
    "KOf",
    "requires",
    "all_of",
    "any_of",
    "Course",
    "Schedule",
    "OfferingModel",
    "DeterministicOfferings",
    "HistoricalOfferingModel",
    "Catalog",
]
