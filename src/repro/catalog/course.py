"""The :class:`Course` record.

A course in the paper is ``(Q_i, S_i)`` — a prerequisite condition and a
schedule.  The schedule lives on the :class:`~repro.catalog.catalog.Catalog`
(it comes from a different registrar feed and changes every term); the
course record carries everything intrinsic to the course: its prerequisite
condition, title, workload (used by workload-based ranking, §4.3.1),
credits, and free-form tags (used by degree requirements, e.g. ``core`` /
``elective``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable

from .prereq import PrereqExpr, TRUE, from_dict as prereq_from_dict

__all__ = ["Course"]


@dataclass(frozen=True)
class Course:
    """An immutable course record.

    Parameters
    ----------
    course_id:
        Registrar identifier, e.g. ``"COSI 11a"``.  Must be non-empty;
        surrounding whitespace is stripped.
    title:
        Human-readable name.  Defaults to the id.
    prereq:
        The prerequisite condition ``Q_i``; defaults to :data:`TRUE`
        (no prerequisites).
    workload_hours:
        Estimated weekly study hours ``w(c_i)`` — the quantity the paper's
        workload-based ranking sums along a path.  Must be non-negative.
    credits:
        Credit hours; informational, and available to custom goals.
    tags:
        Free-form labels (``core``, ``elective``, ``systems`` …) that degree
        goals and workload generators select on.
    description:
        Registrar catalog prose (optional).
    """

    course_id: str
    title: str = ""
    prereq: PrereqExpr = TRUE
    workload_hours: float = 10.0
    credits: int = 4
    tags: FrozenSet[str] = field(default_factory=frozenset)
    description: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.course_id, str) or not self.course_id.strip():
            raise ValueError(f"course id must be a non-empty string, got {self.course_id!r}")
        object.__setattr__(self, "course_id", self.course_id.strip())
        if not self.title:
            object.__setattr__(self, "title", self.course_id)
        if not isinstance(self.prereq, PrereqExpr):
            raise TypeError(f"prereq must be a PrereqExpr, got {self.prereq!r}")
        if self.workload_hours < 0:
            raise ValueError(f"workload_hours must be >= 0, got {self.workload_hours!r}")
        if self.credits < 0:
            raise ValueError(f"credits must be >= 0, got {self.credits!r}")
        if not isinstance(self.tags, frozenset):
            object.__setattr__(self, "tags", frozenset(self.tags))
        if self.course_id in self.prereq.courses():
            raise ValueError(f"course {self.course_id!r} lists itself as a prerequisite")

    # -- convenience -------------------------------------------------------

    def has_tag(self, tag: str) -> bool:
        """Whether this course carries ``tag``."""
        return tag in self.tags

    def prerequisite_courses(self) -> FrozenSet[str]:
        """Every course id mentioned in the prerequisite condition."""
        return self.prereq.courses()

    def with_prereq(self, prereq: PrereqExpr) -> "Course":
        """A copy of this course with a different prerequisite condition."""
        return Course(
            course_id=self.course_id,
            title=self.title,
            prereq=prereq,
            workload_hours=self.workload_hours,
            credits=self.credits,
            tags=self.tags,
            description=self.description,
        )

    def with_tags(self, tags: Iterable[str]) -> "Course":
        """A copy of this course with ``tags`` replaced."""
        return Course(
            course_id=self.course_id,
            title=self.title,
            prereq=self.prereq,
            workload_hours=self.workload_hours,
            credits=self.credits,
            tags=frozenset(tags),
            description=self.description,
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation; inverse of :meth:`from_dict`."""
        return {
            "course_id": self.course_id,
            "title": self.title,
            "prereq": self.prereq.to_dict(),
            "workload_hours": self.workload_hours,
            "credits": self.credits,
            "tags": sorted(self.tags),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Course":
        """Rebuild a course from :meth:`to_dict` output."""
        return cls(
            course_id=data["course_id"],
            title=data.get("title", ""),
            prereq=prereq_from_dict(data.get("prereq", {"op": "true"})),
            workload_hours=data.get("workload_hours", 10.0),
            credits=data.get("credits", 4),
            tags=frozenset(data.get("tags", ())),
            description=data.get("description", ""),
        )
