"""Catalog linting — registrar-data sanity checks.

Real registrar exports are messy: courses whose prerequisites reference
retired courses, courses scheduled in no term, prerequisite chains that
cannot possibly be completed inside the published schedule window.  All
of these silently produce empty or misleading exploration results, so the
linter surfaces them before any path generation runs.

The core computation is :func:`earliest_completions` — an optimistic
reachability fixpoint over the schedule: a course is *completable by*
term ``t+1`` if it is offered in some term ``t`` at which its
prerequisite condition can be satisfied using only courses completable by
``t``.  (Optimistic: ignores the per-term cap ``m``, so "unreachable"
findings are definite while "reachable" ones are necessary-not-sufficient
— exactly the right polarity for a linter.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..semester import Term, term_range
from .catalog import Catalog

__all__ = ["LintIssue", "earliest_completions", "lint_catalog"]

#: Issue severities, mildest first.
SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class LintIssue:
    """One finding about one course (or the catalog as a whole)."""

    severity: str
    code: str
    course_id: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code} {self.course_id}: {self.message}"


def earliest_completions(
    catalog: Catalog, window: Optional[Tuple[Term, Term]] = None
) -> Dict[str, Term]:
    """Earliest status-term by which each course could be *completed*.

    A course taken in term ``t`` is complete at the ``t+1`` status.  The
    window defaults to the schedule's own span.  Courses absent from the
    result cannot be completed inside the window at all (never offered,
    unsatisfiable prerequisites, or prerequisite chains longer than the
    window allows).
    """
    if window is None:
        span = catalog.schedule.span()
        if span is None:
            return {}
        window = span
    first, last = window
    completed_by: Dict[str, Term] = {}
    for term in term_range(first, last):
        available = frozenset(
            cid for cid, done in completed_by.items() if done <= term
        )
        for course_id in catalog.schedule.offered_in(term):
            if course_id in completed_by:
                continue
            if catalog[course_id].prereq.evaluate(available):
                completed_by[course_id] = term + 1
    return completed_by


def lint_catalog(
    catalog: Catalog, window: Optional[Tuple[Term, Term]] = None
) -> List[LintIssue]:
    """Run every check; returns issues sorted by severity (errors first).

    Checks
    ------
    ``never-offered`` (error)
        The course appears in no scheduled term.
    ``unsatisfiable-prereq`` (error)
        The prerequisite condition is logically unsatisfiable.
    ``unreachable-in-window`` (error)
        No sequence of terms inside the window completes the course, even
        taking everything (deep chain vs. sparse offerings).
    ``late-first-completion`` (warning)
        The course is reachable, but only in the window's final term —
        one schedule hiccup strands every plan through it.
    ``unused-as-prerequisite`` (info)
        A course referenced by no other course's condition and carrying
        no tags; often a retired-course leftover.
    """
    issues: List[LintIssue] = []
    span = window or catalog.schedule.span()

    referenced = set()
    for course_id in catalog:
        referenced |= catalog[course_id].prereq.courses()

    completions = earliest_completions(catalog, span) if span else {}
    last_term = span[1] if span else None

    for course_id in catalog:
        course = catalog[course_id]
        offerings = catalog.schedule.offerings(course_id)
        if not offerings:
            issues.append(
                LintIssue(
                    "error",
                    "never-offered",
                    course_id,
                    "appears in no scheduled term",
                )
            )
        if not course.prereq.is_satisfiable():
            issues.append(
                LintIssue(
                    "error",
                    "unsatisfiable-prereq",
                    course_id,
                    f"prerequisite {course.prereq.to_string()!r} can never hold",
                )
            )
        elif offerings and span and course_id not in completions:
            issues.append(
                LintIssue(
                    "error",
                    "unreachable-in-window",
                    course_id,
                    f"cannot be completed between {span[0]} and {span[1]} "
                    f"(prerequisite chain outruns the schedule)",
                )
            )
        elif (
            last_term is not None
            and course_id in completions
            and completions[course_id] > last_term
        ):
            issues.append(
                LintIssue(
                    "warning",
                    "late-first-completion",
                    course_id,
                    f"first completable only at {completions[course_id]}, "
                    f"after the window's final term",
                )
            )
        if (
            course_id not in referenced
            and not course.tags
            and offerings
        ):
            issues.append(
                LintIssue(
                    "info",
                    "unused-as-prerequisite",
                    course_id,
                    "no course requires it and it carries no tags",
                )
            )

    severity_rank = {name: i for i, name in enumerate(SEVERITIES)}
    issues.sort(key=lambda issue: (-severity_rank[issue.severity], issue.course_id))
    return issues
