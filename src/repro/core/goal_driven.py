"""Goal-driven learning paths (§4.2.3).

Same expansion as Algorithm 1, with two changes:

1. A node whose completed set already satisfies the goal is a terminal
   (``goal``) — exploration does not continue past success.  A node at the
   end semester whose completed set does not satisfy the goal is a failed
   leaf (``deadline``) and is not part of the output.
2. Before expanding any node, the pruning strategies are consulted; if one
   fires, the node is tagged ``pruned`` and its (provably goalless)
   subtree is never generated.

When ``config.enforce_min_selection`` is on, the time-based pruner's
``min_i`` additionally floors the selection size ("strategic course
selections") — output-identical, but skips children the time pruner would
reject one level down.

Pass ``pruners=[]`` to run the unpruned baseline (Table 1's "No Pruning"
column); pass a custom list to ablate strategies or reorder them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import AbstractSet, Iterator, List, Optional

from ..catalog import Catalog
from ..errors import ExplorationError
from ..graph import LearningGraph, LearningPath
from ..obs.explain import DecisionEvent
from ..obs.live import budget_exceeded
from ..obs.runtime import NULL_OBSERVABILITY, Observability
from ..requirements import Goal
from ..semester import Term
from .config import ExplorationConfig
from .expansion import Expander
from .pruning import (
    Pruner,
    PruningContext,
    PruningStats,
    TimeBasedPruner,
    default_pruners,
    examine_pruners,
    first_firing_pruner,
    suppressed_selection_count,
)
from .stats import ExplorationStats

__all__ = ["GoalDrivenResult", "generate_goal_driven"]


@dataclass
class GoalDrivenResult:
    """Output of a goal-driven run."""

    graph: LearningGraph
    stats: ExplorationStats
    pruning_stats: PruningStats

    def paths(self) -> Iterator[LearningPath]:
        """The goal-satisfying learning paths (the algorithm's output set)."""
        return self.graph.paths("goal")

    @property
    def path_count(self) -> int:
        """Number of goal paths."""
        return self.graph.count_paths("goal")

    @property
    def explored_leaf_count(self) -> int:
        """Every non-pruned leaf reached (goal + deadline + dead-end) —
        the quantity Table 1 reports to show how much pruning saves."""
        return self.graph.count_paths()


def _graph_decision(
    graph: LearningGraph, node_id: int, kind: str, **kwargs
) -> DecisionEvent:
    """A decision event for one tree node (shared by the event kinds)."""
    status = graph.status(node_id)
    return DecisionEvent(
        kind=kind,
        node_id=node_id,
        parent_id=graph.parent(node_id),
        term=str(status.term),
        selection=tuple(sorted(graph.selection_into(node_id))),
        completed=tuple(sorted(status.completed)),
        **kwargs,
    )


def _selection_floor(
    time_pruner: Optional[TimeBasedPruner],
    config: ExplorationConfig,
    status,
) -> int:
    if time_pruner is None or not config.enforce_min_selection:
        return 0
    minimum = time_pruner.min_required_this_term(status)
    if math.isinf(minimum):
        # The pruner stack should have cut this node already; stay safe.
        return config.max_courses_per_term + 1
    return max(0, int(math.ceil(minimum)))


def generate_goal_driven(
    catalog: Catalog,
    start_term: Term,
    goal: Goal,
    end_term: Term,
    completed: AbstractSet[str] = frozenset(),
    config: Optional[ExplorationConfig] = None,
    pruners: Optional[List[Pruner]] = None,
    obs: Optional[Observability] = None,
    cache=None,
) -> GoalDrivenResult:
    """Generate every learning path that satisfies ``goal`` by ``end_term``.

    Parameters
    ----------
    catalog, start_term, end_term, completed, config:
        As in :func:`~repro.core.deadline.generate_deadline_driven`.
    goal:
        The goal requirement (degree rule, course set, boolean expression).
    pruners:
        The pruning strategy stack.  ``None`` (default) uses the paper's
        stack — time-based then availability; ``[]`` disables pruning
        (the Table 1 baseline).  Custom pruners must be built against a
        :class:`~repro.core.pruning.PruningContext` equivalent to this
        call's arguments.
    obs:
        Optional :class:`~repro.obs.runtime.Observability` bundle; when
        enabled, the run emits a ``run:goal_driven`` span with nested
        ``expand``/``prune``/``flow`` phases and publishes the finished
        stats to the metrics registry.
    cache:
        Optional :class:`~repro.cache.ExplorationCache`.  Goal queries,
        option sets and pruning verdicts are then memoized (within the
        run and across runs sharing the cache) — output-identical to the
        uncached run, including decision streams.

    Returns
    -------
    GoalDrivenResult
        Graph (output = ``goal`` terminals), run statistics, and
        per-strategy pruning counters.
    """
    config = config or ExplorationConfig()
    if end_term < start_term:
        raise ExplorationError(f"end term {end_term} precedes start term {start_term}")
    unknown = frozenset(completed) - catalog.course_ids()
    if unknown:
        raise ExplorationError(f"completed courses not in catalog: {sorted(unknown)}")

    if cache is not None:
        goal = cache.wrap_goal(goal)
    context = PruningContext(
        catalog=catalog, goal=goal, end_term=end_term, config=config, cache=cache
    )
    if pruners is None:
        pruners = default_pruners(context)
    time_pruner = next((p for p in pruners if isinstance(p, TimeBasedPruner)), None)
    transpositions = (
        cache.transposition_view(goal, end_term, config, pruners)
        if cache is not None and pruners
        else None
    )
    if obs is None:
        obs = NULL_OBSERVABILITY

    stats = ExplorationStats()
    pruning_stats = PruningStats()
    stats.start_timer()
    expander = Expander(catalog, end_term, config, obs=obs, cache=cache)
    graph = LearningGraph(expander.initial_status(start_term, completed))
    stats.record_node()

    recorder = obs.decisions
    progress = obs.progress
    budget = obs.budget
    if progress is not None:
        progress.begin_run("goal_driven", horizon=int(end_term - start_term))
    if budget is not None:
        budget.arm()
    with obs.run("goal_driven", start=str(start_term), end=str(end_term)):
        stack = [graph.root_id]
        while stack:
            node_id = stack.pop()
            status = graph.status(node_id)
            if budget is not None:
                budget.tick(stats, progress)
            depth = int(status.term - start_term) if progress is not None else 0

            if goal.is_satisfied(status.completed):
                graph.mark_terminal(node_id, "goal")
                stats.record_terminal("goal")
                if progress is not None:
                    progress.record_terminal("goal", depth)
                    progress.record_emit()
                if recorder is not None:
                    recorder.record(_graph_decision(graph, node_id, "goal"))
                continue
            if status.term >= end_term:
                graph.mark_terminal(node_id, "deadline")
                stats.record_terminal("deadline")
                if progress is not None:
                    progress.record_terminal("deadline", depth)
                if recorder is not None:
                    recorder.record(_graph_decision(graph, node_id, "deadline"))
                continue
            if transpositions is not None:
                with obs.phase("prune"):
                    firing_name, verdict_dicts = transpositions.consult(
                        pruners, status, obs, want_verdicts=recorder is not None
                    )
            elif recorder is None:
                with obs.phase("prune"):
                    firing = first_firing_pruner(pruners, status, obs)
                firing_name = firing.name if firing is not None else None
                verdict_dicts = None
            else:
                with obs.phase("prune"):
                    firing, verdicts = examine_pruners(pruners, status, obs)
                firing_name = firing.name if firing is not None else None
                verdict_dicts = tuple(v.as_dict() for v in verdicts)
            if firing_name is not None:
                graph.mark_terminal(node_id, "pruned")
                stats.record_terminal("pruned")
                stats.record_prune(firing_name)
                pruning_stats.record(firing_name)
                if progress is not None:
                    progress.record_pruned(depth)
                if recorder is not None:
                    recorder.record(
                        _graph_decision(
                            graph,
                            node_id,
                            "prune",
                            strategy=firing_name,
                            verdicts=verdict_dicts,
                        )
                    )
                continue

            floor = _selection_floor(time_pruner, config, status)
            suppressed = suppressed_selection_count(len(status.options), floor)
            if suppressed:
                stats.record_prune("time", suppressed)
                pruning_stats.record("time", suppressed)
                if recorder is not None:
                    recorder.record(
                        _graph_decision(
                            graph,
                            node_id,
                            "suppressed",
                            strategy="time",
                            detail={
                                "suppressed": suppressed,
                                "floor": floor,
                                "option_count": len(status.options),
                            },
                        )
                    )
            expanded = False
            children = 0
            with obs.phase("expand"):
                for selection, child_status in expander.successors(
                    status, required_minimum=floor
                ):
                    if config.max_nodes is not None and graph.num_nodes >= config.max_nodes:
                        raise budget_exceeded(
                            "nodes", config.max_nodes, graph.num_nodes,
                            stats=stats, progress=progress, budget=budget,
                        )
                    child_id = graph.add_child(node_id, selection, child_status)
                    stats.record_node()
                    stats.record_edge()
                    stack.append(child_id)
                    expanded = True
                    children += 1
            if not expanded:
                graph.mark_terminal(node_id, "dead_end")
                stats.record_terminal("dead_end")
                if progress is not None:
                    progress.record_terminal("dead_end", depth)
                if recorder is not None:
                    recorder.record(_graph_decision(graph, node_id, "dead_end"))
            else:
                if progress is not None:
                    progress.record_expanded(depth, children)
                    progress.set_frontier(len(stack))
                if recorder is not None:
                    recorder.record(
                        _graph_decision(
                            graph, node_id, "expand", detail={"children": children}
                        )
                    )

    stats.stop_timer()
    obs.record_run_stats("goal_driven", stats)
    return GoalDrivenResult(graph=graph, stats=stats, pruning_stats=pruning_stats)
