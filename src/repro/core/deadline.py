"""Deadline-driven learning paths — the paper's Algorithm 1.

Enumerates **every** learning path from the student's current enrollment
status to the end semester ``d``: all course selection options, for every
upcoming semester, exactly as a student exploring "what could I take over
the next few semesters" would want.  Faithful to the paper, the result is
an out-tree (one node per expansion), so the output grows exponentially in
the horizon — Table 2's out-of-memory rows are reproduced here as a
:class:`~repro.errors.BudgetExceededError` governed by
``config.max_nodes``.  Use :func:`repro.core.counting.count_deadline_paths`
when only the path count is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterator, Optional

from ..catalog import Catalog
from ..errors import ExplorationError
from ..graph import LearningGraph, LearningPath
from ..obs.live import budget_exceeded
from ..obs.runtime import NULL_OBSERVABILITY, Observability
from ..semester import Term
from .config import ExplorationConfig
from .expansion import Expander
from .stats import ExplorationStats

__all__ = ["DeadlineResult", "generate_deadline_driven"]


@dataclass
class DeadlineResult:
    """Output of a deadline-driven run: the learning graph plus counters."""

    graph: LearningGraph
    stats: ExplorationStats

    def paths(self) -> Iterator[LearningPath]:
        """All output learning paths (every maximal path: deadline leaves
        plus dead ends, per Fig. 3 where ``n6`` ends a path early)."""
        return self.graph.paths()

    @property
    def path_count(self) -> int:
        """Number of output paths."""
        return self.graph.count_paths()


def generate_deadline_driven(
    catalog: Catalog,
    start_term: Term,
    end_term: Term,
    completed: AbstractSet[str] = frozenset(),
    config: Optional[ExplorationConfig] = None,
    obs: Optional[Observability] = None,
    cache=None,
) -> DeadlineResult:
    """Algorithm 1: every learning path from ``start_term`` to ``end_term``.

    Parameters
    ----------
    catalog:
        Courses, prerequisites, and schedule.
    start_term:
        The student's current semester ``s``.
    end_term:
        The end semester ``d`` (inclusive; paths stop *at* ``d``).
    completed:
        Course ids completed before ``start_term`` (``X``).
    config:
        Constraints (``m``, avoid-list, …); defaults match the paper's
        evaluation (``m = 3``).
    obs:
        Optional :class:`~repro.obs.runtime.Observability`; when enabled,
        the run emits a ``run:deadline`` span with ``expand`` phases.
    cache:
        Optional :class:`~repro.cache.ExplorationCache`; option sets are
        then served from its shared eval memo (deadline-driven runs have
        no goal, so the flow and transposition layers are unused).

    Returns
    -------
    DeadlineResult
        The learning graph (terminals tagged ``deadline``/``dead_end``) and
        run statistics.

    Raises
    ------
    ExplorationError
        If ``end_term`` precedes ``start_term``.
    BudgetExceededError
        If the graph outgrows ``config.max_nodes``.
    """
    config = config or ExplorationConfig()
    if end_term < start_term:
        raise ExplorationError(
            f"end term {end_term} precedes start term {start_term}"
        )
    unknown = frozenset(completed) - catalog.course_ids()
    if unknown:
        raise ExplorationError(f"completed courses not in catalog: {sorted(unknown)}")

    if obs is None:
        obs = NULL_OBSERVABILITY
    stats = ExplorationStats()
    stats.start_timer()
    expander = Expander(catalog, end_term, config, obs=obs, cache=cache)
    graph = LearningGraph(expander.initial_status(start_term, completed))
    stats.record_node()

    progress = obs.progress
    budget = obs.budget
    if progress is not None:
        progress.begin_run("deadline", horizon=int(end_term - start_term))
    if budget is not None:
        budget.arm()
    with obs.run("deadline", start=str(start_term), end=str(end_term)):
        stack = [graph.root_id]
        while stack:
            node_id = stack.pop()
            status = graph.status(node_id)
            if budget is not None:
                budget.tick(stats, progress)
            depth = int(status.term - start_term) if progress is not None else 0
            if status.term >= end_term:
                graph.mark_terminal(node_id, "deadline")
                stats.record_terminal("deadline")
                if progress is not None:
                    progress.record_terminal("deadline", depth)
                    progress.record_emit()
                continue
            expanded = False
            children = 0
            with obs.phase("expand"):
                for selection, child_status in expander.successors(status):
                    if config.max_nodes is not None and graph.num_nodes >= config.max_nodes:
                        raise budget_exceeded(
                            "nodes", config.max_nodes, graph.num_nodes,
                            stats=stats, progress=progress, budget=budget,
                        )
                    child_id = graph.add_child(node_id, selection, child_status)
                    stats.record_node()
                    stats.record_edge()
                    stack.append(child_id)
                    expanded = True
                    children += 1
            if not expanded:
                graph.mark_terminal(node_id, "dead_end")
                stats.record_terminal("dead_end")
                if progress is not None:
                    # Dead ends are maximal paths too (Fig. 3's n6).
                    progress.record_terminal("dead_end", depth)
                    progress.record_emit()
            elif progress is not None:
                progress.record_expanded(depth, children)
                progress.set_frontier(len(stack))

    stats.stop_timer()
    obs.record_run_stats("deadline", stats)
    return DeadlineResult(graph=graph, stats=stats)
