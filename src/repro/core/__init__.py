"""The paper's primary contribution: learning-path generation algorithms.

Three generators, matching Section 4:

* :func:`~repro.core.deadline.generate_deadline_driven` — Algorithm 1:
  every learning path from the start status to the end semester.
* :func:`~repro.core.goal_driven.generate_goal_driven` — goal-driven paths
  with the time-based and course-availability pruning strategies (§4.2).
* :func:`~repro.core.ranked.generate_ranked` — top-k goal-driven paths
  under a ranking function (time / workload / reliability, §4.3) via
  best-first search.

plus counting-mode variants (:mod:`repro.core.counting`) that run the same
expansions over a merged-status DAG to produce exact path counts at
horizons where the paper's tree explodes.
"""

from .config import ExplorationConfig
from .constraints import (
    ForbiddenCombination,
    MaxCoursesInTerm,
    MaxWorkloadPerTerm,
    RequiredCompanions,
    SelectionConstraint,
    TermBlackout,
)
from .deadline import DeadlineResult, generate_deadline_driven
from .goal_driven import GoalDrivenResult, generate_goal_driven
from .pruning import (
    AvailabilityPruner,
    PruneVerdict,
    Pruner,
    PruningContext,
    PruningStats,
    TimeBasedPruner,
    default_pruners,
    examine_pruners,
    first_firing_pruner,
)
from .ranking import (
    RankingFunction,
    ReliabilityRanking,
    TimeRanking,
    WorkloadRanking,
)
from .rankings_extra import (
    CompositeRanking,
    CourseCountRanking,
    SpreadPenaltyRanking,
)
from .ranked import RankedResult, generate_ranked
from .counting import (
    CountResult,
    build_deadline_dag,
    build_goal_dag,
    count_deadline_paths,
    count_goal_paths,
)
from .frontier import (
    FrontierCount,
    frontier_count_deadline_paths,
    frontier_count_goal_paths,
)
from .stats import ExplorationStats

__all__ = [
    "ExplorationConfig",
    "generate_deadline_driven",
    "DeadlineResult",
    "generate_goal_driven",
    "GoalDrivenResult",
    "generate_ranked",
    "RankedResult",
    "Pruner",
    "PruneVerdict",
    "PruningContext",
    "PruningStats",
    "TimeBasedPruner",
    "AvailabilityPruner",
    "default_pruners",
    "examine_pruners",
    "first_firing_pruner",
    "RankingFunction",
    "TimeRanking",
    "WorkloadRanking",
    "ReliabilityRanking",
    "CompositeRanking",
    "CourseCountRanking",
    "SpreadPenaltyRanking",
    "SelectionConstraint",
    "MaxWorkloadPerTerm",
    "MaxCoursesInTerm",
    "ForbiddenCombination",
    "RequiredCompanions",
    "TermBlackout",
    "CountResult",
    "build_deadline_dag",
    "build_goal_dag",
    "count_deadline_paths",
    "count_goal_paths",
    "FrontierCount",
    "frontier_count_goal_paths",
    "frontier_count_deadline_paths",
    "ExplorationStats",
]
