"""Exploration run statistics.

Every generator fills an :class:`ExplorationStats` while it runs: node and
edge counts, terminal-kind tallies, per-strategy prune events, elapsed
time.  The evaluation section's tables are assembled from these counters
(Table 1's pruned-path percentages, §5.2's 82%/18% time-vs-availability
split), so they are part of the public result API rather than debug-only
instrumentation.

The class is a hand-rolled ``__slots__`` holder rather than a dataclass:
one is allocated per run *and per shard* under ``repro.parallel``, the
budget ticker reads ``nodes_created`` on the hot path, and slotted
instances pickle cheaply when worker processes return their counters.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

__all__ = ["ExplorationStats"]


class ExplorationStats:
    """Mutable counters for one generation run."""

    __slots__ = (
        "nodes_created",
        "edges_created",
        "terminals",
        "prune_events",
        "merged_hits",
        "elapsed_seconds",
        "_started_at",
    )

    def __init__(
        self,
        nodes_created: int = 0,
        edges_created: int = 0,
        terminals: Optional[Dict[str, int]] = None,
        prune_events: Optional[Dict[str, int]] = None,
        merged_hits: int = 0,
        elapsed_seconds: float = 0.0,
    ):
        self.nodes_created = nodes_created
        self.edges_created = edges_created
        self.terminals: Dict[str, int] = dict(terminals) if terminals else {}
        self.prune_events: Dict[str, int] = dict(prune_events) if prune_events else {}
        self.merged_hits = merged_hits
        self.elapsed_seconds = elapsed_seconds
        # None = not currently timing.  A sentinel rather than 0.0:
        # perf_counter may legitimately return 0.0 at its epoch, which must
        # still count as "started".
        self._started_at: Optional[float] = None

    def __eq__(self, other: object) -> bool:
        if other.__class__ is self.__class__:
            return (
                self.nodes_created,
                self.edges_created,
                self.terminals,
                self.prune_events,
                self.merged_hits,
                self.elapsed_seconds,
            ) == (
                other.nodes_created,
                other.edges_created,
                other.terminals,
                other.prune_events,
                other.merged_hits,
                other.elapsed_seconds,
            )
        return NotImplemented

    __hash__ = None  # mutable, like the dataclass it replaced

    def __repr__(self) -> str:
        return (
            f"ExplorationStats(nodes_created={self.nodes_created!r}, "
            f"edges_created={self.edges_created!r}, "
            f"terminals={self.terminals!r}, "
            f"prune_events={self.prune_events!r}, "
            f"merged_hits={self.merged_hits!r}, "
            f"elapsed_seconds={self.elapsed_seconds!r})"
        )

    def __reduce__(self):
        # A running timer is process-local state; shard results are pickled
        # only after stop_timer(), so rebuilding through __init__ is exact.
        return (
            self.__class__,
            (
                self.nodes_created,
                self.edges_created,
                self.terminals,
                self.prune_events,
                self.merged_hits,
                self.elapsed_seconds,
            ),
        )

    # -- recording -----------------------------------------------------------

    def start_timer(self) -> None:
        """Begin (or resume) timing; pair with :meth:`stop_timer`.

        Repeated start/stop pairs *accumulate* into ``elapsed_seconds``,
        so a run that is interrupted and resumed reports its total time.
        """
        self._started_at = time.perf_counter()

    def stop_timer(self) -> None:
        """Accumulate wall time since the matching :meth:`start_timer`.

        A no-op when the timer is not running, so the budget-abort paths
        (which stop before raising) and the normal epilogue compose.
        """
        if self._started_at is not None:
            self.elapsed_seconds += time.perf_counter() - self._started_at
            self._started_at = None

    def record_node(self) -> None:
        """Count one node creation."""
        self.nodes_created += 1

    def record_edge(self) -> None:
        """Count one edge creation."""
        self.edges_created += 1

    def record_terminal(self, kind: str) -> None:
        """Count one terminal node of ``kind``."""
        self.terminals[kind] = self.terminals.get(kind, 0) + 1

    def record_prune(self, pruner_name: str, count: int = 1) -> None:
        """Count ``count`` subtrees cut by the named pruning strategy."""
        self.prune_events[pruner_name] = self.prune_events.get(pruner_name, 0) + count

    def record_merge(self) -> None:
        """Count one status-merge hit (DAG mode only)."""
        self.merged_hits += 1

    def merge(self, other: "ExplorationStats") -> "ExplorationStats":
        """Fold another run's counters into this one; returns self.

        Sums every counter, unions the terminal/prune tallies, and adds
        elapsed time — the aggregation multi-run benchmarks need when
        reporting totals over several horizons or repeats, and the merge
        step ``repro.parallel`` applies to every shard's counters.
        """
        self.nodes_created += other.nodes_created
        self.edges_created += other.edges_created
        for kind, count in other.terminals.items():
            self.terminals[kind] = self.terminals.get(kind, 0) + count
        for name, count in other.prune_events.items():
            self.prune_events[name] = self.prune_events.get(name, 0) + count
        self.merged_hits += other.merged_hits
        self.elapsed_seconds += other.elapsed_seconds
        return self

    # -- reporting -------------------------------------------------------------

    @property
    def total_prunes(self) -> int:
        """Total prune events across all strategies."""
        return sum(self.prune_events.values())

    def prune_share(self, pruner_name: str) -> float:
        """Fraction of prune events attributed to one strategy
        (the §5.2 82%/18% split)."""
        total = self.total_prunes
        if total == 0:
            return 0.0
        return self.prune_events.get(pruner_name, 0) / total

    def terminal_count(self, kind: str) -> int:
        """Number of terminals of ``kind``."""
        return self.terminals.get(kind, 0)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot."""
        return {
            "nodes_created": self.nodes_created,
            "edges_created": self.edges_created,
            "terminals": dict(self.terminals),
            "prune_events": dict(self.prune_events),
            "merged_hits": self.merged_hits,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def summary(self) -> str:
        """A one-line human-readable summary."""
        terminals = ", ".join(f"{k}={v}" for k, v in sorted(self.terminals.items()))
        prunes = ", ".join(f"{k}={v}" for k, v in sorted(self.prune_events.items()))
        return (
            f"{self.nodes_created} nodes, {self.edges_created} edges, "
            f"terminals[{terminals or '-'}], prunes[{prunes or '-'}], "
            f"{self.elapsed_seconds:.3f}s"
        )
