"""Exploration configuration — the student's constraints.

The paper's front-end collects, besides the goal itself, the student's
constraints: the maximum number of courses per semester ``m``, courses to
avoid, and so on (Section 3).  :class:`ExplorationConfig` bundles those
knobs plus the reproduction's engineering controls (node budgets, empty-
selection policy, the strategic-selection optimization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, FrozenSet, Optional, Tuple

from ..catalog.schedule import Schedule
from ..errors import InvalidConfigError

if TYPE_CHECKING:
    from .constraints import SelectionConstraint

__all__ = ["ExplorationConfig"]

_EMPTY_POLICIES = ("auto", "always", "never")


@dataclass(frozen=True)
class ExplorationConfig:
    """Constraints and engine knobs for one exploration run.

    Parameters
    ----------
    max_courses_per_term:
        The paper's ``m``: an elected selection ``W`` satisfies
        ``1 ≤ |W| ≤ m`` (empty selections are governed separately).  The
        evaluation uses ``m = 3``.
    avoid_courses:
        Courses the student refuses to take; removed from every option set.
    empty_selection:
        When a semester may be skipped (``W = ∅``):

        * ``"auto"`` (default, paper-faithful): only when the option set is
          empty *and* some not-yet-completed, non-avoided course is offered
          in a later semester within the horizon — this reproduces Fig. 3,
          where ``n4`` (no options, 11A returns next fall) advances on an
          empty edge while ``n6`` (nothing relevant ever again) stops.
        * ``"always"``: skipping is allowed alongside non-empty selections
          (models part-time students / leaves of absence).
        * ``"never"``: a node with an empty option set is always a dead end.
    enforce_min_selection:
        The paper's "strategic course selections" refinement (§4.2.1): when
        time-based pruning computes that at least ``min_i`` courses must be
        taken this semester, skip generating selections smaller than
        ``min_i``.  Provably output-preserving (smaller selections lead to
        children the time pruner rejects anyway); exposed as a switch so the
        ablation benchmark can quantify it.  Only consulted by goal-driven
        generation.
    max_nodes:
        Abort with :class:`~repro.errors.BudgetExceededError` once the
        graph holds this many nodes (``None`` = unbounded).  This is the
        controlled stand-in for the paper's out-of-memory rows in Table 2.
    schedule:
        Optional schedule override (e.g. a projected probabilistic schedule
        from an :class:`~repro.catalog.OfferingModel`); defaults to the
        catalog's released schedule.
    constraints:
        Per-semester :class:`~repro.core.constraints.SelectionConstraint`
        objects (workload caps, forbidden pairings, blackout terms …).  A
        candidate selection must satisfy all of them or the transition is
        never generated — equivalent to post-filtering the path set, but
        without building the violating subtrees.
    """

    max_courses_per_term: int = 3
    avoid_courses: FrozenSet[str] = field(default_factory=frozenset)
    empty_selection: str = "auto"
    enforce_min_selection: bool = True
    max_nodes: Optional[int] = None
    schedule: Optional[Schedule] = None
    constraints: Tuple["SelectionConstraint", ...] = ()

    def __post_init__(self) -> None:
        if self.max_courses_per_term < 1:
            raise InvalidConfigError(
                f"max_courses_per_term must be >= 1, got {self.max_courses_per_term}"
            )
        if self.empty_selection not in _EMPTY_POLICIES:
            raise InvalidConfigError(
                f"empty_selection must be one of {_EMPTY_POLICIES}, "
                f"got {self.empty_selection!r}"
            )
        if self.max_nodes is not None and self.max_nodes < 1:
            raise InvalidConfigError(f"max_nodes must be >= 1, got {self.max_nodes}")
        if not isinstance(self.avoid_courses, frozenset):
            object.__setattr__(self, "avoid_courses", frozenset(self.avoid_courses))
        if not isinstance(self.constraints, tuple):
            object.__setattr__(self, "constraints", tuple(self.constraints))
