"""Ranked (top-k) learning paths — best-first search (§4.3.2).

Uniform-cost search over partial paths: a priority queue keyed by path
cost, expanding the cheapest frontier node first.  When a popped node
satisfies the goal, its path is the next-best complete path (edge costs
are non-negative, so no cheaper completion can still be hiding in the
queue — Lemma 2); after ``k`` emissions the search stops without building
the rest of the graph.  The goal-driven pruning strategies run before
every expansion, exactly as the paper prescribes.

Partial paths are stored as parent-linked nodes, so memory is one record
per generated node rather than one copy of every prefix.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import AbstractSet, FrozenSet, List, Optional, Tuple

from ..catalog import Catalog
from ..errors import ExplorationError
from ..graph.path import LearningPath
from ..graph.status import EnrollmentStatus
from ..obs.explain import DecisionEvent
from ..obs.live import budget_exceeded
from ..obs.runtime import NULL_OBSERVABILITY, Observability
from ..requirements import Goal
from ..semester import Term
from .config import ExplorationConfig
from .expansion import Expander
from .goal_driven import _selection_floor
from .pruning import (
    Pruner,
    PruningContext,
    PruningStats,
    TimeBasedPruner,
    default_pruners,
    examine_pruners,
    first_firing_pruner,
    suppressed_selection_count,
)
from .ranking import RankingFunction
from .stats import ExplorationStats

__all__ = ["RankedResult", "generate_ranked"]


class _SearchNode:
    """A frontier entry: a status plus the parent link that names its path."""

    __slots__ = ("status", "parent", "selection", "cost", "depth", "eid")

    def __init__(
        self,
        status: EnrollmentStatus,
        parent: Optional["_SearchNode"],
        selection: FrozenSet[str],
        cost: float,
        depth: int,
        eid: Optional[int] = None,
    ):
        self.status = status
        self.parent = parent
        self.selection = selection
        self.cost = cost
        self.depth = depth
        #: Explain-only node id, assigned only when decisions are recorded.
        self.eid = eid

    def decision(self, kind: str, **kwargs) -> DecisionEvent:
        """The decision event closing this node (explain recording only)."""
        return DecisionEvent(
            kind=kind,
            node_id=self.eid if self.eid is not None else -1,
            parent_id=self.parent.eid if self.parent is not None else None,
            term=str(self.status.term),
            selection=tuple(sorted(self.selection)),
            completed=tuple(sorted(self.status.completed)),
            **kwargs,
        )

    def materialize(self) -> LearningPath:
        statuses = [self.status]
        selections: List[FrozenSet[str]] = []
        node = self
        while node.parent is not None:
            selections.append(node.selection)
            node = node.parent
            statuses.append(node.status)
        statuses.reverse()
        selections.reverse()
        return LearningPath(statuses, selections)


@dataclass
class RankedResult:
    """Output of a ranked run: up to ``k`` goal paths in cost order."""

    paths: List[LearningPath]
    costs: List[float]
    ranking: RankingFunction
    stats: ExplorationStats
    pruning_stats: PruningStats
    exhausted: bool = field(default=False)

    def __len__(self) -> int:
        return len(self.paths)

    def ranked(self) -> List[Tuple[float, LearningPath]]:
        """``(cost, path)`` pairs, best first."""
        return list(zip(self.costs, self.paths))


def generate_ranked(
    catalog: Catalog,
    start_term: Term,
    goal: Goal,
    end_term: Term,
    k: int,
    ranking: RankingFunction,
    completed: AbstractSet[str] = frozenset(),
    config: Optional[ExplorationConfig] = None,
    pruners: Optional[List[Pruner]] = None,
    obs: Optional[Observability] = None,
    cache=None,
    initial_cost: float = 0.0,
) -> RankedResult:
    """The top-``k`` goal paths under ``ranking``, best first.

    Parameters
    ----------
    k:
        How many paths to return (fewer when fewer goal paths exist — then
        ``result.exhausted`` is true).
    ranking:
        Any :class:`~repro.core.ranking.RankingFunction`; the search is
        agnostic to the specific function as long as edge costs are
        non-negative.
    pruners:
        As in goal-driven generation; ``None`` uses the paper's stack.
    initial_cost:
        Cost already accrued *before* the start status.  The root search
        node starts at this cost, so every emitted cost is absolute.  Used
        by ``repro.parallel`` when re-rooting the search at a frontier
        status: accumulating from the seed's serial cost keeps worker
        floating-point sums bit-identical to the serial run's
        left-to-right accumulation.
    obs:
        Optional :class:`~repro.obs.runtime.Observability`; when enabled,
        the run emits a ``run:ranked`` span whose ``rank`` phases cover
        edge-cost and admissible-bound evaluation.
    cache:
        Optional :class:`~repro.cache.ExplorationCache`; memoizes goal
        queries (including the rankings' ``remaining_cost_bound`` flow
        solves), option sets, and pruning verdicts.  Output-identical.

    Returns
    -------
    RankedResult
        ``paths[i]`` has cost ``costs[i]``, non-decreasing in ``i``.

    Notes
    -----
    ``config.max_nodes`` bounds the number of search nodes *generated*
    (queue inserts), raising :class:`~repro.errors.BudgetExceededError`
    beyond it.
    """
    config = config or ExplorationConfig()
    if k < 1:
        raise ExplorationError(f"k must be >= 1, got {k}")
    if end_term < start_term:
        raise ExplorationError(f"end term {end_term} precedes start term {start_term}")
    unknown = frozenset(completed) - catalog.course_ids()
    if unknown:
        raise ExplorationError(f"completed courses not in catalog: {sorted(unknown)}")

    if cache is not None:
        goal = cache.wrap_goal(goal)
    context = PruningContext(
        catalog=catalog, goal=goal, end_term=end_term, config=config, cache=cache
    )
    if pruners is None:
        pruners = default_pruners(context)
    time_pruner = next((p for p in pruners if isinstance(p, TimeBasedPruner)), None)
    transpositions = (
        cache.transposition_view(goal, end_term, config, pruners)
        if cache is not None and pruners
        else None
    )

    if obs is None:
        obs = NULL_OBSERVABILITY
    stats = ExplorationStats()
    pruning_stats = PruningStats()
    stats.start_timer()
    expander = Expander(catalog, end_term, config, obs=obs, cache=cache)

    recorder = obs.decisions
    progress = obs.progress
    budget = obs.budget
    if progress is not None:
        progress.begin_run("ranked", horizon=int(end_term - start_term))
    if budget is not None:
        budget.arm()
    root = _SearchNode(
        expander.initial_status(start_term, completed),
        None,
        frozenset(),
        initial_cost,
        0,
        eid=0 if recorder is not None else None,
    )
    stats.record_node()
    tiebreak = itertools.count()
    next_eid = itertools.count(1)

    with obs.run("ranked", start=str(start_term), end=str(end_term), k=k):
        with obs.phase("rank"):
            root_bound = ranking.remaining_cost_bound(root.status, goal, config)
        # Heap entries are (cost + admissible completion bound, -depth, order,
        # node): A* ordering with deeper-first tie-breaking, so with unit edge
        # costs the search dives toward completable plans instead of sweeping
        # every shallow node first.  Goal paths still emerge in true cost order
        # because the bound never over-estimates (see RankingFunction docs).
        frontier: List[Tuple[float, int, int, _SearchNode]] = []
        if not math.isinf(root_bound):
            frontier.append((root_bound, 0, next(tiebreak), root))

        paths: List[LearningPath] = []
        costs: List[float] = []
        generated = 1

        while frontier and len(paths) < k:
            _priority, _neg_depth, _order, node = heapq.heappop(frontier)
            cost = node.cost
            status = node.status
            if budget is not None:
                budget.tick(stats, progress)

            if goal.is_satisfied(status.completed):
                paths.append(node.materialize())
                costs.append(cost)
                stats.record_terminal("goal")
                if progress is not None:
                    progress.record_terminal("goal", node.depth)
                    progress.record_emit()
                if recorder is not None:
                    recorder.record(node.decision("goal", detail={"cost": cost}))
                continue
            if status.term >= end_term:
                stats.record_terminal("deadline")
                if progress is not None:
                    progress.record_terminal("deadline", node.depth)
                if recorder is not None:
                    recorder.record(node.decision("deadline"))
                continue
            if transpositions is not None:
                with obs.phase("prune"):
                    firing_name, verdict_dicts = transpositions.consult(
                        pruners, status, obs, want_verdicts=recorder is not None
                    )
            elif recorder is None:
                with obs.phase("prune"):
                    firing = first_firing_pruner(pruners, status, obs)
                firing_name = firing.name if firing is not None else None
                verdict_dicts = None
            else:
                with obs.phase("prune"):
                    firing, verdicts = examine_pruners(pruners, status, obs)
                firing_name = firing.name if firing is not None else None
                verdict_dicts = tuple(v.as_dict() for v in verdicts)
            if firing_name is not None:
                stats.record_terminal("pruned")
                stats.record_prune(firing_name)
                pruning_stats.record(firing_name)
                if progress is not None:
                    progress.record_pruned(node.depth)
                if recorder is not None:
                    recorder.record(
                        node.decision(
                            "prune",
                            strategy=firing_name,
                            verdicts=verdict_dicts,
                        )
                    )
                continue

            floor = _selection_floor(time_pruner, config, status)
            suppressed = suppressed_selection_count(len(status.options), floor)
            if suppressed:
                stats.record_prune("time", suppressed)
                pruning_stats.record("time", suppressed)
                if recorder is not None:
                    recorder.record(
                        node.decision(
                            "suppressed",
                            strategy="time",
                            detail={
                                "suppressed": suppressed,
                                "floor": floor,
                                "option_count": len(status.options),
                            },
                        )
                    )
            expanded = False
            children = 0
            with obs.phase("expand"):
                for selection, child_status in expander.successors(
                    status, required_minimum=floor
                ):
                    with obs.phase("rank"):
                        edge_cost = ranking.edge_cost(selection, status.term)
                    if edge_cost < 0:
                        raise ExplorationError(
                            f"ranking {ranking.name!r} produced a negative edge cost "
                            f"({edge_cost}) — best-first ordering would be unsound"
                        )
                    if math.isinf(edge_cost):
                        continue  # impossible edge (e.g. zero offering probability)
                    with obs.phase("rank"):
                        bound = ranking.remaining_cost_bound(child_status, goal, config)
                    if math.isinf(bound):
                        continue  # goal unreachable from the child
                    generated += 1
                    if config.max_nodes is not None and generated > config.max_nodes:
                        raise budget_exceeded(
                            "nodes", config.max_nodes, generated,
                            stats=stats, progress=progress, budget=budget,
                        )
                    child = _SearchNode(
                        child_status,
                        node,
                        selection,
                        cost + edge_cost,
                        node.depth + 1,
                        eid=next(next_eid) if recorder is not None else None,
                    )
                    stats.record_node()
                    stats.record_edge()
                    heapq.heappush(
                        frontier, (child.cost + bound, -child.depth, next(tiebreak), child)
                    )
                    expanded = True
                    children += 1
            if not expanded:
                stats.record_terminal("dead_end")
                if progress is not None:
                    progress.record_terminal("dead_end", node.depth)
                if recorder is not None:
                    recorder.record(node.decision("dead_end"))
            else:
                if progress is not None:
                    progress.record_expanded(node.depth, children)
                    progress.set_frontier(len(frontier))
                if recorder is not None:
                    recorder.record(
                        node.decision("expand", detail={"children": children})
                    )

    stats.stop_timer()
    obs.record_run_stats("ranked", stats)
    return RankedResult(
        paths=paths,
        costs=costs,
        ranking=ranking,
        stats=stats,
        pruning_stats=pruning_stats,
        exhausted=len(paths) < k,
    )
