"""The goal-driven algorithm's pruning strategies (§4.2.1–4.2.2).

Both strategies answer the same question about a node ``n_i``: *can any
path out of here still satisfy the goal by the end semester?*  Both are
sound (Lemma 1 and the analogous argument for availability pruning): they
only cut subtrees that provably contain no goal path, which the test suite
verifies by comparing pruned and unpruned output path sets.

* :class:`TimeBasedPruner` —
  ``min_i = left_i − m·(d − s_i − 1)``; prune when ``min_i > m``.
  ``left_i`` is the goal's minimum-additional-courses bound, computed by
  the goal itself (max-flow for degree goals, per Parameswaran et al.).
  The pruner also exposes ``min_i`` so the generator can skip selections
  smaller than it ("strategic course selections").

* :class:`AvailabilityPruner` — assume the student takes *every* course
  offered in the remaining semesters (``s_i`` through ``d − 1``; a course
  taken in term ``t`` completes by ``t + 1``); if the goal is still not
  satisfied, prune.  This catches what the time bound's best-case
  assumption misses: courses that simply will not be offered in time
  (Fig. 3's ``n4``).

Strategies are consulted in list order and the **first** one that fires
gets the credit in :class:`PruningStats` — the paper's 82%/18% split is
measured the same way (time-based is listed first).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..catalog import Catalog
from ..catalog.schedule import Schedule
from ..graph.status import EnrollmentStatus
from ..requirements import Goal
from ..semester import Term
from .config import ExplorationConfig

__all__ = [
    "PruningContext",
    "PruneVerdict",
    "Pruner",
    "TimeBasedPruner",
    "AvailabilityPruner",
    "PruningStats",
    "default_pruners",
    "first_firing_pruner",
    "examine_pruners",
]


def _jsonable(value: float) -> Any:
    """Bound values as JSON-strict numbers (``inf`` becomes the string
    ``"inf"`` so verdicts survive any JSON round-trip)."""
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    return value


@dataclass(frozen=True)
class PruningContext:
    """Everything a pruning strategy may consult about the current run."""

    catalog: Catalog
    goal: Goal
    end_term: Term
    config: ExplorationConfig
    #: Optional :class:`~repro.cache.ExplorationCache`; when present,
    #: strategies route shareable computations (the availability window)
    #: through its memos instead of private per-instance dicts.
    cache: Optional[Any] = None

    @property
    def schedule(self) -> Schedule:
        """The active schedule (config override or catalog default)."""
        if self.config.schedule is not None:
            return self.config.schedule
        return self.catalog.schedule


@dataclass(frozen=True)
class PruneVerdict:
    """One strategy's structured answer for one node — the EXPLAIN record.

    ``detail`` carries the concrete bound values the decision rests on
    (``left_i``, ``min_i``, ``m``, ``semesters_after_this`` = ``d − s_i − 1``
    for the time bound; the availability shortfall courses for the
    availability bound) plus counterfactuals when the strategy fired: what
    ``m`` or ``d`` would have had to be for the node to survive.  Every
    value is JSON-serializable so verdicts flow into decision-audit files
    unchanged.
    """

    strategy: str
    fired: bool
    detail: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """A plain JSON-serializable snapshot (strict: no ``Infinity``)."""
        return {
            "strategy": self.strategy,
            "fired": self.fired,
            "detail": {key: _jsonable(value) for key, value in self.detail.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PruneVerdict":
        """Inverse of :meth:`as_dict` (restores ``"inf"`` bound values)."""
        return cls(
            strategy=data["strategy"],
            fired=bool(data["fired"]),
            detail={
                key: math.inf if value == "inf" else value
                for key, value in data.get("detail", {}).items()
            },
        )


class Pruner:
    """Abstract pruning strategy.

    Subclasses must be *sound*: ``should_prune(status)`` may return true
    only when no expansion of ``status`` can reach a goal node by the end
    semester.  ``examine`` is the structured form of the same answer; the
    built-in strategies override it to expose the actual bound values,
    while ``should_prune`` remains the allocation-free hot path.
    """

    #: Short identifier used in statistics (``"time"``, ``"availability"``).
    name: str = "pruner"

    def __init__(self, context: PruningContext):
        self._context = context

    @property
    def context(self) -> PruningContext:
        """The run context this pruner was built for."""
        return self._context

    def should_prune(self, status: EnrollmentStatus) -> bool:
        """Whether the subtree rooted at ``status`` is provably goalless."""
        raise NotImplementedError

    def examine(self, status: EnrollmentStatus) -> PruneVerdict:
        """The same decision as :meth:`should_prune`, with its evidence.

        The default wraps ``should_prune`` with an empty detail dict so
        third-party strategies keep working under explain recording.
        """
        return PruneVerdict(strategy=self.name, fired=self.should_prune(status))


class TimeBasedPruner(Pruner):
    """§4.2.1: not enough semesters remain even in the best case."""

    name = "time"

    def min_required_this_term(self, status: EnrollmentStatus) -> float:
        """The paper's ``min_i``: the fewest courses that must be taken in
        this semester for the goal to remain reachable, assuming ``m``
        courses in every later semester.  May be ≤ 0 (no constraint),
        ``> m`` (hopeless), or ``inf`` (goal unsatisfiable outright)."""
        context = self._context
        left = context.goal.remaining_courses(status.completed)
        if math.isinf(left):
            return math.inf
        m = context.config.max_courses_per_term
        semesters_after_this = context.end_term - status.term - 1
        return left - m * semesters_after_this

    def should_prune(self, status: EnrollmentStatus) -> bool:
        return self.min_required_this_term(status) > self._context.config.max_courses_per_term

    def examine(self, status: EnrollmentStatus) -> PruneVerdict:
        context = self._context
        m = context.config.max_courses_per_term
        left = context.goal.remaining_courses(status.completed)
        semesters_after = context.end_term - status.term - 1
        min_i = math.inf if math.isinf(left) else left - m * semesters_after
        fired = min_i > m
        detail: Dict[str, Any] = {
            "left_i": _jsonable(left),
            "min_i": _jsonable(min_i),
            "m": m,
            "semesters_after_this": semesters_after,
            # Signed distance to the bound: > 0 means the node was cut,
            # <= 0 is the surviving margin (0 is the nearest near-miss).
            "slack": _jsonable(min_i - m),
        }
        if fired and not math.isinf(left):
            # Counterfactuals: the smallest per-term cap, and the fewest
            # extra semesters, under which this node would have survived.
            semesters_remaining = semesters_after + 1  # includes this term
            detail["required_m"] = int(math.ceil(left / semesters_remaining))
            needed_after = int(math.ceil((left - m) / m))
            detail["extra_semesters"] = needed_after - semesters_after
        return PruneVerdict(strategy=self.name, fired=fired, detail=detail)


class AvailabilityPruner(Pruner):
    """§4.2.2: even taking everything still offered cannot meet the goal."""

    name = "availability"

    def __init__(self, context: PruningContext):
        super().__init__(context)
        self._offered_cache: Dict[Term, FrozenSet[str]] = {}

    def _offered_from(self, term: Term) -> FrozenSet[str]:
        """Courses offered in any remaining semester ``[term, d − 1]``,
        minus the avoid-list (cached per term).

        With a :class:`~repro.cache.ExplorationCache` on the context, the
        window is computed in its shared eval memo — so every pruner
        instance across deadline/goal/ranked runs over the same catalog
        shares one computation — and the per-instance dict becomes a
        lookup-free first level.
        """
        cached = self._offered_cache.get(term)
        if cached is not None:
            return cached
        context = self._context
        last_useful = context.end_term - 1
        if context.cache is not None:
            offered = context.cache.eval.offered_window(
                context.schedule, term, last_useful, context.config.avoid_courses
            )
        elif last_useful < term:
            offered = frozenset()
        else:
            offered = (
                context.schedule.offered_between(term, last_useful)
                - context.config.avoid_courses
            )
        self._offered_cache[term] = offered
        return offered

    def should_prune(self, status: EnrollmentStatus) -> bool:
        # The optimistic end-semester completion set X_e: everything done
        # plus everything that could still be taken (ignoring prerequisites
        # and the per-term cap — both only shrink it, keeping this sound).
        best_case = status.completed | self._offered_from(status.term)
        return not self._context.goal.is_satisfied(best_case)

    def examine(self, status: EnrollmentStatus) -> PruneVerdict:
        goal = self._context.goal
        offered = self._offered_from(status.term)
        best_case = status.completed | offered
        fired = not goal.is_satisfied(best_case)
        detail: Dict[str, Any] = {"offered_remaining": len(offered)}
        if fired:
            # How many courses the goal still lacks even in the best case,
            # and which goal courses will never be on offer again — the
            # Fig. 3 n4 evidence ("what exactly is unavailable?").
            detail["shortfall"] = _jsonable(goal.remaining_courses(best_case))
            detail["unavailable_goal_courses"] = sorted(goal.courses() - best_case)
        return PruneVerdict(strategy=self.name, fired=fired, detail=detail)


class PruningStats:
    """Per-strategy prune-event counters for one run."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: Dict[str, int] = {}

    def __eq__(self, other: object) -> bool:
        if other.__class__ is self.__class__:
            return self.events == other.events
        return NotImplemented

    __hash__ = None

    def __repr__(self) -> str:
        return f"PruningStats(events={self.events!r})"

    def __reduce__(self):
        return (_restore_pruning_stats, (dict(self.events),))

    def record(self, pruner_name: str, count: int = 1) -> None:
        """Count ``count`` subtrees cut by ``pruner_name``."""
        self.events[pruner_name] = self.events.get(pruner_name, 0) + count

    def merge(self, other: "PruningStats") -> "PruningStats":
        """Fold another run's prune tallies into this one; returns self.

        Mirrors :meth:`ExplorationStats.merge
        <repro.core.stats.ExplorationStats.merge>` — every site that
        combines runs (multi-horizon benchmarks, the parallel engine's
        shard merge) goes through this instead of ad-hoc dict addition.
        """
        for name, count in other.events.items():
            self.events[name] = self.events.get(name, 0) + count
        return self

    @property
    def total(self) -> int:
        """Total prune events across strategies."""
        return sum(self.events.values())

    def share(self, pruner_name: str) -> float:
        """Fraction of prune events credited to one strategy."""
        if self.total == 0:
            return 0.0
        return self.events.get(pruner_name, 0) / self.total

    def as_dict(self) -> Dict[str, int]:
        """A plain-dict snapshot."""
        return dict(self.events)


def _restore_pruning_stats(events: Dict[str, int]) -> "PruningStats":
    """Pickle helper: rebuild a :class:`PruningStats` (its ``__init__``
    takes no arguments, so the default slot protocol cannot be used)."""
    stats = PruningStats()
    stats.events.update(events)
    return stats


def default_pruners(context: PruningContext) -> List[Pruner]:
    """The paper's strategy stack, in the paper's order: time-based first,
    then course-availability."""
    return [TimeBasedPruner(context), AvailabilityPruner(context)]


def first_firing_pruner(
    pruners: Sequence[Pruner], status: EnrollmentStatus, obs=None
) -> Optional[Pruner]:
    """The first strategy (in list order) that prunes ``status``, if any.

    ``obs`` is an optional enabled
    :class:`~repro.obs.runtime.Observability`; when given, each strategy's
    check is charged to its own ``prune:<name>`` phase (the §5.2 split,
    but for *time spent* rather than subtrees cut).  The plain loop stays
    untouched so the uninstrumented path pays nothing.
    """
    if obs is not None and obs.enabled:
        for pruner in pruners:
            with obs.phase("prune:" + pruner.name):
                fired = pruner.should_prune(status)
            if fired:
                return pruner
        return None
    for pruner in pruners:
        if pruner.should_prune(status):
            return pruner
    return None


def examine_pruners(
    pruners: Sequence[Pruner], status: EnrollmentStatus, obs=None
) -> Tuple[Optional[Pruner], List[PruneVerdict]]:
    """Consult the stack like :func:`first_firing_pruner`, keeping evidence.

    Returns the firing strategy (or ``None``) together with the structured
    verdict of **every strategy consulted** — including the non-firing ones
    before it, whose near-miss slack the explain report surfaces.  Same
    first-fires-wins semantics and the same per-strategy phase charging as
    the boolean path; used only when decision recording is on.
    """
    verdicts: List[PruneVerdict] = []
    instrumented = obs is not None and obs.enabled
    for pruner in pruners:
        if instrumented:
            with obs.phase("prune:" + pruner.name):
                verdict = pruner.examine(status)
        else:
            verdict = pruner.examine(status)
        verdicts.append(verdict)
        if verdict.fired:
            return pruner, verdicts
    return None, verdicts


def suppressed_selection_count(option_count: int, floor: int) -> int:
    """Subtrees eliminated by the strategic-selection floor at one node.

    When ``enforce_min_selection`` skips every selection smaller than the
    time-derived ``min_i``, each skipped selection is a subtree that the
    time-based bound eliminated — the generators credit these to the
    ``time`` strategy so the §5.2 pruning-share accounting reflects what
    each bound actually cut (without the floor, each of these children
    would be created and then pruned by the time strategy one level down).
    """
    from math import comb

    if floor <= 1 or option_count <= 0:
        return 0
    upper = min(floor - 1, option_count)
    return sum(comb(option_count, size) for size in range(1, upper + 1))
