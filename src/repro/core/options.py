"""Course-combination enumeration (the ``W ⊆ Y`` loop of Algorithm 1).

Given an option set ``Y`` and the per-term cap ``m``, Algorithm 1 iterates
every course combination ``W`` with ``|W| ≤ m``.  The paper's combination
count ``Σ_{i=1..m} C(|Y|, i)`` excludes the empty set; empty transitions
are a separate, policy-controlled move (see
:class:`~repro.core.config.ExplorationConfig.empty_selection`).

Enumeration order is deterministic — sizes ascending, lexicographic within
a size — so graphs, path order, and benchmark results are reproducible
run-to-run.
"""

from __future__ import annotations

import itertools
from math import comb
from typing import AbstractSet, FrozenSet, Iterator, Optional

from ..catalog import Catalog
from ..catalog.schedule import Schedule
from ..semester import Term, term_range

__all__ = [
    "iter_selections",
    "selection_count",
    "has_relevant_future_offering",
]


def iter_selections(
    options: AbstractSet[str],
    max_per_term: int,
    min_per_term: int = 1,
) -> Iterator[FrozenSet[str]]:
    """Yield every selection ``W ⊆ options`` with
    ``min_per_term ≤ |W| ≤ max_per_term``, deterministically ordered.

    ``min_per_term`` implements the strategic-selection refinement: when the
    time-based pruner proves at least ``min_i`` courses are needed this
    semester, smaller selections are skipped.  Pass ``min_per_term=0`` to
    include the empty selection.
    """
    ordered = sorted(options)
    lower = max(min_per_term, 0)
    upper = min(max_per_term, len(ordered))
    for size in range(lower, upper + 1):
        for combo in itertools.combinations(ordered, size):
            yield frozenset(combo)


def selection_count(option_count: int, max_per_term: int) -> int:
    """The paper's per-node branching factor ``Σ_{i=1..m} C(|Y|, i)``."""
    return sum(comb(option_count, size) for size in range(1, max_per_term + 1))


def has_relevant_future_offering(
    catalog: Catalog,
    completed: AbstractSet[str],
    current_term: Term,
    end_term: Term,
    exclude: AbstractSet[str] = frozenset(),
    schedule: Optional[Schedule] = None,
) -> bool:
    """Whether any not-completed, non-avoided course is offered *after*
    ``current_term`` and strictly before ``end_term``.

    This is the ``auto`` empty-selection test: skipping a semester is only
    worth modelling when something could still be taken later (courses
    taken in semester ``t`` complete by ``t+1``, so the last useful
    offering term is ``end_term − 1``).  Fig. 3's ``n4`` passes this test
    (11A returns in Fall '12); ``n6`` fails it and becomes a dead end.
    """
    schedule = schedule if schedule is not None else catalog.schedule
    last_useful = end_term - 1
    if last_useful <= current_term:
        return False
    for term in term_range(current_term + 1, last_useful):
        for course_id in schedule.offered_in(term):
            if course_id not in completed and course_id not in exclude:
                return True
    return False
