"""Ranking functions for learning paths (§4.3.1).

A :class:`RankingFunction` assigns a **non-negative cost** to every edge
(a per-semester selection); a path's cost is the sum of its edge costs.
Non-negativity makes path cost monotone along any prefix, which is the
property Lemma 2's best-first argument needs ("subpaths of p_m must rank
higher than p_m").

The paper's three rankings:

* :class:`TimeRanking` — every edge costs 1, so path cost = number of
  semesters (shortest-completion-time paths first).
* :class:`WorkloadRanking` — an edge costs the sum of its courses' weekly
  workload hours ``w(c)`` ("easiest" paths first).
* :class:`ReliabilityRanking` — the paper defines an edge's cost as the
  *product* of its courses' offering probabilities and ranks by the product
  over edges.  We carry ``−log prob`` instead: additive, non-negative
  (probabilities ≤ 1), and ordering-equivalent to the product — an edge
  with a zero-probability course gets infinite cost, i.e. the branch is
  unreachable.  :meth:`ReliabilityRanking.score` converts a path cost back
  to the paper's probability scale.

Custom rankings: subclass and implement :meth:`edge_cost`; the ranked
generator is agnostic to the specific function, exactly as §4.3 promises.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, AbstractSet

from ..catalog import Catalog, OfferingModel
from ..graph.path import LearningPath
from ..semester import Term

if TYPE_CHECKING:  # avoid an import cycle; used in type hints only
    from ..graph.status import EnrollmentStatus
    from ..requirements import Goal
    from .config import ExplorationConfig

__all__ = [
    "RankingFunction",
    "TimeRanking",
    "WorkloadRanking",
    "ReliabilityRanking",
]


class RankingFunction:
    """Abstract path ranking via additive, non-negative edge costs."""

    #: Short identifier used in results and benchmark labels.
    name: str = "ranking"

    def edge_cost(self, selection: AbstractSet[str], term: Term) -> float:
        """Cost of electing ``selection`` in ``term``.  Must be ≥ 0;
        ``math.inf`` marks an impossible edge."""
        raise NotImplementedError

    def path_cost(self, path: LearningPath) -> float:
        """Total cost of a complete path (sum of its edge costs)."""
        return sum(self.edge_cost(selection, term) for term, selection in path)

    def remaining_cost_bound(
        self,
        status: "EnrollmentStatus",
        goal: "Goal",
        config: "ExplorationConfig",
    ) -> float:
        """An *admissible* lower bound on the cost still needed to reach a
        goal node from ``status`` (never over-estimates).

        Best-first search adds this to the accumulated path cost (A*):
        with unit edge costs, pure best-first degenerates into
        breadth-first expansion of every shallow node before the first
        goal depth, which is exactly the explosion the paper's Table 2
        documents.  An admissible bound keeps the top-k result set and
        order identical (the bound for the popped goal is 0, so goals
        still emerge in true cost order) while steering the frontier
        toward completable plans.  ``math.inf`` marks a status from which
        the goal is unreachable.  The default is the trivial bound 0.
        """
        return 0.0

    def describe(self) -> str:
        """Human-readable name."""
        return self.name


class TimeRanking(RankingFunction):
    """Rank by goal-completion time: every semester transition costs 1."""

    name = "time"

    def edge_cost(self, selection: AbstractSet[str], term: Term) -> float:
        return 1.0

    def remaining_cost_bound(self, status, goal, config) -> float:
        """At least ``⌈left_i / m⌉`` more semesters are needed.

        Consistent: one transition completes at most ``m`` courses, so the
        bound drops by at most 1 (= the edge cost) per edge — A* with this
        bound emits goal paths in exact cost order.
        """
        left = goal.remaining_courses(status.completed)
        if math.isinf(left):
            return math.inf
        m = config.max_courses_per_term
        return math.ceil(left / m)


class WorkloadRanking(RankingFunction):
    """Rank by total workload: an edge costs the sum of ``w(c)`` over its
    selection (a skipped semester costs 0)."""

    name = "workload"

    def __init__(self, catalog: Catalog):
        self._catalog = catalog

    def edge_cost(self, selection: AbstractSet[str], term: Term) -> float:
        return sum(self._catalog[course_id].workload_hours for course_id in selection)

    def remaining_cost_bound(self, status, goal, config) -> float:
        """At least ``left_i`` more goal courses must be taken; whatever
        they are, they cost at least the sum of the ``left_i`` *lightest*
        not-yet-completed goal courses (a greedy, admissible bound)."""
        left = goal.remaining_courses(status.completed)
        if math.isinf(left):
            return math.inf
        left = int(left)
        if left == 0:
            return 0.0
        pending = sorted(
            self._catalog[cid].workload_hours
            for cid in goal.courses() - status.completed
            if cid in self._catalog
        )
        return sum(pending[:left])


class ReliabilityRanking(RankingFunction):
    """Rank by offering reliability (most likely to materialize first)."""

    name = "reliability"

    def __init__(self, offering_model: OfferingModel):
        self._model = offering_model

    def edge_cost(self, selection: AbstractSet[str], term: Term) -> float:
        probability = self._model.selection_probability(selection, term)
        if probability <= 0.0:
            return math.inf
        return -math.log(probability)

    def score(self, cost: float) -> float:
        """Convert an additive cost back to the paper's probability scale
        (the product of per-edge offering probabilities)."""
        if math.isinf(cost):
            return 0.0
        return math.exp(-cost)

    def path_reliability(self, path: LearningPath) -> float:
        """The path's materialization probability."""
        return path.reliability(self._model)
