"""Additional ranking functions (paper §6: "more complex ranking
functions").

All follow the same contract as the built-in three: non-negative additive
edge costs plus an admissible completion bound, so the ranked generator's
top-k guarantee (Lemma 2) carries over unchanged.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Sequence, Tuple

from ..errors import ExplorationError
from ..semester import Term
from .ranking import RankingFunction

__all__ = ["CompositeRanking", "CourseCountRanking", "SpreadPenaltyRanking"]


class CompositeRanking(RankingFunction):
    """A non-negatively weighted sum of other rankings.

    Example: ``CompositeRanking([(1.0, TimeRanking()), (0.05,
    WorkloadRanking(catalog))])`` prefers fast plans but breaks ties (and
    trades one extra semester) toward lighter ones.

    Admissibility composes: the weighted sum of admissible bounds is an
    admissible bound for the weighted-sum cost.
    """

    name = "composite"

    def __init__(self, components: Sequence[Tuple[float, RankingFunction]]):
        components = tuple(components)
        if not components:
            raise ExplorationError("CompositeRanking needs at least one component")
        for weight, ranking in components:
            if weight < 0:
                raise ExplorationError(
                    f"component weight must be >= 0, got {weight} for {ranking.name!r}"
                )
            if not isinstance(ranking, RankingFunction):
                raise ExplorationError(f"expected RankingFunction, got {ranking!r}")
        self._components = components
        self.name = "+".join(
            f"{weight:g}*{ranking.name}" for weight, ranking in components
        )

    def edge_cost(self, selection: AbstractSet[str], term: Term) -> float:
        return sum(
            weight * ranking.edge_cost(selection, term)
            for weight, ranking in self._components
        )

    def remaining_cost_bound(self, status, goal, config) -> float:
        return sum(
            weight * ranking.remaining_cost_bound(status, goal, config)
            for weight, ranking in self._components
        )


class CourseCountRanking(RankingFunction):
    """Rank by *total number of courses taken* — fewest first.

    Useful with degree goals whose groups overlap: the minimum-course
    plans are exactly the ones with no wasted electives.  The admissible
    bound is ``left_i`` itself (every still-needed course costs 1).
    """

    name = "course-count"

    def edge_cost(self, selection: AbstractSet[str], term: Term) -> float:
        return float(len(selection))

    def remaining_cost_bound(self, status, goal, config) -> float:
        left = goal.remaining_courses(status.completed)
        return left if not math.isinf(left) else math.inf


class SpreadPenaltyRanking(RankingFunction):
    """Rank by squared deviation of each semester's load from a target.

    An edge with ``h`` workload hours costs ``(h − target)²``, so plans
    whose semesters all sit near the target load rank above plans that
    alternate crunch and idle semesters — an additive stand-in for
    variance minimization (true variance is not edge-decomposable).

    The completion bound is 0 (a future semester could land exactly on
    target), which is trivially admissible.
    """

    name = "spread-penalty"

    def __init__(self, catalog, target_hours: float):
        if target_hours < 0:
            raise ExplorationError(f"target_hours must be >= 0, got {target_hours}")
        self._catalog = catalog
        self._target = target_hours

    def edge_cost(self, selection: AbstractSet[str], term: Term) -> float:
        hours = sum(self._catalog[course_id].workload_hours for course_id in selection)
        return (hours - self._target) ** 2
