"""Shared status-expansion machinery.

All three generators perform the same elementary step: given an enrollment
status, enumerate the legal selections ``W`` and produce the successor
statuses ``(s+1, X ∪ W, Y')``.  :class:`Expander` centralizes that step —
option-set computation, the per-term cap, avoid-lists, the empty-selection
policy, and the schedule override — so the algorithms differ only in
*which* nodes they expand and when they stop.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterator, Tuple

from ..catalog import Catalog
from ..graph.status import EnrollmentStatus
from ..semester import Term
from .config import ExplorationConfig
from .constraints import check_all
from .options import has_relevant_future_offering, iter_selections

__all__ = ["Expander"]


class Expander:
    """Successor generation for one exploration run.

    Parameters
    ----------
    catalog:
        The validated course catalog.
    end_term:
        The exploration deadline ``d`` (used by the ``auto``
        empty-selection policy to decide whether waiting can still pay off).
    config:
        Student constraints and engine knobs.
    cache:
        Optional :class:`~repro.cache.ExplorationCache`; option sets are
        then served from its shared eval memo, so transposed statuses
        (and repeated runs over the same catalog) compute each ``Y`` once.
    """

    def __init__(
        self,
        catalog: Catalog,
        end_term: Term,
        config: ExplorationConfig,
        obs=None,
        cache=None,
    ):
        self._catalog = catalog
        self._end_term = end_term
        self._config = config
        self._schedule = config.schedule if config.schedule is not None else catalog.schedule
        self._eval_memo = cache.eval if cache is not None else None
        # Resolve the metrics counter once up front so options() pays only a
        # None check per call when observability is off (the common case).
        self._options_counter = None
        if obs is not None and obs.metrics is not None:
            self._options_counter = obs.metrics.counter(
                "repro_option_sets_computed_total",
                "eligible-course option sets computed by the expander",
            )

    @property
    def catalog(self) -> Catalog:
        """The catalog this expander reads."""
        return self._catalog

    @property
    def end_term(self) -> Term:
        """The exploration deadline ``d``."""
        return self._end_term

    @property
    def config(self) -> ExplorationConfig:
        """The active configuration."""
        return self._config

    # -- status construction -------------------------------------------------

    def options(self, completed: AbstractSet[str], term: Term) -> FrozenSet[str]:
        """The option set ``Y`` for ``completed`` at ``term``
        (honouring the avoid-list and schedule override)."""
        if self._options_counter is not None:
            self._options_counter.inc()
        if self._eval_memo is not None:
            return self._eval_memo.options(
                self._catalog,
                self._schedule,
                completed,
                term,
                self._config.avoid_courses,
            )
        return self._catalog.eligible_courses(
            completed,
            term,
            exclude=self._config.avoid_courses,
            schedule=self._schedule,
        )

    def initial_status(
        self, term: Term, completed: AbstractSet[str] = frozenset()
    ) -> EnrollmentStatus:
        """The start node ``n_1``: ``(s, X, Y)`` with ``Y`` derived."""
        completed = frozenset(completed)
        return EnrollmentStatus(
            term=term, completed=completed, options=self.options(completed, term)
        )

    def bare_status(
        self, term: Term, completed: AbstractSet[str] = frozenset()
    ) -> EnrollmentStatus:
        """A status *without* its option set derived.

        Deriving ``Y`` is the expander's single most expensive step, and a
        status that is about to terminate (goal satisfied, deadline
        reached, pruned by a bound that only reads ``(s, X)``) never looks
        at it.  Callers on that fast path build a bare status here and
        upgrade survivors with :meth:`attach_options` only when expansion
        is actually imminent.  Status equality/hashing ignores options, so
        a bare status is interchangeable with the full one for lookups.
        """
        return EnrollmentStatus(term=term, completed=frozenset(completed))

    def attach_options(self, status: EnrollmentStatus) -> EnrollmentStatus:
        """``status`` with its option set ``Y`` derived (see
        :meth:`bare_status`)."""
        return EnrollmentStatus(
            term=status.term,
            completed=status.completed,
            options=self.options(status.completed, status.term),
        )

    # -- the expansion step ----------------------------------------------------

    def successors(
        self, status: EnrollmentStatus, required_minimum: int = 0
    ) -> Iterator[Tuple[FrozenSet[str], EnrollmentStatus]]:
        """Yield ``(selection, child status)`` for every legal move.

        ``required_minimum`` is the strategic-selection floor ``min_i``
        derived by time-based pruning (0 when unconstrained): non-empty
        selections smaller than it are skipped, and the empty move is
        suppressed whenever it is positive (an empty move under a positive
        floor provably leads to a child the time pruner rejects).

        Does **not** check the deadline — callers decide which nodes are
        terminal before asking for successors.
        """
        m = self._config.max_courses_per_term
        constraints = self._config.constraints
        floor = max(required_minimum, 0)
        emitted_any = False
        if status.options:
            for selection in iter_selections(status.options, m, max(1, floor)):
                if constraints and not check_all(
                    constraints, selection, status.term, status
                ):
                    continue
                emitted_any = True
                yield selection, self._child(status, selection)
        if floor == 0 and self._empty_move_allowed(status, emitted_any):
            empty = frozenset()
            if not constraints or check_all(constraints, empty, status.term, status):
                yield empty, self._child(status, empty)

    def _child(
        self, status: EnrollmentStatus, selection: FrozenSet[str]
    ) -> EnrollmentStatus:
        next_term = status.term + 1
        completed = status.completed | selection
        return EnrollmentStatus(
            term=next_term,
            completed=completed,
            options=self.options(completed, next_term),
        )

    def _empty_move_allowed(self, status: EnrollmentStatus, has_nonempty: bool) -> bool:
        policy = self._config.empty_selection
        if policy == "never":
            return False
        if policy == "always":
            return True
        # "auto" (paper-faithful): an empty transition exists only when no
        # course can actually be elected — an empty option set, or every
        # selection blocked by constraints (a blackout term) — and waiting
        # can still reach something.
        if has_nonempty:
            return False
        return has_relevant_future_offering(
            self._catalog,
            status.completed,
            status.term,
            self._end_term,
            exclude=self._config.avoid_courses,
            schedule=self._schedule,
        )
