"""Per-semester selection constraints (paper §6 future work).

The paper's conclusion calls for "customizable filters of the final
learning paths" to reduce output size.  Filters that only look at a
*single semester's selection* can do much better than post-filtering:
they can be enforced during generation, so violating subtrees are never
built.  A :class:`SelectionConstraint` is exactly that — a predicate over
``(selection, term, status)`` consulted by the shared
:class:`~repro.core.expansion.Expander` for every candidate move.

Enforcing a per-selection constraint during generation is *equivalent* to
generating everything and dropping violating paths afterwards (each
constraint only inspects one transition, so a path violates iff some
transition does — property-tested in ``tests/test_constraints.py``), and
pruning remains sound: constraints only remove paths, never add them.

Whole-path predicates (e.g. "total workload under X") cannot be decided
per transition; those live in :mod:`repro.analysis.filters` as post-hoc
path filters.

Constraints compose: pass any iterable via
:attr:`ExplorationConfig.constraints`; a selection must satisfy all of
them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet, Iterable, Tuple

from ..errors import InvalidConfigError
from ..semester import Term

if TYPE_CHECKING:
    from ..catalog import Catalog
    from ..graph.status import EnrollmentStatus

__all__ = [
    "SelectionConstraint",
    "MaxWorkloadPerTerm",
    "MaxCoursesInTerm",
    "ForbiddenCombination",
    "RequiredCompanions",
    "TermBlackout",
]


class SelectionConstraint:
    """Abstract per-transition constraint.

    Subclasses implement :meth:`allows`.  Constraints must be *stateless
    across transitions* — the verdict may depend only on the selection,
    the term, and the status it is taken from.  That independence is what
    makes generation-time enforcement equivalent to post-filtering.
    """

    #: Short identifier for error messages and reports.
    name: str = "constraint"

    def allows(
        self,
        selection: FrozenSet[str],
        term: Term,
        status: "EnrollmentStatus",
    ) -> bool:
        """Whether electing ``selection`` at ``status`` is acceptable."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable description."""
        return self.name

    def __str__(self) -> str:
        return self.describe()


class MaxWorkloadPerTerm(SelectionConstraint):
    """Cap the summed weekly workload hours of any one semester.

    The student-facing version of the paper's "paths whose workload does
    not exceed a given threshold" (§4.3.1), enforced per semester.
    """

    name = "max-workload-per-term"

    def __init__(self, catalog: "Catalog", max_hours: float):
        if max_hours < 0:
            raise InvalidConfigError(f"max_hours must be >= 0, got {max_hours}")
        self._catalog = catalog
        self._max_hours = max_hours

    @property
    def max_hours(self) -> float:
        """The per-semester hour cap."""
        return self._max_hours

    def allows(self, selection, term, status) -> bool:
        hours = sum(self._catalog[course_id].workload_hours for course_id in selection)
        return hours <= self._max_hours

    def describe(self) -> str:
        return f"at most {self._max_hours:g} workload hours per semester"


class MaxCoursesInTerm(SelectionConstraint):
    """A tighter course cap for specific terms (e.g. a part-time semester
    while the global ``m`` stays 3)."""

    name = "max-courses-in-term"

    def __init__(self, term: Term, max_courses: int):
        if max_courses < 0:
            raise InvalidConfigError(f"max_courses must be >= 0, got {max_courses}")
        self._term = term
        self._max_courses = max_courses

    def allows(self, selection, term, status) -> bool:
        if term != self._term:
            return True
        return len(selection) <= self._max_courses

    def describe(self) -> str:
        return f"at most {self._max_courses} courses in {self._term}"


class ForbiddenCombination(SelectionConstraint):
    """Never take all of these courses in the same semester
    (schedule conflicts, notorious workload pairings)."""

    name = "forbidden-combination"

    def __init__(self, course_ids: Iterable[str]):
        self._courses = frozenset(course_ids)
        if len(self._courses) < 2:
            raise InvalidConfigError(
                "a forbidden combination needs at least two courses"
            )

    @property
    def course_ids(self) -> FrozenSet[str]:
        """The mutually exclusive course set."""
        return self._courses

    def allows(self, selection, term, status) -> bool:
        return not self._courses <= selection

    def describe(self) -> str:
        return f"never {', '.join(sorted(self._courses))} together"


class RequiredCompanions(SelectionConstraint):
    """Taking ``course`` requires taking (or having taken) every
    companion — e.g. a lab section bundled with a lecture."""

    name = "required-companions"

    def __init__(self, course_id: str, companions: Iterable[str]):
        self._course = course_id
        self._companions = frozenset(companions)
        if not self._companions:
            raise InvalidConfigError("companions must be non-empty")
        if course_id in self._companions:
            raise InvalidConfigError("a course cannot be its own companion")

    def allows(self, selection, term, status) -> bool:
        if self._course not in selection:
            return True
        satisfied = selection | status.completed
        return self._companions <= satisfied

    def describe(self) -> str:
        return f"{self._course} requires {', '.join(sorted(self._companions))}"


class TermBlackout(SelectionConstraint):
    """Take nothing in the given terms (a planned leave of absence).

    Combine with ``empty_selection="always"`` (or an option set that
    empties naturally) so the blacked-out semester can still be skipped.
    """

    name = "term-blackout"

    def __init__(self, terms: Iterable[Term]):
        self._terms = frozenset(terms)
        if not self._terms:
            raise InvalidConfigError("blackout needs at least one term")

    @property
    def terms(self) -> FrozenSet[Term]:
        """The blacked-out terms."""
        return self._terms

    def allows(self, selection, term, status) -> bool:
        if term not in self._terms:
            return True
        return not selection

    def describe(self) -> str:
        rendered = ", ".join(str(t) for t in sorted(self._terms))
        return f"no courses in {rendered}"


def check_all(
    constraints: Tuple[SelectionConstraint, ...],
    selection: FrozenSet[str],
    term: Term,
    status: "EnrollmentStatus",
) -> bool:
    """Whether every constraint admits the selection."""
    return all(c.allows(selection, term, status) for c in constraints)
