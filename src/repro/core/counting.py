"""Counting-mode generation over the merged-status DAG.

The paper cannot materialize deadline-driven graphs beyond 5 semesters
(out of memory) and reports goal-driven runs with 4×10⁷ paths.  Those path
*counts* are still well-defined, and because the expansion of a status
depends only on ``(term, completed)``, two tree nodes with the same key
root identical subtrees.  Building the expansion over a
:class:`~repro.graph.dag.MergedStatusDag` therefore visits each distinct
status once, and an exact path count falls out of a linear DP — this is
how the reproduction fills Table 2's large rows without the authors'
32 GB server.

The goal/terminal/pruning rules here mirror
:mod:`~repro.core.deadline` and :mod:`~repro.core.goal_driven` exactly;
an equivalence property test asserts ``tree.count_paths() ==
dag.count_paths()`` on random catalogs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, List, Optional

from ..catalog import Catalog
from ..errors import BudgetExceededError, ExplorationError
from ..graph.dag import MergedStatusDag
from ..requirements import Goal
from ..semester import Term
from .config import ExplorationConfig
from .expansion import Expander
from .goal_driven import _selection_floor
from .pruning import (
    Pruner,
    PruningContext,
    PruningStats,
    TimeBasedPruner,
    default_pruners,
    first_firing_pruner,
    suppressed_selection_count,
)
from .stats import ExplorationStats

__all__ = [
    "CountResult",
    "build_deadline_dag",
    "build_goal_dag",
    "count_deadline_paths",
    "count_goal_paths",
]


@dataclass
class CountResult:
    """A merged DAG plus the path count it certifies."""

    dag: MergedStatusDag
    stats: ExplorationStats
    path_count: int
    pruning_stats: Optional[PruningStats] = None

    @property
    def distinct_statuses(self) -> int:
        """How many unique ``(term, completed)`` states were visited."""
        return self.dag.num_nodes


def _check_inputs(
    catalog: Catalog, start_term: Term, end_term: Term, completed: AbstractSet[str]
) -> None:
    if end_term < start_term:
        raise ExplorationError(f"end term {end_term} precedes start term {start_term}")
    unknown = frozenset(completed) - catalog.course_ids()
    if unknown:
        raise ExplorationError(f"completed courses not in catalog: {sorted(unknown)}")


def build_deadline_dag(
    catalog: Catalog,
    start_term: Term,
    end_term: Term,
    completed: AbstractSet[str] = frozenset(),
    config: Optional[ExplorationConfig] = None,
    cache=None,
) -> CountResult:
    """Deadline-driven expansion over merged statuses.

    Same rules as :func:`~repro.core.deadline.generate_deadline_driven`;
    ``path_count`` equals the tree algorithm's output-path count exactly.
    ``config.max_nodes`` bounds *distinct statuses* here.  ``cache`` is an
    optional :class:`~repro.cache.ExplorationCache` (option sets only
    here — the DAG already merges statuses within the run, so the shared
    memo pays off across *runs*).
    """
    config = config or ExplorationConfig()
    _check_inputs(catalog, start_term, end_term, completed)

    stats = ExplorationStats()
    stats.start_timer()
    expander = Expander(catalog, end_term, config, cache=cache)
    root = expander.initial_status(start_term, completed)
    dag = MergedStatusDag(root)
    stats.record_node()

    stack = [root.key]
    while stack:
        key = stack.pop()
        status = dag.status(key)
        if status.term >= end_term:
            dag.mark_terminal(key, "deadline")
            stats.record_terminal("deadline")
            continue
        expanded = False
        for selection, child_status in expander.successors(status):
            child_key, created = dag.ensure_node(child_status)
            if created:
                if config.max_nodes is not None and dag.num_nodes > config.max_nodes:
                    stats.stop_timer()
                    raise BudgetExceededError("nodes", config.max_nodes, dag.num_nodes)
                stats.record_node()
                stack.append(child_key)
            else:
                stats.record_merge()
            dag.add_edge(key, selection, child_key)
            stats.record_edge()
            expanded = True
        if not expanded:
            dag.mark_terminal(key, "dead_end")
            stats.record_terminal("dead_end")

    stats.stop_timer()
    return CountResult(dag=dag, stats=stats, path_count=dag.count_paths())


def build_goal_dag(
    catalog: Catalog,
    start_term: Term,
    goal: Goal,
    end_term: Term,
    completed: AbstractSet[str] = frozenset(),
    config: Optional[ExplorationConfig] = None,
    pruners: Optional[List[Pruner]] = None,
    cache=None,
) -> CountResult:
    """Goal-driven expansion over merged statuses.

    Pruning decisions depend only on a status's ``(term, completed)`` key,
    so they merge cleanly; ``path_count`` counts goal paths and equals the
    tree algorithm's output exactly (property-tested).  ``cache`` is an
    optional :class:`~repro.cache.ExplorationCache` — within one run the
    DAG already deduplicates statuses, so its value here is cross-run
    reuse of flow results, option sets and transposed verdicts.
    """
    config = config or ExplorationConfig()
    _check_inputs(catalog, start_term, end_term, completed)

    if cache is not None:
        goal = cache.wrap_goal(goal)
    context = PruningContext(
        catalog=catalog, goal=goal, end_term=end_term, config=config, cache=cache
    )
    if pruners is None:
        pruners = default_pruners(context)
    time_pruner = next((p for p in pruners if isinstance(p, TimeBasedPruner)), None)
    transpositions = (
        cache.transposition_view(goal, end_term, config, pruners)
        if cache is not None and pruners
        else None
    )

    stats = ExplorationStats()
    pruning_stats = PruningStats()
    stats.start_timer()
    expander = Expander(catalog, end_term, config, cache=cache)
    root = expander.initial_status(start_term, completed)
    dag = MergedStatusDag(root)
    stats.record_node()

    stack = [root.key]
    while stack:
        key = stack.pop()
        status = dag.status(key)
        if goal.is_satisfied(status.completed):
            dag.mark_terminal(key, "goal")
            stats.record_terminal("goal")
            continue
        if status.term >= end_term:
            dag.mark_terminal(key, "deadline")
            stats.record_terminal("deadline")
            continue
        if transpositions is not None:
            firing_name, _ = transpositions.consult(pruners, status)
        else:
            firing = first_firing_pruner(pruners, status)
            firing_name = firing.name if firing is not None else None
        if firing_name is not None:
            dag.mark_terminal(key, "pruned")
            stats.record_terminal("pruned")
            stats.record_prune(firing_name)
            pruning_stats.record(firing_name)
            continue

        floor = _selection_floor(time_pruner, config, status)
        suppressed = suppressed_selection_count(len(status.options), floor)
        if suppressed:
            stats.record_prune("time", suppressed)
            pruning_stats.record("time", suppressed)
        expanded = False
        for selection, child_status in expander.successors(status, required_minimum=floor):
            child_key, created = dag.ensure_node(child_status)
            if created:
                if config.max_nodes is not None and dag.num_nodes > config.max_nodes:
                    stats.stop_timer()
                    raise BudgetExceededError("nodes", config.max_nodes, dag.num_nodes)
                stats.record_node()
                stack.append(child_key)
            else:
                stats.record_merge()
            dag.add_edge(key, selection, child_key)
            stats.record_edge()
            expanded = True
        if not expanded:
            dag.mark_terminal(key, "dead_end")
            stats.record_terminal("dead_end")

    stats.stop_timer()
    return CountResult(
        dag=dag,
        stats=stats,
        path_count=dag.count_paths("goal"),
        pruning_stats=pruning_stats,
    )


def count_deadline_paths(
    catalog: Catalog,
    start_term: Term,
    end_term: Term,
    completed: AbstractSet[str] = frozenset(),
    config: Optional[ExplorationConfig] = None,
    cache=None,
) -> int:
    """Exact deadline-driven path count without materializing the tree."""
    return build_deadline_dag(
        catalog, start_term, end_term, completed, config, cache=cache
    ).path_count


def count_goal_paths(
    catalog: Catalog,
    start_term: Term,
    goal: Goal,
    end_term: Term,
    completed: AbstractSet[str] = frozenset(),
    config: Optional[ExplorationConfig] = None,
    pruners: Optional[List[Pruner]] = None,
    cache=None,
) -> int:
    """Exact goal-driven path count without materializing the tree."""
    return build_goal_dag(
        catalog, start_term, goal, end_term, completed, config, pruners, cache=cache
    ).path_count
