"""Frontier dynamic-programming path counting (memory-lean extension).

The merged-status DAG (:mod:`repro.core.counting`) stores every distinct
status it ever visits, which still exhausts memory at the horizons where
the paper reports tens of millions of goal paths (Table 2, 6–7 semesters:
the authors used a 32 GB server).  For *counting* purposes even the DAG is
more than needed: path counts can be pushed forward term by term, keeping
only one frontier layer at a time —

    frontier[t] : {completed-set → number of selection sequences reaching it}

Each term, every state either terminates (goal satisfied → its
multiplicity joins the total; deadline reached → dropped) or expands its
selections into the next layer.  Peak memory is the widest single layer
rather than the union of all layers, and per-state storage is one
frozenset and one integer.

This is an extension beyond the paper (documented in DESIGN.md), used by
the Table 2 benchmark to regenerate the large goal-driven rows.  It
produces exactly the same counts as the tree and DAG algorithms
(property-tested), including identical pruning behaviour.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import AbstractSet, Dict, FrozenSet, List, Optional

from ..catalog import Catalog
from ..errors import ExplorationError
from ..graph.status import EnrollmentStatus
from ..obs.explain import DecisionEvent
from ..obs.live import budget_exceeded
from ..obs.runtime import NULL_OBSERVABILITY, Observability
from ..obs.tracing import Stopwatch
from ..requirements import Goal
from ..semester import Term
from .config import ExplorationConfig
from .expansion import Expander
from .goal_driven import _selection_floor
from .pruning import (
    AvailabilityPruner,
    Pruner,
    PruningContext,
    PruningStats,
    TimeBasedPruner,
    default_pruners,
    examine_pruners,
    first_firing_pruner,
    suppressed_selection_count,
)

__all__ = ["FrontierCount", "frontier_count_goal_paths", "frontier_count_deadline_paths"]


@dataclass
class FrontierCount:
    """Result of a frontier-DP counting run."""

    path_count: int
    peak_frontier: int
    total_states: int
    elapsed_seconds: float = 0.0
    pruning_stats: Optional[PruningStats] = None
    layer_widths: List[int] = field(default_factory=list)
    #: Exact number of tree paths ending at each terminal kind
    #: (``goal`` / ``deadline`` / ``dead_end`` / ``pruned``) — the
    #: multiplicity-weighted leaf census of the tree the paper's algorithm
    #: would have built.  ``explored_path_count`` (everything except
    #: ``pruned``) is Table 1's "# of paths" column.
    terminal_path_counts: Dict[str, int] = field(default_factory=dict)
    #: When the run was cut short by ``stop_after_layers``, the unprocessed
    #: frontier layer (completed-set → multiplicity) at the stopping term.
    #: ``None`` when the DP ran to natural completion.  ``repro.parallel``
    #: partitions this layer across worker processes.
    remaining_frontier: Optional[Dict[FrozenSet[str], int]] = None

    @property
    def explored_path_count(self) -> int:
        """Tree leaves actually reached (all kinds except ``pruned``)."""
        return sum(
            count
            for kind, count in self.terminal_path_counts.items()
            if kind != "pruned"
        )


def _check_inputs(
    catalog: Catalog, start_term: Term, end_term: Term, completed: AbstractSet[str]
) -> None:
    if end_term < start_term:
        raise ExplorationError(f"end term {end_term} precedes start term {start_term}")
    unknown = frozenset(completed) - catalog.course_ids()
    if unknown:
        raise ExplorationError(f"completed courses not in catalog: {sorted(unknown)}")


def _run_frontier(
    catalog: Catalog,
    start_term: Term,
    end_term: Term,
    completed: AbstractSet[str],
    config: ExplorationConfig,
    goal: Optional[Goal],
    pruners: List[Pruner],
    time_pruner: Optional[TimeBasedPruner],
    count_dead_ends: bool,
    max_frontier: Optional[int],
    obs: Observability,
    cache=None,
    initial_frontier: Optional[Dict[FrozenSet[str], int]] = None,
    stop_after_layers: Optional[int] = None,
) -> FrontierCount:
    watch = Stopwatch()
    watch.start()
    expander = Expander(catalog, end_term, config, obs=obs, cache=cache)
    transpositions = (
        cache.transposition_view(goal, end_term, config, pruners)
        if cache is not None and goal is not None and pruners
        else None
    )
    pruning_stats = PruningStats()
    # The built-in bounds only read (term, completed), so option sets need
    # deriving only for states that survive to expansion; a third-party
    # pruner may inspect status.options, so its presence keeps the eager
    # derivation order.
    lazy_options = all(
        isinstance(p, (TimeBasedPruner, AvailabilityPruner)) for p in pruners
    )

    if initial_frontier is not None:
        frontier: Dict[FrozenSet[str], int] = dict(initial_frontier)
    else:
        frontier = {frozenset(completed): 1}
    term = start_term
    peak = len(frontier)
    total_states = len(frontier)
    widths = [len(frontier)]
    stopped_early = False
    terminal_counts: Dict[str, int] = {}
    instrumented = obs.enabled
    recorder = obs.decisions
    progress = obs.progress
    budget = obs.budget
    run_name = "frontier_goal" if goal is not None else "frontier_deadline"
    if progress is not None:
        progress.begin_run(run_name, horizon=int(end_term - start_term))
    if budget is not None:
        budget.arm()
    # Frontier states are merged, so decision events carry synthetic ids
    # and no parent linkage; ``multiplicity`` says how many tree nodes the
    # one recorded decision stands for.
    next_eid = itertools.count()

    def _terminate(kind: str, multiplicity: int) -> None:
        terminal_counts[kind] = terminal_counts.get(kind, 0) + multiplicity

    def _record(kind: str, status: EnrollmentStatus, multiplicity: int, **kwargs) -> None:
        detail = dict(kwargs.pop("detail", {}))
        detail["multiplicity"] = multiplicity
        recorder.record(
            DecisionEvent(
                kind=kind,
                node_id=next(next_eid),
                parent_id=None,
                term=str(status.term),
                completed=tuple(sorted(status.completed)),
                detail=detail,
                **kwargs,
            )
        )

    with obs.run(run_name, start=str(start_term), end=str(end_term)):
        while frontier and term <= end_term:
            if (
                stop_after_layers is not None
                and int(term - start_term) >= stop_after_layers
            ):
                stopped_early = True
                break
            next_frontier: Dict[FrozenSet[str], int] = {}
            depth = int(term - start_term) if progress is not None else 0
            for state, multiplicity in frontier.items():
                if budget is not None:
                    budget.tick(None, progress)
                if lazy_options:
                    status = expander.bare_status(term, state)
                else:
                    status = EnrollmentStatus(
                        term=term, completed=state, options=expander.options(state, term)
                    )
                if goal is not None and goal.is_satisfied(state):
                    _terminate("goal", multiplicity)
                    if progress is not None:
                        progress.record_terminal("goal", depth)
                        progress.record_emit(multiplicity)
                    if recorder is not None:
                        _record("goal", status, multiplicity)
                    continue
                if term >= end_term:
                    _terminate("deadline", multiplicity)
                    if progress is not None:
                        progress.record_terminal("deadline", depth)
                    if recorder is not None:
                        _record("deadline", status, multiplicity)
                    continue
                if goal is not None:
                    if transpositions is not None:
                        with obs.phase("prune"):
                            firing_name, verdict_dicts = transpositions.consult(
                                pruners, status, obs, want_verdicts=recorder is not None
                            )
                    elif recorder is None:
                        with obs.phase("prune"):
                            firing = first_firing_pruner(pruners, status, obs)
                        firing_name = firing.name if firing is not None else None
                        verdict_dicts = None
                    else:
                        with obs.phase("prune"):
                            firing, verdicts = examine_pruners(pruners, status, obs)
                        firing_name = firing.name if firing is not None else None
                        verdict_dicts = tuple(v.as_dict() for v in verdicts)
                    if firing_name is not None:
                        pruning_stats.record(firing_name)
                        _terminate("pruned", multiplicity)
                        if progress is not None:
                            progress.record_pruned(depth)
                        if recorder is not None:
                            _record(
                                "prune",
                                status,
                                multiplicity,
                                strategy=firing_name,
                                verdicts=verdict_dicts,
                            )
                        continue
                    if lazy_options:
                        # Survived every terminal check: expansion is next,
                        # so the option set is finally needed.
                        status = expander.attach_options(status)
                    floor = _selection_floor(time_pruner, config, status)
                    suppressed = suppressed_selection_count(len(status.options), floor)
                    if suppressed:
                        pruning_stats.record("time", suppressed)
                        if recorder is not None:
                            _record(
                                "suppressed",
                                status,
                                multiplicity,
                                strategy="time",
                                detail={
                                    "suppressed": suppressed,
                                    "floor": floor,
                                    "option_count": len(status.options),
                                },
                            )
                else:
                    floor = 0
                    if lazy_options:
                        status = expander.attach_options(status)
                if instrumented:
                    # Split successor generation from layer merging so the
                    # two phases are visible separately in the breakdown.
                    with obs.phase("expand"):
                        children = [
                            child.completed
                            for _selection, child in expander.successors(
                                status, required_minimum=floor
                            )
                        ]
                    expanded = bool(children)
                    if expanded and progress is not None:
                        progress.record_expanded(depth, len(children))
                    with obs.phase("merge"):
                        for key in children:
                            next_frontier[key] = next_frontier.get(key, 0) + multiplicity
                else:
                    expanded = False
                    for _selection, child in expander.successors(
                        status, required_minimum=floor
                    ):
                        key = child.completed
                        next_frontier[key] = next_frontier.get(key, 0) + multiplicity
                        expanded = True
                if not expanded:
                    _terminate("dead_end", multiplicity)
                    if progress is not None:
                        progress.record_terminal("dead_end", depth)
                    if recorder is not None:
                        _record("dead_end", status, multiplicity)
                # Check the budget as the layer grows (not just once it is
                # complete) so an exploding layer fails fast instead of
                # exhausting memory first.
                if max_frontier is not None and len(next_frontier) > max_frontier:
                    raise budget_exceeded(
                        "frontier states", max_frontier, len(next_frontier),
                        progress=progress, budget=budget,
                    )
            frontier = next_frontier
            term = term + 1
            if progress is not None:
                progress.set_frontier(len(frontier))
            if frontier:
                peak = max(peak, len(frontier))
                total_states += len(frontier)
                widths.append(len(frontier))

    if goal is not None:
        total = terminal_counts.get("goal", 0)
    else:
        # Deadline mode: every maximal path — deadline leaves + dead ends.
        total = terminal_counts.get("deadline", 0) + (
            terminal_counts.get("dead_end", 0) if count_dead_ends else 0
        )
    watch.stop()
    return FrontierCount(
        path_count=total,
        peak_frontier=peak,
        total_states=total_states,
        elapsed_seconds=watch.elapsed,
        pruning_stats=pruning_stats if goal is not None else None,
        layer_widths=widths,
        terminal_path_counts=terminal_counts,
        remaining_frontier=dict(frontier) if stopped_early else None,
    )


def frontier_count_goal_paths(
    catalog: Catalog,
    start_term: Term,
    goal: Goal,
    end_term: Term,
    completed: AbstractSet[str] = frozenset(),
    config: Optional[ExplorationConfig] = None,
    pruners: Optional[List[Pruner]] = None,
    max_frontier: Optional[int] = None,
    obs: Optional[Observability] = None,
    cache=None,
) -> FrontierCount:
    """Exact goal-driven path count with one-layer memory.

    Semantics match :func:`~repro.core.goal_driven.generate_goal_driven`
    exactly; ``max_frontier`` bounds the widest layer, raising
    :class:`~repro.errors.BudgetExceededError` beyond it.  ``obs`` is an
    optional :class:`~repro.obs.runtime.Observability` bundle (span
    ``run:frontier_goal`` with ``expand``/``merge``/``prune`` phases);
    ``cache`` an optional :class:`~repro.cache.ExplorationCache`
    (count-identical, like all cached runs).
    """
    config = config or ExplorationConfig()
    _check_inputs(catalog, start_term, end_term, completed)
    if cache is not None:
        goal = cache.wrap_goal(goal)
    context = PruningContext(
        catalog=catalog, goal=goal, end_term=end_term, config=config, cache=cache
    )
    if pruners is None:
        pruners = default_pruners(context)
    time_pruner = next((p for p in pruners if isinstance(p, TimeBasedPruner)), None)
    return _run_frontier(
        catalog,
        start_term,
        end_term,
        completed,
        config,
        goal,
        pruners,
        time_pruner,
        count_dead_ends=False,
        max_frontier=max_frontier,
        obs=obs if obs is not None else NULL_OBSERVABILITY,
        cache=cache,
    )


def frontier_count_deadline_paths(
    catalog: Catalog,
    start_term: Term,
    end_term: Term,
    completed: AbstractSet[str] = frozenset(),
    config: Optional[ExplorationConfig] = None,
    max_frontier: Optional[int] = None,
    obs: Optional[Observability] = None,
    cache=None,
) -> FrontierCount:
    """Exact deadline-driven path count with one-layer memory.

    Counts match :func:`~repro.core.deadline.generate_deadline_driven`:
    deadline leaves plus dead ends.
    """
    config = config or ExplorationConfig()
    _check_inputs(catalog, start_term, end_term, completed)
    return _run_frontier(
        catalog,
        start_term,
        end_term,
        completed,
        config,
        goal=None,
        pruners=[],
        time_pruner=None,
        count_dead_ends=True,
        max_frontier=max_frontier,
        obs=obs if obs is not None else NULL_OBSERVABILITY,
        cache=cache,
    )
