"""Academic terms and calendar arithmetic.

The paper models time as a sequence of semesters: ``Fall '11``,
``Spring '12``, ``Fall '12`` … with transitions ``s_{i+1} = s_i + 1``.
This module provides that arithmetic as a small, total, hashable value type:

* :class:`AcademicCalendar` — an ordered cycle of season names within a
  calendar year (default ``Spring, Fall``; a ``Spring, Summer, Fall``
  calendar is provided for schools with summer sessions).
* :class:`Term` — a single academic term, e.g. ``Term(2011, "Fall")``.
  Terms are ordered, support ``term + k`` / ``term - k`` / ``term_b - term_a``
  and parse from the registrar-style strings that appear in the paper
  (``Fall '11``, ``Spring 2012``, ``F11``…).

Terms are compared by their *ordinal*: the number of terms since term 0 of
year 0 of their calendar.  Two terms on different calendars never compare
equal and refuse arithmetic together, which turns calendar mix-ups into
errors instead of silently wrong plans.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering
from typing import Iterator, Sequence, Tuple, Union

from .errors import ScheduleParseError

__all__ = [
    "AcademicCalendar",
    "SPRING_FALL",
    "SPRING_SUMMER_FALL",
    "Term",
    "term_range",
    "parse_term",
]


class AcademicCalendar:
    """An ordered cycle of season names within a calendar year.

    ``AcademicCalendar(("Spring", "Fall"))`` means that within calendar year
    *Y*, Spring *Y* precedes Fall *Y*, and Fall *Y* precedes Spring *Y+1*.
    That matches the paper's examples (Fall '11 → Spring '12 → Fall '12).

    Calendars are immutable and compared structurally, so two separately
    constructed ``("Spring", "Fall")`` calendars are interchangeable.
    """

    __slots__ = ("_seasons", "_index_of")

    def __init__(self, seasons: Sequence[str]):
        cleaned = tuple(str(s).strip() for s in seasons)
        if len(cleaned) < 1:
            raise ValueError("a calendar needs at least one season")
        if any(not s for s in cleaned):
            raise ValueError("season names must be non-empty")
        lowered = [s.lower() for s in cleaned]
        if len(set(lowered)) != len(lowered):
            raise ValueError(f"duplicate season names in {cleaned!r}")
        self._seasons = cleaned
        self._index_of = {name.lower(): i for i, name in enumerate(cleaned)}

    @property
    def seasons(self) -> Tuple[str, ...]:
        """The season names, in within-year order."""
        return self._seasons

    def __len__(self) -> int:
        return len(self._seasons)

    def season_index(self, season: str) -> int:
        """Position of ``season`` within the year (case-insensitive)."""
        try:
            return self._index_of[season.strip().lower()]
        except KeyError:
            raise ValueError(
                f"unknown season {season!r}; calendar has {self._seasons}"
            ) from None

    def canonical_season(self, season: str) -> str:
        """The canonical spelling of ``season`` (case-insensitive lookup)."""
        return self._seasons[self.season_index(season)]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AcademicCalendar):
            return self._seasons == other._seasons
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._seasons)

    def __repr__(self) -> str:
        return f"AcademicCalendar({self._seasons!r})"


#: The default two-season calendar used throughout the paper.
SPRING_FALL = AcademicCalendar(("Spring", "Fall"))

#: A three-season calendar for schools with summer sessions.
SPRING_SUMMER_FALL = AcademicCalendar(("Spring", "Summer", "Fall"))


_TERM_PATTERNS = (
    # "Fall 2011", "Fall '11", "Fall 11", "Fall‘11" (paper uses a left quote)
    re.compile(r"^\s*(?P<season>[A-Za-z]+)\s*[''`‘’]?\s*(?P<year>\d{2,4})\s*$"),
    # "2011 Fall"
    re.compile(r"^\s*(?P<year>\d{2,4})\s+(?P<season>[A-Za-z]+)\s*$"),
)

_SEASON_ABBREVIATIONS = {
    "f": "Fall",
    "fa": "Fall",
    "s": "Spring",
    "sp": "Spring",
    "spr": "Spring",
    "su": "Summer",
    "sum": "Summer",
    "w": "Winter",
    "wi": "Winter",
}


def _expand_year(raw: str) -> int:
    """Turn a 2- or 4-digit year string into a full year (``'11'`` → 2011)."""
    year = int(raw)
    if len(raw) <= 2:
        year += 2000 if year < 70 else 1900
    return year


@total_ordering
@dataclass(frozen=True)
class Term:
    """One academic term, e.g. ``Term(2011, "Fall")``.

    ``Term`` is a frozen dataclass: hashable, usable as a dict key and as a
    member of schedule sets.  The season string is canonicalized against the
    calendar at construction time, so ``Term(2011, "fall") == Term(2011,
    "Fall")``.
    """

    year: int
    season: str
    calendar: AcademicCalendar = SPRING_FALL

    def __post_init__(self) -> None:
        canonical = self.calendar.canonical_season(self.season)
        if canonical != self.season:
            object.__setattr__(self, "season", canonical)
        if not isinstance(self.year, int):
            raise TypeError(f"year must be an int, got {self.year!r}")

    # -- ordinal arithmetic -------------------------------------------------

    @property
    def ordinal(self) -> int:
        """Number of terms since season 0 of year 0 on this calendar."""
        return self.year * len(self.calendar) + self.calendar.season_index(self.season)

    @classmethod
    def from_ordinal(cls, ordinal: int, calendar: AcademicCalendar = SPRING_FALL) -> "Term":
        """Inverse of :attr:`ordinal`."""
        n = len(calendar)
        year, season_index = divmod(ordinal, n)
        return cls(year, calendar.seasons[season_index], calendar)

    def _check_same_calendar(self, other: "Term") -> None:
        if self.calendar != other.calendar:
            raise ValueError(
                f"cannot mix terms from different calendars: {self} vs {other}"
            )

    def __add__(self, k: int) -> "Term":
        if not isinstance(k, int):
            return NotImplemented
        return Term.from_ordinal(self.ordinal + k, self.calendar)

    __radd__ = __add__

    def __sub__(self, other: Union[int, "Term"]) -> Union["Term", int]:
        if isinstance(other, int):
            return Term.from_ordinal(self.ordinal - other, self.calendar)
        if isinstance(other, Term):
            self._check_same_calendar(other)
            return self.ordinal - other.ordinal
        return NotImplemented

    def next(self) -> "Term":
        """The immediately following term (``s + 1`` in the paper)."""
        return self + 1

    def previous(self) -> "Term":
        """The immediately preceding term."""
        return self - 1

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        self._check_same_calendar(other)
        return self.ordinal < other.ordinal

    # -- formatting / parsing -------------------------------------------------

    def __str__(self) -> str:
        return f"{self.season} {self.year}"

    @property
    def short(self) -> str:
        """Compact registrar-style name, e.g. ``Fall '11``."""
        return f"{self.season} '{self.year % 100:02d}"

    @classmethod
    def parse(cls, text: str, calendar: AcademicCalendar = SPRING_FALL) -> "Term":
        """Parse registrar-style term names.

        Accepts ``Fall 2011``, ``Fall '11``, ``Fall‘11`` (the paper's
        typography), ``2011 Fall``, and abbreviated forms like ``F11`` /
        ``Sp2012``.  Raises :class:`~repro.errors.ScheduleParseError` on
        anything else.
        """
        for pattern in _TERM_PATTERNS:
            match = pattern.match(text)
            if match:
                season = match.group("season")
                season = _SEASON_ABBREVIATIONS.get(season.lower(), season)
                try:
                    return cls(_expand_year(match.group("year")), season, calendar)
                except ValueError as exc:
                    raise ScheduleParseError(str(exc), text=text) from exc
        raise ScheduleParseError("unrecognized term", text=text)


def parse_term(text: str, calendar: AcademicCalendar = SPRING_FALL) -> Term:
    """Module-level convenience alias for :meth:`Term.parse`."""
    return Term.parse(text, calendar)


def term_range(start: Term, end: Term, inclusive: bool = True) -> Iterator[Term]:
    """Yield terms from ``start`` to ``end`` in order.

    ``inclusive`` controls whether ``end`` itself is yielded.  Yields nothing
    when ``end`` precedes ``start``; raises when the calendars differ.
    """
    if start.calendar != end.calendar:
        raise ValueError(f"cannot mix terms from different calendars: {start} vs {end}")
    stop = end.ordinal + (1 if inclusive else 0)
    for ordinal in range(start.ordinal, stop):
        yield Term.from_ordinal(ordinal, start.calendar)
