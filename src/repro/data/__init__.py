"""Synthetic registrar data.

The paper evaluates on 38 Brandeis Computer Science courses, their class
schedules through Fall '15, and anonymized student transcripts — none of
which are public.  This package provides faithful synthetic substitutes
(documented in DESIGN.md §4):

* :mod:`repro.data.brandeis` — a 38-course CS catalog with a realistic
  prerequisite DAG, yearly/alternating schedules spanning Spring '11 –
  Fall '15, the 7-core + 5-elective major goal, and a historical offering
  model for reliability ranking.
* :mod:`repro.data.generator` — seeded random catalogs of arbitrary size
  (layered prerequisite DAGs), used by property tests and ablations.
* :mod:`repro.data.transcripts` — a stochastic student-behaviour simulator
  producing "actual" learning paths for the §5.2 containment experiment.
"""

from .brandeis import (
    CORE_COURSE_IDS,
    ELECTIVE_COURSE_IDS,
    EVALUATION_END_TERM,
    brandeis_catalog,
    brandeis_major_goal,
    brandeis_offering_model,
    start_term_for_semesters,
)
from .generator import GeneratorSettings, random_catalog, random_course_set_goal
from .policies import (
    HeaviestLoadPolicy,
    LightLoadPolicy,
    RequirementsSeekingPolicy,
    SelectionPolicy,
    UniformRandomPolicy,
)
from .transcripts import SimulatedStudentBody, simulate_transcripts
from .trimester import (
    LAKESIDE_CALENDAR,
    lakeside_catalog,
    lakeside_minor_goal,
)

__all__ = [
    "brandeis_catalog",
    "brandeis_major_goal",
    "brandeis_offering_model",
    "start_term_for_semesters",
    "CORE_COURSE_IDS",
    "ELECTIVE_COURSE_IDS",
    "EVALUATION_END_TERM",
    "GeneratorSettings",
    "random_catalog",
    "random_course_set_goal",
    "SimulatedStudentBody",
    "simulate_transcripts",
    "SelectionPolicy",
    "RequirementsSeekingPolicy",
    "UniformRandomPolicy",
    "HeaviestLoadPolicy",
    "LightLoadPolicy",
    "lakeside_catalog",
    "lakeside_minor_goal",
    "LAKESIDE_CALENDAR",
]
