"""A synthetic 38-course Brandeis-style CS catalog (the evaluation dataset).

The paper's experiments draw on "38 Computer Science courses offered at
Brandeis University and the class schedules of the academic period ending
in Fall '15" with a major requiring "7 core courses and 5 elective
courses" (§5.1).  The real registrar export is not public, so this module
builds a stand-in with the same shape:

* 38 courses: 7 core (intro → theory/systems chains), 30 electives over
  AI / systems / theory / applications, 1 non-major service course;
* prerequisites forming a DAG of depth 4 with AND / OR / k-of structure;
* schedules over Spring '11 – Fall '15 in registrar-typical patterns —
  the intro course every term, gateway courses once a year, upper-level
  electives once a year or alternate years (the paper notes schedules
  "allow students to complete some core courses first", which is what
  makes its pruning so effective — the pattern below preserves that);
* a historical offering model (Fall '07 – Fall '10 history) for
  reliability ranking.

Experiments address horizons as "N semesters ending Fall '15", meaning N
course-taking terms with the goal checked at the Fall '15 status —
matching §5.2's "period from Fall '12 to Fall '15" being the 6-semester
row of Table 2.  :func:`start_term_for_semesters` encodes that mapping.

Everything is deterministic: no randomness, stable course ids, so every
test and benchmark sees the identical dataset.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from ..catalog import Catalog, Course, HistoricalOfferingModel, Schedule
from ..catalog.patterns import build_schedule, pattern_terms
from ..parsing.prereq_parser import parse_prerequisites
from ..requirements import DegreeGoal
from ..semester import Term

__all__ = [
    "brandeis_catalog",
    "brandeis_major_goal",
    "brandeis_offering_model",
    "start_term_for_semesters",
    "CORE_COURSE_IDS",
    "ELECTIVE_COURSE_IDS",
    "GENERAL_COURSE_IDS",
    "EVALUATION_END_TERM",
    "SCHEDULE_FIRST_TERM",
]

#: The evaluation deadline ``d`` — all horizons end here (§5.1).
EVALUATION_END_TERM = Term(2015, "Fall")

#: First term covered by the released schedule.
SCHEDULE_FIRST_TERM = Term(2011, "Spring")

# (course id, title, prerequisite prose, schedule pattern, weekly hours, tag)
#
# Schedule patterns: "every" = all terms; "fall"/"spring" = once a year;
# "fall-even"/"fall-odd"/"spring-even"/"spring-odd" = alternate years
# (by calendar-year parity).
_COURSE_ROWS: List[Tuple[str, str, str, str, float, str]] = [
    # -- service (non-major) -------------------------------------------------
    ("COSI 2a",   "How Computers Work",                        "",                      "spring",      6.0,  "general"),
    # -- core (7) -------------------------------------------------------------
    ("COSI 11a",  "Programming in Java and C",                 "",                      "every",       12.0, "core"),
    ("COSI 12b",  "Advanced Programming Techniques",           "COSI 11a",              "spring",      12.0, "core"),
    ("COSI 21a",  "Data Structures and Algorithms",            "COSI 11a",              "spring",      14.0, "core"),
    ("COSI 29a",  "Discrete Structures",                       "",                      "fall",        10.0, "core"),
    ("COSI 30a",  "Introduction to the Theory of Computation", "COSI 21a AND COSI 29a", "fall",        14.0, "core"),
    ("COSI 31a",  "Computer Structures and Organization",      "COSI 12b AND COSI 21a", "spring",      14.0, "core"),
    ("COSI 121b", "Structure and Interpretation of Programs",  "COSI 21a",              "fall",        12.0, "core"),
    # -- electives (30) -----------------------------------------------------------
    ("COSI 65a",  "Introduction to Multimedia Computing",      "",                      "fall",        8.0,  "elective"),
    ("COSI 33b",  "Internet and Society",                      "",                      "spring",      6.0,  "elective"),
    ("COSI 45b",  "Programming Paradigms",                     "",                      "fall-odd",    10.0, "elective"),
    ("COSI 55a",  "Introduction to Computational Linguistics", "COSI 11a",              "fall-even",   10.0, "elective"),
    ("COSI 57a",  "Software Tools and Scripting",              "COSI 11a",              "spring-even", 8.0,  "elective"),
    ("COSI 64a",  "Human-Centered Computing",                  "COSI 11a OR COSI 2a",   "spring-odd",  8.0,  "elective"),
    ("COSI 101a", "Artificial Intelligence",                   "COSI 21a AND COSI 29a", "fall",        14.0, "elective"),
    ("COSI 102a", "Machine Learning",                          "COSI 21a AND COSI 29a", "spring",      14.0, "elective"),
    ("COSI 103a", "Natural Language Processing",               "COSI 21a",              "fall-odd",    12.0, "elective"),
    ("COSI 104a", "Computer Vision",                           "COSI 21a AND COSI 29a", "spring-even", 12.0, "elective"),
    ("COSI 105b", "Software Engineering for Scalability",      "COSI 12b",              "fall-even",   12.0, "elective"),
    ("COSI 107a", "Computer Networks",                         "COSI 12b",              "spring",      12.0, "elective"),
    ("COSI 112a", "Advanced Operating Systems",                "COSI 31a",              "spring-odd",  16.0, "elective"),
    ("COSI 114b", "Topics in Formal Verification",             "COSI 30a",              "spring-odd",  14.0, "elective"),
    ("COSI 118a", "Computer Graphics",                         "COSI 12b AND COSI 21a", "fall-even",   12.0, "elective"),
    ("COSI 120a", "Compiler Design",                           "COSI 12b AND COSI 21a", "spring-even", 16.0, "elective"),
    ("COSI 123a", "Statistical Learning Theory",               "COSI 102a",             "fall-even",   14.0, "elective"),
    ("COSI 125a", "Human-Computer Interaction",                "COSI 11a",              "spring",      10.0, "elective"),
    ("COSI 126b", "Computer Security",                         "COSI 31a OR COSI 107a", "fall",        12.0, "elective"),
    ("COSI 127b", "Database Management Systems",               "COSI 21a",              "fall",        12.0, "elective"),
    ("COSI 128a", "Distributed Systems",                       "COSI 31a",              "fall-odd",    14.0, "elective"),
    ("COSI 130a", "Advanced Algorithms",                       "COSI 30a",              "spring-even", 16.0, "elective"),
    ("COSI 132a", "Information Retrieval",                     "COSI 21a",              "fall",        12.0, "elective"),
    ("COSI 134a", "Web Application Development",               "COSI 12b",              "spring",      10.0, "elective"),
    ("COSI 135a", "Mobile Application Development",            "COSI 12b",              "fall",        10.0, "elective"),
    ("COSI 137b", "Autonomous Robotics",                       "COSI 101a",             "spring-odd",  14.0, "elective"),
    ("COSI 138b", "Computational Biology",                     "COSI 21a AND COSI 29a", "fall-even",   12.0, "elective"),
    ("COSI 140a", "Parallel Computing",                        "COSI 31a",              "spring",      14.0, "elective"),
    ("COSI 145b", "Cloud Computing Infrastructure",            "COSI 107a OR COSI 31a", "fall-odd",    12.0, "elective"),
    ("COSI 150a", "Senior Capstone in Software Systems",
     "2 OF [COSI 101a, COSI 103a, COSI 107a, COSI 127b]",                               "spring",      16.0, "elective"),
]

#: The 7 core courses of the major.
CORE_COURSE_IDS: FrozenSet[str] = frozenset(
    row[0] for row in _COURSE_ROWS if row[5] == "core"
)

#: The 30 elective-eligible courses.
ELECTIVE_COURSE_IDS: FrozenSet[str] = frozenset(
    row[0] for row in _COURSE_ROWS if row[5] == "elective"
)

#: Courses that do not count toward the major.
GENERAL_COURSE_IDS: FrozenSet[str] = frozenset(
    row[0] for row in _COURSE_ROWS if row[5] == "general"
)


def _build_schedule(first: Term, last: Term) -> Schedule:
    return build_schedule(
        {
            course_id: pattern
            for course_id, _title, _prereq, pattern, _hours, _tag in _COURSE_ROWS
        },
        first,
        last,
    )


def brandeis_catalog() -> Catalog:
    """The 38-course catalog with its Spring '11 – Fall '15 schedule.

    Deterministic; building it twice yields equal catalogs.
    """
    courses = [
        Course(
            course_id=course_id,
            title=title,
            prereq=parse_prerequisites(prereq_text),
            workload_hours=hours,
            tags=frozenset({tag}),
        )
        for course_id, title, prereq_text, _pattern, hours, tag in _COURSE_ROWS
    ]
    schedule = _build_schedule(SCHEDULE_FIRST_TERM, EVALUATION_END_TERM)
    return Catalog(courses, schedule=schedule)


def brandeis_major_goal(electives_required: int = 5) -> DegreeGoal:
    """The CS major: all 7 core courses plus ``electives_required``
    electives (paper default 5)."""
    return DegreeGoal.from_core_electives(
        CORE_COURSE_IDS, ELECTIVE_COURSE_IDS, electives_required, name="CS major"
    )


def start_term_for_semesters(semesters: int, end_term: Term = EVALUATION_END_TERM) -> Term:
    """The start term for an ``N``-semester horizon ending at ``end_term``.

    ``N`` counts course-taking terms: the exploration runs from the start
    status through ``N`` transitions, with goals checked at the ``end_term``
    status.  Example: 6 semesters ending Fall '15 start at Fall '12 — the
    §5.2 transcript-comparison period.
    """
    if semesters < 1:
        raise ValueError(f"semesters must be >= 1, got {semesters}")
    return end_term - semesters


def brandeis_offering_model(
    release_horizon_end: Term = Term(2012, "Spring"),
) -> HistoricalOfferingModel:
    """An offering-probability model for reliability ranking.

    The released schedule is certain through ``release_horizon_end``
    (universities publish 1–2 terms ahead, §4.3.1); beyond it,
    probabilities come from a Fall '07 – Fall '10 synthetic history
    following the same per-course patterns — so a yearly fall course has
    ``prob = 1.0`` in future falls, an alternate-year course ``0.5``, and
    every course ``0.0`` in its off season.
    """
    history_start = Term(2007, "Fall")
    history_end = Term(2010, "Fall")
    history = Schedule(
        {
            course_id: pattern_terms(pattern, history_start, history_end)
            for course_id, _title, _prereq, pattern, _hours, _tag in _COURSE_ROWS
        }
    )
    released = _build_schedule(SCHEDULE_FIRST_TERM, EVALUATION_END_TERM)
    return HistoricalOfferingModel.from_history(
        history, history_start, history_end, released, release_horizon_end
    )


def course_rows() -> List[Dict[str, str]]:
    """The raw course table as dicts (used by docs and the CLI's
    ``catalog`` command)."""
    return [
        {
            "course_id": course_id,
            "title": title,
            "prerequisites": prereq_text or "none",
            "pattern": pattern,
            "workload_hours": str(hours),
            "tag": tag,
        }
        for course_id, title, prereq_text, pattern, hours, tag in _COURSE_ROWS
    ]
