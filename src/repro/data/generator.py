"""Seeded random catalog generation.

Property tests (pruning soundness, tree/DAG count equivalence, top-k
correctness) and scaling ablations need many *small*, *valid*, *varied*
catalogs rather than the one fixed Brandeis dataset.  This generator
produces them deterministically from a seed:

* courses are arranged in layers, prerequisites only reference earlier
  layers (acyclic by construction);
* prerequisite conditions mix literals, ANDs, and ORs with configurable
  density;
* every course is offered at least once inside the requested window, with
  extra offerings sprinkled by probability.

The same settings + seed always produce an identical catalog.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set

from ..catalog import Catalog, Course, Schedule
from ..catalog.prereq import PrereqExpr, TRUE, CourseReq, all_of, any_of
from ..requirements import CourseSetGoal
from ..semester import Term

__all__ = ["GeneratorSettings", "random_catalog", "random_course_set_goal"]


@dataclass(frozen=True)
class GeneratorSettings:
    """Knobs for :func:`random_catalog`.

    Parameters
    ----------
    n_courses:
        Catalog size.
    n_terms:
        Schedule window length (terms, starting at ``start_term``).
    start_term:
        First scheduled term.
    prereq_probability:
        Chance a non-first-layer course has any prerequisites at all.
    or_probability:
        Chance a prerequisite condition includes an OR alternative.
    offer_probability:
        Chance of each additional per-term offering (every course always
        gets at least one offered term in the window).
    layers:
        Number of prerequisite layers (depth of the DAG).
    """

    n_courses: int = 8
    n_terms: int = 4
    start_term: Term = Term(2011, "Fall")
    prereq_probability: float = 0.6
    or_probability: float = 0.3
    offer_probability: float = 0.5
    layers: int = 3

    def __post_init__(self) -> None:
        if self.n_courses < 1:
            raise ValueError(f"n_courses must be >= 1, got {self.n_courses}")
        if self.n_terms < 1:
            raise ValueError(f"n_terms must be >= 1, got {self.n_terms}")
        if self.layers < 1:
            raise ValueError(f"layers must be >= 1, got {self.layers}")
        for name in ("prereq_probability", "or_probability", "offer_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


def _random_prereq(rng: random.Random, earlier: List[str], settings: GeneratorSettings) -> PrereqExpr:
    """A small random condition over courses from earlier layers."""
    if not earlier or rng.random() > settings.prereq_probability:
        return TRUE
    picks = rng.sample(earlier, k=min(len(earlier), rng.randint(1, 3)))
    literals = [CourseReq(cid) for cid in picks]
    conjunction = all_of(literals)
    if len(earlier) > len(picks) and rng.random() < settings.or_probability:
        alternative = CourseReq(rng.choice([c for c in earlier if c not in picks]))
        return any_of([conjunction, alternative])
    return conjunction


def random_catalog(seed: int, settings: GeneratorSettings = GeneratorSettings()) -> Catalog:
    """A deterministic random catalog for ``seed`` and ``settings``."""
    rng = random.Random(seed)
    ids = [f"C{i:02d}" for i in range(settings.n_courses)]

    # Assign courses to layers; layer 0 always exists and has no prereqs.
    layer_of: Dict[str, int] = {}
    for i, course_id in enumerate(ids):
        if i == 0:
            layer_of[course_id] = 0
        else:
            layer_of[course_id] = rng.randrange(settings.layers)

    courses = []
    for course_id in ids:
        earlier = [cid for cid in ids if layer_of[cid] < layer_of[course_id]]
        prereq = _random_prereq(rng, earlier, settings)
        courses.append(
            Course(
                course_id=course_id,
                title=f"Course {course_id}",
                prereq=prereq,
                workload_hours=float(rng.randint(4, 16)),
                tags=frozenset({f"layer{layer_of[course_id]}"}),
            )
        )

    terms = [settings.start_term + i for i in range(settings.n_terms)]
    offerings: Dict[str, FrozenSet[Term]] = {}
    for course_id in ids:
        offered: Set[Term] = {rng.choice(terms)}
        for term in terms:
            if rng.random() < settings.offer_probability:
                offered.add(term)
        offerings[course_id] = frozenset(offered)

    return Catalog(courses, schedule=Schedule(offerings))


def random_course_set_goal(catalog: Catalog, seed: int, size: int = 2) -> CourseSetGoal:
    """A random complete-these-courses goal over ``catalog``.

    ``size`` is clamped to the catalog size; the same seed picks the same
    courses.
    """
    rng = random.Random(seed)
    ids = sorted(catalog.course_ids())
    size = max(1, min(size, len(ids)))
    return CourseSetGoal(rng.sample(ids, k=size))
