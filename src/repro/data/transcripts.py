"""Simulated student transcripts (the §5.2 comparison data).

The paper obtained 83 anonymized transcripts of students who completed the
CS major between Fall '12 and Fall '15 and checked that every one of those
real paths appears among the 41.5M generated goal-driven paths.  The
transcripts are private, so this module simulates a student body instead:
each student repeatedly elects a legal selection (via the same
:class:`~repro.core.expansion.Expander` the generators use, so every
simulated move is valid by construction) under a noisy
requirements-seeking policy — core courses first, then missing electives,
with occasional detours — and only students who complete the goal by the
deadline graduate into the sample.

The containment experiment then checks each simulated path with
:func:`repro.analysis.containment.is_generated_goal_path`, exercising the
same invariant as the paper: the goal-driven algorithm generates *every*
constraint-respecting path to the goal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import AbstractSet, List, Optional

from ..catalog import Catalog
from ..core.config import ExplorationConfig
from ..core.expansion import Expander
from ..errors import ExplorationError
from ..graph.path import LearningPath
from ..requirements import Goal
from ..semester import Term
from .policies import RequirementsSeekingPolicy, SelectionPolicy

__all__ = ["SimulatedStudentBody", "simulate_transcripts"]


@dataclass
class SimulatedStudentBody:
    """The outcome of a transcript simulation."""

    paths: List[LearningPath]
    attempts: int
    successes: int

    def __len__(self) -> int:
        return len(self.paths)

    @property
    def success_rate(self) -> float:
        """Fraction of simulated students who completed the goal in time."""
        if self.attempts == 0:
            return 0.0
        return self.successes / self.attempts


def _simulate_one(
    rng: random.Random,
    expander: Expander,
    goal: Goal,
    start_term: Term,
    end_term: Term,
    completed: AbstractSet[str],
    policy: "SelectionPolicy",
) -> Optional[LearningPath]:
    """One student's run; ``None`` when the goal is missed."""
    status = expander.initial_status(start_term, completed)
    statuses = [status]
    selections: List[frozenset] = []
    config = expander.config
    while not goal.is_satisfied(status.completed):
        if status.term >= end_term:
            return None
        legal = dict(expander.successors(status))
        if not legal:
            return None
        if status.options:
            selection = frozenset(
                policy.choose(rng, status, goal, config.max_courses_per_term)
            )
            if selection not in legal:
                # A policy pick is always a non-empty option subset, but a
                # custom config (constraints, selection floors) may still
                # reject it; fall back to any legal move.
                selection = rng.choice(sorted(legal, key=sorted))
        else:
            selection = frozenset()
            if selection not in legal:
                return None
        status = legal[selection]
        statuses.append(status)
        selections.append(selection)
    return LearningPath(statuses, selections)


def simulate_transcripts(
    catalog: Catalog,
    goal: Goal,
    start_term: Term,
    end_term: Term,
    count: int = 83,
    seed: int = 2016,
    config: Optional[ExplorationConfig] = None,
    completed: AbstractSet[str] = frozenset(),
    max_attempts: Optional[int] = None,
    policy: Optional[SelectionPolicy] = None,
) -> SimulatedStudentBody:
    """Simulate students until ``count`` of them complete ``goal`` in time.

    Parameters
    ----------
    count:
        Number of graduating transcripts to collect (paper: 83).
    seed:
        RNG seed; the same seed reproduces the same student body.
    max_attempts:
        Give up (raising :class:`~repro.errors.ExplorationError`) after
        this many simulated students; defaults to ``200 × count``.
    policy:
        The behavioural archetype (see :mod:`repro.data.policies`);
        defaults to :class:`RequirementsSeekingPolicy`.

    Returns
    -------
    SimulatedStudentBody
        ``paths`` are the graduating students' learning paths, each ending
        at the first goal-satisfying status (mirroring where the
        goal-driven generator terminates its paths).
    """
    config = config or ExplorationConfig()
    max_attempts = max_attempts if max_attempts is not None else 200 * count
    policy = policy or RequirementsSeekingPolicy()
    rng = random.Random(seed)
    expander = Expander(catalog, end_term, config)

    paths: List[LearningPath] = []
    attempts = 0
    while len(paths) < count:
        if attempts >= max_attempts:
            raise ExplorationError(
                f"only {len(paths)}/{count} simulated students completed the "
                f"goal within {max_attempts} attempts — the horizon or goal "
                f"is likely infeasible"
            )
        attempts += 1
        path = _simulate_one(
            rng, expander, goal, start_term, end_term, completed, policy
        )
        if path is not None:
            paths.append(path)
    return SimulatedStudentBody(paths=paths, attempts=attempts, successes=len(paths))
