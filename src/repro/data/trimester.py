"""A second synthetic dataset: a trimester school with summer sessions.

The paper's evaluation uses a two-season calendar; nothing in the model
requires that, and this dataset proves it end-to-end: "Lakeside College"
runs a Spring/Summer/Fall calendar
(:data:`repro.semester.SPRING_SUMMER_FALL`), offers an accelerated summer
track, and defines a data-science **minor** (3 core + 2 of 4 electives).

Besides being a realistic fixture for calendar-generality tests, it
showcases what summer sessions do to learning paths: chains that need
three long semesters compress into a single calendar year when the
student attends summers, which the example/test suite quantifies.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from ..catalog import Catalog, Course, Schedule
from ..catalog.prereq import TRUE, CourseReq, requires
from ..requirements import DegreeGoal
from ..semester import SPRING_SUMMER_FALL, Term, term_range

__all__ = [
    "lakeside_catalog",
    "lakeside_minor_goal",
    "LAKESIDE_CALENDAR",
    "LAKESIDE_FIRST_TERM",
    "LAKESIDE_LAST_TERM",
    "CORE_MINOR_IDS",
    "ELECTIVE_MINOR_IDS",
]

#: Lakeside's academic calendar: three terms a year.
LAKESIDE_CALENDAR = SPRING_SUMMER_FALL

#: First scheduled term.
LAKESIDE_FIRST_TERM = Term(2020, "Spring", LAKESIDE_CALENDAR)

#: Last scheduled term.
LAKESIDE_LAST_TERM = Term(2022, "Fall", LAKESIDE_CALENDAR)

# (course id, title, prereq builder, seasons offered, weekly hours, tag)
_ROWS = (
    ("DATA 101", "Thinking with Data",        TRUE,                               ("Spring", "Summer", "Fall"), 8.0,  "core"),
    ("DATA 102", "Data Wrangling",            CourseReq("DATA 101"),              ("Spring", "Summer", "Fall"), 10.0, "core"),
    ("DATA 201", "Statistical Inference",     CourseReq("DATA 102"),              ("Spring", "Fall"),           12.0, "core"),
    ("DATA 210", "Data Visualization",        CourseReq("DATA 102"),              ("Summer", "Fall"),           8.0,  "elective"),
    ("DATA 220", "Databases for Analysts",    CourseReq("DATA 102"),              ("Spring",),                  10.0, "elective"),
    ("DATA 230", "Machine Learning Basics",   requires("DATA 201"),               ("Fall",),                    14.0, "elective"),
    ("DATA 240", "Ethics of Data",            TRUE,                               ("Spring", "Summer"),         6.0,  "elective"),
    ("MATH 110", "Calculus I",                TRUE,                               ("Spring", "Fall"),           12.0, "support"),
    ("MATH 120", "Linear Algebra",            CourseReq("MATH 110"),              ("Spring", "Fall"),           12.0, "support"),
    ("WRIT 100", "College Writing",           TRUE,                               ("Spring", "Summer", "Fall"), 6.0,  "support"),
)

#: Core courses of the minor.
CORE_MINOR_IDS: FrozenSet[str] = frozenset(
    row[0] for row in _ROWS if row[5] == "core"
)

#: Elective pool of the minor.
ELECTIVE_MINOR_IDS: FrozenSet[str] = frozenset(
    row[0] for row in _ROWS if row[5] == "elective"
)


def _schedule() -> Schedule:
    offerings: Dict[str, FrozenSet[Term]] = {}
    for course_id, _title, _prereq, seasons, _hours, _tag in _ROWS:
        offerings[course_id] = frozenset(
            term
            for term in term_range(LAKESIDE_FIRST_TERM, LAKESIDE_LAST_TERM)
            if term.season in seasons
        )
    return Schedule(offerings)


def lakeside_catalog() -> Catalog:
    """The 10-course trimester catalog (deterministic)."""
    courses = [
        Course(
            course_id=course_id,
            title=title,
            prereq=prereq,
            workload_hours=hours,
            tags=frozenset({tag}),
        )
        for course_id, title, prereq, _seasons, hours, tag in _ROWS
    ]
    return Catalog(courses, schedule=_schedule())


def lakeside_minor_goal(electives_required: int = 2) -> DegreeGoal:
    """The data-science minor: all 3 core + 2 of 4 electives."""
    return DegreeGoal.from_core_electives(
        CORE_MINOR_IDS, ELECTIVE_MINOR_IDS, electives_required, name="DS minor"
    )
