"""Student selection policies for transcript simulation.

The §5.2 substitution simulates students; *how* a student picks courses
shapes the transcripts. The containment experiment only needs feasible
paths, but richer studies (graduation-rate sensitivity, how much
guidance helps) want different behavioural archetypes side by side.
A :class:`SelectionPolicy` chooses one selection from a status's options;
:func:`repro.data.transcripts.simulate_transcripts` accepts any of them.

Built-in archetypes:

* :class:`RequirementsSeekingPolicy` — the default: weighted toward
  unmet requirement groups, mostly full loads (what an advised student
  does).
* :class:`UniformRandomPolicy` — no plan at all: a uniformly random
  legal selection (the pessimistic baseline).
* :class:`HeaviestLoadPolicy` — always takes the maximum number of
  courses, goal-weighted (the overachiever).
* :class:`LightLoadPolicy` — one or two courses a term, goal-weighted
  (the part-time student).

All policies draw only from the caller-provided RNG, so simulations stay
reproducible per seed.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..graph.status import EnrollmentStatus
from ..requirements import DegreeGoal, Goal

__all__ = [
    "SelectionPolicy",
    "RequirementsSeekingPolicy",
    "UniformRandomPolicy",
    "HeaviestLoadPolicy",
    "LightLoadPolicy",
]


class SelectionPolicy:
    """Abstract per-term course-choice behaviour."""

    #: Identifier used in reports.
    name: str = "policy"

    def choose(
        self,
        rng: random.Random,
        status: EnrollmentStatus,
        goal: Goal,
        max_per_term: int,
    ) -> Tuple[str, ...]:
        """Pick a non-empty selection from ``status.options``.

        Only called when options exist; must return between 1 and
        ``max_per_term`` course ids drawn from the options.
        """
        raise NotImplementedError


def _goal_weight(course_id: str, goal: Goal, assignment: Optional[dict]) -> float:
    """Shared heuristic appeal of a course to a goal-aware student."""
    if isinstance(goal, DegreeGoal) and assignment is not None:
        for group in goal.groups:
            if course_id in group.course_ids:
                filled = sum(1 for g in assignment.values() if g == group.name)
                if filled < group.required:
                    return 10.0 if group.required == len(group.course_ids) else 5.0
                return 1.5
        return 1.0
    if course_id in goal.courses():
        return 8.0
    return 1.0


def _weighted_pick(
    rng: random.Random,
    status: EnrollmentStatus,
    goal: Goal,
    size: int,
) -> Tuple[str, ...]:
    assignment = (
        goal.assignment(status.completed) if isinstance(goal, DegreeGoal) else None
    )
    pool: List[str] = sorted(status.options)
    chosen: List[str] = []
    while pool and len(chosen) < size:
        weights = [_goal_weight(cid, goal, assignment) for cid in pool]
        index = rng.choices(range(len(pool)), weights=weights, k=1)[0]
        chosen.append(pool.pop(index))
    return tuple(sorted(chosen))


class RequirementsSeekingPolicy(SelectionPolicy):
    """Default archetype: goal-weighted picks, load skewed toward full."""

    name = "requirements-seeking"

    def choose(self, rng, status, goal, max_per_term):
        cap = min(len(status.options), max_per_term)
        sizes = list(range(1, cap + 1))
        size = rng.choices(sizes, weights=[s * s for s in sizes], k=1)[0]
        return _weighted_pick(rng, status, goal, size)


class UniformRandomPolicy(SelectionPolicy):
    """No plan: a uniformly random size and a uniformly random subset."""

    name = "uniform-random"

    def choose(self, rng, status, goal, max_per_term):
        options = sorted(status.options)
        size = rng.randint(1, min(len(options), max_per_term))
        return tuple(sorted(rng.sample(options, k=size)))


class HeaviestLoadPolicy(SelectionPolicy):
    """Always take the full permitted load, goal-weighted."""

    name = "heaviest-load"

    def choose(self, rng, status, goal, max_per_term):
        size = min(len(status.options), max_per_term)
        return _weighted_pick(rng, status, goal, size)


class LightLoadPolicy(SelectionPolicy):
    """One or two courses a term, goal-weighted (part-time)."""

    name = "light-load"

    def choose(self, rng, status, goal, max_per_term):
        cap = min(len(status.options), max_per_term, 2)
        size = rng.randint(1, cap)
        return _weighted_pick(rng, status, goal, size)
