"""Learning graphs, paths, and enrollment statuses.

Section 2 of the paper models exploration as graph construction: each node
is an *enrollment status* (semester, completed courses, course options),
each edge is a per-semester course selection ``W ⊆ Y``, and a *learning
path* is a time-ordered node sequence.  This package provides:

* :class:`~repro.graph.status.EnrollmentStatus` — the node payload.
* :class:`~repro.graph.path.LearningPath` — an immutable path with cost
  helpers (length / workload / reliability, matching §4.3.1's rankings).
* :class:`~repro.graph.learning_graph.LearningGraph` — the out-tree that
  Algorithm 1 literally builds (a fresh node per expansion, so leaves ↔
  paths, which is why the paper runs out of memory at 6 semesters).
* :class:`~repro.graph.dag.MergedStatusDag` — an extension that merges
  nodes with identical ``(semester, completed)`` keys, enabling exact path
  *counting* at horizons where materializing the tree is infeasible.
* :mod:`~repro.graph.export` — DOT / JSON serialization for the paper's
  Learning Path Visualizer.
"""

from .status import EnrollmentStatus
from .path import LearningPath
from .learning_graph import LearningGraph
from .dag import MergedStatusDag

__all__ = [
    "EnrollmentStatus",
    "LearningPath",
    "LearningGraph",
    "MergedStatusDag",
]
