"""The learning graph that Algorithm 1 builds — an out-tree of statuses.

Line 10 of the paper's Algorithm 1 creates a *new* node for every course
combination, so the structure is an out-tree rooted at the start status:
every leaf corresponds to exactly one learning path.  This class stores
that tree compactly (parallel arrays, integer node ids) and reconstructs
:class:`~repro.graph.path.LearningPath` objects on demand by walking parent
pointers.

Leaves are tagged with a *terminal kind* so the different algorithms can
mark why expansion stopped there:

* ``"deadline"`` — the node's semester equals the end semester ``d``;
* ``"goal"`` — the completed set satisfies the goal requirement;
* ``"dead_end"`` — no options now and nothing relevant offered later
  (Fig. 3's ``n6``);
* ``"pruned"`` — a pruning strategy cut the subtree (goal-driven only;
  pruned leaves are *not* output paths).

The tree representation is deliberately faithful to the paper — including
its memory behaviour.  Use :class:`~repro.graph.dag.MergedStatusDag` when
you only need path counts at large horizons.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from .path import LearningPath
from .status import EnrollmentStatus

__all__ = ["LearningGraph"]

#: Terminal kinds a node may be tagged with.
TERMINAL_KINDS = ("deadline", "goal", "dead_end", "pruned")


class LearningGraph:
    """An out-tree of enrollment statuses (integer node ids, root = 0)."""

    def __init__(self, root: EnrollmentStatus):
        if not isinstance(root, EnrollmentStatus):
            raise TypeError(f"root must be an EnrollmentStatus, got {root!r}")
        self._statuses: List[EnrollmentStatus] = [root]
        self._parents: List[Optional[int]] = [None]
        self._selections: List[FrozenSet[str]] = [frozenset()]  # edge *into* node
        self._children: List[List[int]] = [[]]
        self._terminal: Dict[int, str] = {}

    # -- construction --------------------------------------------------------

    @property
    def root_id(self) -> int:
        """The root node's id (always 0)."""
        return 0

    def add_child(
        self, parent_id: int, selection: FrozenSet[str], status: EnrollmentStatus
    ) -> int:
        """Create a node for ``status`` reached from ``parent_id`` by
        electing ``selection``; returns the new node id."""
        self._check_id(parent_id)
        node_id = len(self._statuses)
        self._statuses.append(status)
        self._parents.append(parent_id)
        self._selections.append(frozenset(selection))
        self._children.append([])
        self._children[parent_id].append(node_id)
        return node_id

    def mark_terminal(self, node_id: int, kind: str) -> None:
        """Tag ``node_id`` with a terminal kind (see module docstring)."""
        self._check_id(node_id)
        if kind not in TERMINAL_KINDS:
            raise ValueError(f"unknown terminal kind {kind!r}; expected {TERMINAL_KINDS}")
        self._terminal[node_id] = kind

    def _check_id(self, node_id: int) -> None:
        if not 0 <= node_id < len(self._statuses):
            raise IndexError(f"no node {node_id} (graph has {len(self._statuses)})")

    # -- merging (repro.parallel) ---------------------------------------------

    def graft(self, node_id: int, subtree: "LearningGraph") -> Dict[int, int]:
        """Attach another graph's tree beneath ``node_id``; returns an id map.

        ``subtree``'s root must describe the same state as ``node_id`` (same
        term and completed set — this is how a parallel shard's result, whose
        worker re-rooted the search at a frontier status, is stitched back
        onto the prefix tree).  The root itself is *identified with*
        ``node_id`` rather than copied: its terminal tag (if any) transfers
        onto ``node_id``, and every descendant is copied preserving per-node
        child creation order.

        Returns a dict mapping subtree-local node ids to ids in this graph.
        Node ids of the combined graph are **not** in serial creation order
        after grafting — call :meth:`canonicalize` to renumber.
        """
        self._check_id(node_id)
        mine = self._statuses[node_id]
        root = subtree._statuses[0]
        if (mine.term, mine.completed) != (root.term, root.completed):
            raise ValueError(
                f"subtree root {root.key} does not match graft point {mine.key}"
            )
        if self._children[node_id]:
            raise ValueError(f"graft point {node_id} already has children")
        id_map: Dict[int, int] = {0: node_id}
        root_kind = subtree._terminal.get(0)
        if root_kind is not None:
            self._terminal[node_id] = root_kind
        stack = [0]
        while stack:
            old = stack.pop()
            new_parent = id_map[old]
            for child in subtree._children[old]:
                new_id = self.add_child(
                    new_parent, subtree._selections[child], subtree._statuses[child]
                )
                id_map[child] = new_id
                kind = subtree._terminal.get(child)
                if kind is not None:
                    self._terminal[new_id] = kind
                stack.append(child)
        return id_map

    def canonicalize(self) -> Tuple["LearningGraph", Dict[int, int], List[int]]:
        """A copy renumbered in serial depth-first creation order.

        The serial generators pop a LIFO stack and assign consecutive ids to
        a node's children at pop time; after :meth:`graft` the combined tree
        has the right *shape* but shard-order ids.  This method replays that
        discipline — pop a node, number its children in creation order, push
        them in creation order — so the returned graph's node ids (and hence
        :meth:`paths` order, which sorts terminals by id) are byte-identical
        to what a single serial run over the same tree would have produced.

        Returns ``(graph, id_map, order)``: the renumbered copy, the
        old-id → new-id mapping, and the old-id pop order (the sequence in
        which the serial loop would have *processed* each node — the order
        decision events must be replayed in).
        """
        new = LearningGraph(self._statuses[0])
        id_map: Dict[int, int] = {0: 0}
        order: List[int] = []
        stack = [0]
        while stack:
            old = stack.pop()
            order.append(old)
            new_id = id_map[old]
            kind = self._terminal.get(old)
            if kind is not None:
                new._terminal[new_id] = kind
            children = self._children[old]
            for child in children:
                id_map[child] = new.add_child(
                    new_id, self._selections[child], self._statuses[child]
                )
            stack.extend(children)
        return new, id_map, order

    # -- queries -------------------------------------------------------------------

    def status(self, node_id: int) -> EnrollmentStatus:
        """The enrollment status stored at ``node_id``."""
        self._check_id(node_id)
        return self._statuses[node_id]

    def parent(self, node_id: int) -> Optional[int]:
        """Parent node id (``None`` for the root)."""
        self._check_id(node_id)
        return self._parents[node_id]

    def selection_into(self, node_id: int) -> FrozenSet[str]:
        """The selection ``W`` on the edge entering ``node_id``
        (empty for the root)."""
        self._check_id(node_id)
        return self._selections[node_id]

    def children(self, node_id: int) -> Tuple[int, ...]:
        """Ids of the node's children, in creation order."""
        self._check_id(node_id)
        return tuple(self._children[node_id])

    def out_degree(self, node_id: int) -> int:
        """Number of children."""
        self._check_id(node_id)
        return len(self._children[node_id])

    def terminal_kind(self, node_id: int) -> Optional[str]:
        """The node's terminal tag, or ``None`` if it is interior/unmarked."""
        self._check_id(node_id)
        return self._terminal.get(node_id)

    def depth(self, node_id: int) -> int:
        """Number of edges from the root."""
        self._check_id(node_id)
        depth = 0
        parent = self._parents[node_id]
        while parent is not None:
            depth += 1
            parent = self._parents[parent]
        return depth

    @property
    def num_nodes(self) -> int:
        """Total node count ``|V|``."""
        return len(self._statuses)

    @property
    def num_edges(self) -> int:
        """Total edge count ``|E|`` (``|V| − 1`` for a tree)."""
        return len(self._statuses) - 1

    def __len__(self) -> int:
        return len(self._statuses)

    def node_ids(self) -> range:
        """All node ids (creation order, root first)."""
        return range(len(self._statuses))

    def leaf_ids(self) -> Iterator[int]:
        """Ids of all nodes with no children."""
        for node_id, children in enumerate(self._children):
            if not children:
                yield node_id

    def terminal_ids(self, *kinds: str) -> Iterator[int]:
        """Ids of terminal nodes, optionally filtered to the given kinds."""
        wanted = set(kinds) if kinds else None
        for node_id, kind in self._terminal.items():
            if wanted is None or kind in wanted:
                yield node_id

    # -- paths ------------------------------------------------------------------

    def path_to(self, node_id: int) -> LearningPath:
        """The unique root-to-``node_id`` learning path."""
        self._check_id(node_id)
        reversed_ids = [node_id]
        parent = self._parents[node_id]
        while parent is not None:
            reversed_ids.append(parent)
            parent = self._parents[parent]
        ids = list(reversed(reversed_ids))
        statuses = [self._statuses[i] for i in ids]
        selections = [self._selections[i] for i in ids[1:]]
        return LearningPath(statuses, selections)

    def paths(self, *kinds: str) -> Iterator[LearningPath]:
        """Learning paths ending at terminal nodes of the given kinds.

        With no ``kinds``, yields paths to every non-``pruned`` terminal —
        the algorithm's output set.  Paths are yielded in node-creation
        order, which is deterministic for a deterministic expansion.
        """
        if kinds:
            wanted = set(kinds)
        else:
            wanted = set(TERMINAL_KINDS) - {"pruned"}
        for node_id in sorted(self._terminal):
            if self._terminal[node_id] in wanted:
                yield self.path_to(node_id)

    def count_paths(self, *kinds: str) -> int:
        """Number of output paths (terminal leaves of the given kinds)."""
        if kinds:
            wanted = set(kinds)
        else:
            wanted = set(TERMINAL_KINDS) - {"pruned"}
        return sum(1 for kind in self._terminal.values() if kind in wanted)

    def __repr__(self) -> str:
        return (
            f"LearningGraph({self.num_nodes} nodes, "
            f"{self.count_paths()} output paths)"
        )
