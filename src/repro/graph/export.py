"""Graph serialization for the Learning Path Visualizer.

The paper's front-end renders learning graphs; this module provides the
interchange half of that: Graphviz DOT (for figures like the paper's
Fig. 1/3) and JSON (for web front-ends).  Both exporters work on the tree
:class:`~repro.graph.learning_graph.LearningGraph` and on the merged
:class:`~repro.graph.dag.MergedStatusDag`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Union

from .dag import MergedStatusDag
from .learning_graph import LearningGraph

__all__ = ["graph_to_dot", "graph_to_json", "write_dot", "write_json"]

_TERMINAL_COLORS = {
    "goal": "palegreen",
    "deadline": "lightblue",
    "dead_end": "lightgray",
    "pruned": "mistyrose",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _selection_label(selection) -> str:
    return "{" + ", ".join(sorted(selection)) + "}"


def _tree_to_dot(graph: LearningGraph, max_nodes: int) -> str:
    lines = [
        "digraph learning_graph {",
        "  rankdir=LR;",
        '  node [shape=box, style="rounded,filled", fillcolor=white, fontsize=10];',
    ]
    limit = min(graph.num_nodes, max_nodes)
    for node_id in range(limit):
        status = graph.status(node_id)
        completed = ", ".join(sorted(status.completed)) or "∅"
        options = ", ".join(sorted(status.options)) or "∅"
        label = f"n{node_id}\\n{status.term.short}\\nX={{{completed}}}\\nY={{{options}}}"
        kind = graph.terminal_kind(node_id)
        color = _TERMINAL_COLORS.get(kind or "", "white")
        lines.append(f'  n{node_id} [label="{_escape(label)}", fillcolor={color}];')
    for node_id in range(limit):
        for child in graph.children(node_id):
            if child >= limit:
                continue
            selection = _selection_label(graph.selection_into(child))
            lines.append(
                f'  n{node_id} -> n{child} [label="{_escape(selection)}", fontsize=9];'
            )
    if graph.num_nodes > limit:
        lines.append(
            f'  truncated [label="… {graph.num_nodes - limit} more nodes", shape=plaintext];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def _dag_to_dot(dag: MergedStatusDag, max_nodes: int) -> str:
    lines = [
        "digraph learning_dag {",
        "  rankdir=LR;",
        '  node [shape=box, style="rounded,filled", fillcolor=white, fontsize=10];',
    ]
    keys = list(dag.nodes())[:max_nodes]
    index = {key: i for i, key in enumerate(keys)}
    for key, i in index.items():
        status = dag.status(key)
        completed = ", ".join(sorted(status.completed)) or "∅"
        label = f"{status.term.short}\\nX={{{completed}}}"
        kind = dag.terminal_kind(key)
        color = _TERMINAL_COLORS.get(kind or "", "white")
        lines.append(f'  s{i} [label="{_escape(label)}", fillcolor={color}];')
    for key, i in index.items():
        for selection, child in dag.successors(key).items():
            if child not in index:
                continue
            label = _selection_label(selection)
            lines.append(
                f'  s{i} -> s{index[child]} [label="{_escape(label)}", fontsize=9];'
            )
    if dag.num_nodes > len(keys):
        lines.append(
            f'  truncated [label="… {dag.num_nodes - len(keys)} more nodes", shape=plaintext];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def graph_to_dot(
    graph: Union[LearningGraph, MergedStatusDag], max_nodes: int = 500
) -> str:
    """Render a learning graph (tree or DAG) as Graphviz DOT.

    Terminal nodes are color-coded by kind; graphs larger than
    ``max_nodes`` are truncated with an ellipsis node so a figure of an
    exploded graph stays renderable.
    """
    if isinstance(graph, LearningGraph):
        return _tree_to_dot(graph, max_nodes)
    if isinstance(graph, MergedStatusDag):
        return _dag_to_dot(graph, max_nodes)
    raise TypeError(f"expected LearningGraph or MergedStatusDag, got {graph!r}")


def graph_to_json(graph: Union[LearningGraph, MergedStatusDag]) -> Dict[str, Any]:
    """A JSON-serializable node/edge dump of the graph."""
    nodes: List[Dict[str, Any]] = []
    edges: List[Dict[str, Any]] = []
    if isinstance(graph, LearningGraph):
        for node_id in graph.node_ids():
            status = graph.status(node_id)
            nodes.append(
                {
                    "id": node_id,
                    "term": str(status.term),
                    "completed": sorted(status.completed),
                    "options": sorted(status.options),
                    "terminal": graph.terminal_kind(node_id),
                }
            )
            for child in graph.children(node_id):
                edges.append(
                    {
                        "from": node_id,
                        "to": child,
                        "selection": sorted(graph.selection_into(child)),
                    }
                )
        return {"kind": "tree", "nodes": nodes, "edges": edges}
    if isinstance(graph, MergedStatusDag):
        keys = list(graph.nodes())
        index = {key: i for i, key in enumerate(keys)}
        for key, i in index.items():
            status = graph.status(key)
            nodes.append(
                {
                    "id": i,
                    "term": str(status.term),
                    "completed": sorted(status.completed),
                    "options": sorted(status.options),
                    "terminal": graph.terminal_kind(key),
                }
            )
            for selection, child in graph.successors(key).items():
                edges.append(
                    {"from": i, "to": index[child], "selection": sorted(selection)}
                )
        return {"kind": "dag", "nodes": nodes, "edges": edges}
    raise TypeError(f"expected LearningGraph or MergedStatusDag, got {graph!r}")


def write_dot(
    graph: Union[LearningGraph, MergedStatusDag], path: str, max_nodes: int = 500
) -> None:
    """Write :func:`graph_to_dot` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(graph_to_dot(graph, max_nodes=max_nodes))


def write_json(graph: Union[LearningGraph, MergedStatusDag], path: str) -> None:
    """Write :func:`graph_to_json` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(graph_to_json(graph), handle, indent=2)
        handle.write("\n")
