"""Learning paths and their cost metrics.

A :class:`LearningPath` is the paper's ``p_i``: a time-ordered sequence of
enrollment statuses connected by course selections.  The class also carries
the three path costs of §4.3.1 — length (time ranking), total workload
(workload ranking), and offering-probability product (reliability ranking)
— so ranked exploration, benchmarks, and front-ends all price paths the
same way.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterator, List, Sequence, Tuple

from ..semester import Term
from .status import EnrollmentStatus

if TYPE_CHECKING:  # imported only for type checking to avoid cycles
    from ..catalog import Catalog, OfferingModel

__all__ = ["LearningPath"]


class LearningPath:
    """An immutable root-to-leaf path through a learning graph.

    ``statuses`` has one more element than ``selections``: the path visits
    ``statuses[0] --selections[0]--> statuses[1] --…--> statuses[-1]``.
    """

    __slots__ = ("_statuses", "_selections")

    def __init__(
        self,
        statuses: Sequence[EnrollmentStatus],
        selections: Sequence[FrozenSet[str]],
    ):
        statuses = tuple(statuses)
        selections = tuple(frozenset(s) for s in selections)
        if not statuses:
            raise ValueError("a path needs at least one status")
        if len(selections) != len(statuses) - 1:
            raise ValueError(
                f"{len(statuses)} statuses need {len(statuses) - 1} selections, "
                f"got {len(selections)}"
            )
        for i, selection in enumerate(selections):
            if statuses[i + 1].term != statuses[i].term + 1:
                raise ValueError(
                    f"statuses must advance one term per step "
                    f"({statuses[i].term} -> {statuses[i + 1].term})"
                )
            if statuses[i + 1].completed != statuses[i].completed | selection:
                raise ValueError(
                    f"step {i}: completed set must grow by exactly the selection"
                )
        self._statuses = statuses
        self._selections = selections

    # -- structure ---------------------------------------------------------

    @property
    def statuses(self) -> Tuple[EnrollmentStatus, ...]:
        """All visited statuses, start first."""
        return self._statuses

    @property
    def selections(self) -> Tuple[FrozenSet[str], ...]:
        """Per-term selections ``W_{i,i+1}`` (one per transition)."""
        return self._selections

    @property
    def start(self) -> EnrollmentStatus:
        """The start status ``n_a``."""
        return self._statuses[0]

    @property
    def end(self) -> EnrollmentStatus:
        """The final status (a goal or end-semester node)."""
        return self._statuses[-1]

    def __len__(self) -> int:
        """Number of transitions (semesters elapsed)."""
        return len(self._selections)

    def __iter__(self) -> Iterator[Tuple[Term, FrozenSet[str]]]:
        """Yield ``(term, selection)`` pairs in order."""
        for status, selection in zip(self._statuses, self._selections):
            yield status.term, selection

    def courses_taken(self) -> FrozenSet[str]:
        """Every course elected anywhere along the path."""
        return self.end.completed - self.start.completed

    def steps(self) -> List[Tuple[Term, Tuple[str, ...]]]:
        """``(term, sorted selection)`` pairs — the plan a student reads."""
        return [(term, tuple(sorted(sel))) for term, sel in self]

    def extended(
        self, selection: FrozenSet[str], status: EnrollmentStatus
    ) -> "LearningPath":
        """A new path with one more transition appended."""
        return LearningPath(self._statuses + (status,), self._selections + (frozenset(selection),))

    # -- §4.3.1 cost metrics -------------------------------------------------

    def length_cost(self) -> int:
        """Time-based ranking cost: number of semesters (edges cost 1)."""
        return len(self._selections)

    def workload_cost(self, catalog: "Catalog") -> float:
        """Workload ranking cost: sum of ``w(c)`` over all elected courses."""
        return sum(
            catalog[course_id].workload_hours
            for selection in self._selections
            for course_id in selection
        )

    def reliability(self, model: "OfferingModel") -> float:
        """Reliability ranking score: product over edges of the probability
        that every course in that edge's selection is offered."""
        result = 1.0
        for term, selection in self:
            result *= model.selection_probability(selection, term)
        return result

    def reliability_cost(self, model: "OfferingModel") -> float:
        """Reliability as a non-negative additive cost: ``−log reliability``.

        Monotone in path prefix (probabilities ≤ 1), which is what best-first
        search needs for Lemma 2 to hold.
        """
        reliability = self.reliability(model)
        if reliability <= 0.0:
            return math.inf
        return -math.log(reliability)

    # -- value semantics ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LearningPath):
            return (
                self._selections == other._selections
                and self._statuses[0] == other._statuses[0]
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._statuses[0], self._selections))

    def __repr__(self) -> str:
        plan = "; ".join(
            f"{term.short}: {','.join(sorted(sel)) or '-'}" for term, sel in self
        )
        return f"LearningPath({plan})"

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable rendering (terms as strings)."""
        return {
            "start_term": str(self.start.term),
            "initial_completed": sorted(self.start.completed),
            "steps": [
                {"term": str(term), "take": sorted(selection)}
                for term, selection in self
            ],
            "final_completed": sorted(self.end.completed),
        }
