"""Merged-status DAG: the scalable view of a learning graph.

The paper's Algorithm 1 creates a fresh tree node per expansion, so two
different selection histories that arrive at the same ``(semester,
completed)`` state are explored — and stored — twice.  That redundancy is
exactly why the paper reports running out of memory beyond five semesters
(Table 2).

``MergedStatusDag`` collapses statuses with equal keys into one node.  A
selection ``W`` out of a status is determined by the child's completed set
(``W = X_child − X_parent``), so there is at most one edge per (parent,
child) pair and **distinct root→terminal walks correspond one-to-one to
distinct learning paths**.  Exact path counts then come from a linear-time
dynamic program instead of an exponential enumeration — this is how the
reproduction regenerates the paper's 4×10⁷-path table rows that cannot be
materialized, and it is benchmarked against the tree as an ablation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..semester import Term
from .status import EnrollmentStatus

__all__ = ["MergedStatusDag"]

Key = Tuple[Term, FrozenSet[str]]


class MergedStatusDag:
    """A DAG over unique enrollment statuses, keyed ``(term, completed)``."""

    def __init__(self, root: EnrollmentStatus):
        self._root_key = root.key
        self._statuses: Dict[Key, EnrollmentStatus] = {root.key: root}
        self._out: Dict[Key, Dict[FrozenSet[str], Key]] = {root.key: {}}
        self._terminal: Dict[Key, str] = {}

    # -- construction ---------------------------------------------------------

    @property
    def root_key(self) -> Key:
        """The start status key."""
        return self._root_key

    def has_node(self, key: Key) -> bool:
        """Whether a status with this key is already present."""
        return key in self._statuses

    def ensure_node(self, status: EnrollmentStatus) -> Tuple[Key, bool]:
        """Insert ``status`` if its key is new; returns ``(key, created)``."""
        key = status.key
        if key in self._statuses:
            return key, False
        self._statuses[key] = status
        self._out[key] = {}
        return key, True

    def add_edge(self, parent: Key, selection: FrozenSet[str], child: Key) -> None:
        """Record that electing ``selection`` at ``parent`` leads to ``child``."""
        if parent not in self._statuses:
            raise KeyError(f"unknown parent {parent!r}")
        if child not in self._statuses:
            raise KeyError(f"unknown child {child!r}")
        selection = frozenset(selection)
        expected = self._statuses[child].completed - self._statuses[parent].completed
        if selection != expected:
            raise ValueError(
                f"selection {sorted(selection)} inconsistent with statuses "
                f"(expected {sorted(expected)})"
            )
        self._out[parent][selection] = child

    def mark_terminal(self, key: Key, kind: str) -> None:
        """Tag a node as a terminal (same kinds as the tree graph)."""
        if key not in self._statuses:
            raise KeyError(f"unknown node {key!r}")
        self._terminal[key] = kind

    # -- queries ----------------------------------------------------------------

    def status(self, key: Key) -> EnrollmentStatus:
        """The status stored at ``key``."""
        return self._statuses[key]

    def successors(self, key: Key) -> Dict[FrozenSet[str], Key]:
        """``{selection: child key}`` out of ``key``."""
        return dict(self._out[key])

    def terminal_kind(self, key: Key) -> Optional[str]:
        """The node's terminal tag, or ``None``."""
        return self._terminal.get(key)

    @property
    def num_nodes(self) -> int:
        """Number of distinct statuses."""
        return len(self._statuses)

    @property
    def num_edges(self) -> int:
        """Number of distinct (status, selection) transitions."""
        return sum(len(edges) for edges in self._out.values())

    def nodes(self) -> Iterator[Key]:
        """All node keys (insertion order)."""
        return iter(self._statuses)

    def terminal_keys(self, *kinds: str) -> Iterator[Key]:
        """Keys of terminal nodes, optionally filtered by kind."""
        wanted = set(kinds) if kinds else None
        for key, kind in self._terminal.items():
            if wanted is None or kind in wanted:
                yield key

    # -- path counting ---------------------------------------------------------------

    def count_paths(self, *kinds: str) -> int:
        """Exact number of distinct root→terminal learning paths.

        With no ``kinds``, counts paths to every non-``pruned`` terminal
        (matching :meth:`LearningGraph.count_paths`).  Linear in the DAG
        size: nodes are processed in descending term order, so every child
        is finished before its parents.
        """
        if kinds:
            wanted = set(kinds)
        else:
            wanted = {"deadline", "goal", "dead_end"}
        counts: Dict[Key, int] = {}
        for key in sorted(self._statuses, key=lambda k: k[0].ordinal, reverse=True):
            total = 1 if self._terminal.get(key) in wanted else 0
            for child in self._out[key].values():
                total += counts[child]
            counts[key] = total
        return counts.get(self._root_key, 0)

    def count_nodes_by_term(self) -> Dict[Term, int]:
        """Distinct statuses per term — the DAG's width profile."""
        histogram: Dict[Term, int] = {}
        for term, _completed in self._statuses:
            histogram[term] = histogram.get(term, 0) + 1
        return histogram

    def sample_paths(self, limit: int, *kinds: str) -> List[List[Key]]:
        """Up to ``limit`` root→terminal key sequences (DFS order).

        Useful for spot-checking and visualization without enumerating the
        full (possibly astronomically large) path set.
        """
        if kinds:
            wanted = set(kinds)
        else:
            wanted = {"deadline", "goal", "dead_end"}
        results: List[List[Key]] = []
        stack: List[List[Key]] = [[self._root_key]]
        while stack and len(results) < limit:
            prefix = stack.pop()
            key = prefix[-1]
            if self._terminal.get(key) in wanted:
                results.append(prefix)
            children = sorted(
                self._out[key].items(), key=lambda item: sorted(item[0])
            )
            for _selection, child in reversed(children):
                stack.append(prefix + [child])
        return results

    def __repr__(self) -> str:
        return f"MergedStatusDag({self.num_nodes} statuses, {self.num_edges} edges)"
