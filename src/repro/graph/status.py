"""The enrollment status — a learning-graph node's payload.

Per Section 2, a status is ``(s_i, X_i, Y_i)``: the semester, the completed
course set, and the derived option set.  Two statuses are *the same state*
when their semester and completed set coincide — ``Y`` is a function of
those two given a fixed catalog/schedule — so equality and hashing ignore
``options``.  That identification is what lets
:class:`~repro.graph.dag.MergedStatusDag` collapse the paper's out-tree.

Statuses are the single most-allocated object in the engine (one per tree
node, one per frontier state per layer), so the class is a hand-rolled
``__slots__`` immutable rather than a dataclass: no per-instance
``__dict__``, and the same frozen semantics on every supported Python
(``@dataclass(slots=True)`` only exists from 3.10).
"""

from __future__ import annotations

from dataclasses import FrozenInstanceError
from typing import FrozenSet, Tuple

from ..semester import Term

__all__ = ["EnrollmentStatus"]


class EnrollmentStatus:
    """A student's state at the start of one semester.

    Attributes
    ----------
    term:
        The semester ``s_i``.
    completed:
        ``X_i`` — ids of courses completed before ``term``.
    options:
        ``Y_i`` — ids of courses the student may elect in ``term``
        (offered now, prerequisites met, not yet completed).  Derived data:
        excluded from equality and hashing.
    """

    __slots__ = ("term", "completed", "options")

    def __init__(
        self,
        term: Term,
        completed: FrozenSet[str],
        options: FrozenSet[str] = frozenset(),
    ):
        if not isinstance(completed, frozenset):
            completed = frozenset(completed)
        if not isinstance(options, frozenset):
            options = frozenset(options)
        overlap = completed & options
        if overlap:
            raise ValueError(
                f"options may not include completed courses: {sorted(overlap)}"
            )
        object.__setattr__(self, "term", term)
        object.__setattr__(self, "completed", completed)
        object.__setattr__(self, "options", options)

    # -- frozen semantics ----------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        raise FrozenInstanceError(f"cannot assign to field {name!r}")

    def __delattr__(self, name: str) -> None:
        raise FrozenInstanceError(f"cannot delete field {name!r}")

    def __reduce__(self):
        # __setattr__ is blocked, so pickling goes back through __init__
        # (this is also what lets statuses cross process boundaries when
        # shard results return from repro.parallel workers).
        return (self.__class__, (self.term, self.completed, self.options))

    # -- identity (term, completed) — options are derived --------------------

    def __eq__(self, other: object) -> bool:
        if other.__class__ is self.__class__:
            return (self.term, self.completed) == (other.term, other.completed)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.term, self.completed))

    def __repr__(self) -> str:
        return (
            f"EnrollmentStatus(term={self.term!r}, "
            f"completed={self.completed!r}, options={self.options!r})"
        )

    @property
    def key(self) -> Tuple[Term, FrozenSet[str]]:
        """The identity ``(term, completed)`` used for status merging."""
        return (self.term, self.completed)

    def after_selection(
        self, selection: FrozenSet[str], options: FrozenSet[str] = frozenset()
    ) -> "EnrollmentStatus":
        """The successor status after electing ``selection`` this term.

        Implements the paper's transition: ``s_{i+1} = s_i + 1`` and
        ``X_{i+1} = X_i ∪ W_{i,i+1}``.  ``selection`` must come from the
        current options.
        """
        selection = frozenset(selection)
        if not selection <= self.options:
            raise ValueError(
                f"selection {sorted(selection - self.options)} not in options"
            )
        return EnrollmentStatus(
            term=self.term + 1,
            completed=self.completed | selection,
            options=frozenset(options),
        )

    def describe(self) -> str:
        """A compact single-line rendering (for logs and the visualizer)."""
        completed = ", ".join(sorted(self.completed)) or "∅"
        options = ", ".join(sorted(self.options)) or "∅"
        return f"{self.term.short}  X={{{completed}}}  Y={{{options}}}"

    def __str__(self) -> str:
        return self.describe()
