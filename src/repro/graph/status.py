"""The enrollment status — a learning-graph node's payload.

Per Section 2, a status is ``(s_i, X_i, Y_i)``: the semester, the completed
course set, and the derived option set.  Two statuses are *the same state*
when their semester and completed set coincide — ``Y`` is a function of
those two given a fixed catalog/schedule — so equality and hashing ignore
``options``.  That identification is what lets
:class:`~repro.graph.dag.MergedStatusDag` collapse the paper's out-tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from ..semester import Term

__all__ = ["EnrollmentStatus"]


@dataclass(frozen=True)
class EnrollmentStatus:
    """A student's state at the start of one semester.

    Attributes
    ----------
    term:
        The semester ``s_i``.
    completed:
        ``X_i`` — ids of courses completed before ``term``.
    options:
        ``Y_i`` — ids of courses the student may elect in ``term``
        (offered now, prerequisites met, not yet completed).  Derived data:
        excluded from equality and hashing.
    """

    term: Term
    completed: FrozenSet[str]
    options: FrozenSet[str] = field(default=frozenset(), compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.completed, frozenset):
            object.__setattr__(self, "completed", frozenset(self.completed))
        if not isinstance(self.options, frozenset):
            object.__setattr__(self, "options", frozenset(self.options))
        overlap = self.completed & self.options
        if overlap:
            raise ValueError(
                f"options may not include completed courses: {sorted(overlap)}"
            )

    @property
    def key(self) -> Tuple[Term, FrozenSet[str]]:
        """The identity ``(term, completed)`` used for status merging."""
        return (self.term, self.completed)

    def after_selection(
        self, selection: FrozenSet[str], options: FrozenSet[str] = frozenset()
    ) -> "EnrollmentStatus":
        """The successor status after electing ``selection`` this term.

        Implements the paper's transition: ``s_{i+1} = s_i + 1`` and
        ``X_{i+1} = X_i ∪ W_{i,i+1}``.  ``selection`` must come from the
        current options.
        """
        selection = frozenset(selection)
        if not selection <= self.options:
            raise ValueError(
                f"selection {sorted(selection - self.options)} not in options"
            )
        return EnrollmentStatus(
            term=self.term + 1,
            completed=self.completed | selection,
            options=frozenset(options),
        )

    def describe(self) -> str:
        """A compact single-line rendering (for logs and the visualizer)."""
        completed = ", ".join(sorted(self.completed)) or "∅"
        options = ", ".join(sorted(self.options)) or "∅"
        return f"{self.term.short}  X={{{completed}}}  Y={{{options}}}"

    def __str__(self) -> str:
        return self.describe()
