"""Exception hierarchy for the CourseNavigator reproduction.

All library-raised exceptions derive from :class:`CourseNavigatorError` so
callers can catch everything the library raises with a single ``except``
clause while still distinguishing failure classes when they need to.
"""

from __future__ import annotations

__all__ = [
    "CourseNavigatorError",
    "CatalogError",
    "UnknownCourseError",
    "DuplicateCourseError",
    "ParseError",
    "PrerequisiteParseError",
    "ScheduleParseError",
    "GoalError",
    "ExplorationError",
    "BudgetExceededError",
    "InvalidConfigError",
]


class CourseNavigatorError(Exception):
    """Base class for every exception raised by this library."""


class CatalogError(CourseNavigatorError):
    """A problem with catalog contents (courses, schedules, references)."""


class UnknownCourseError(CatalogError, KeyError):
    """A course id was referenced that the catalog does not contain.

    Inherits from :class:`KeyError` so mapping-style lookups behave naturally.
    """

    def __init__(self, course_id: str, context: str = ""):
        self.course_id = course_id
        self.context = context
        message = f"unknown course {course_id!r}"
        if context:
            message = f"{message} ({context})"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError.__str__ repr-quotes its arg
        return self.args[0]


class DuplicateCourseError(CatalogError):
    """The same course id was added to a catalog twice."""

    def __init__(self, course_id: str):
        self.course_id = course_id
        super().__init__(f"duplicate course {course_id!r}")


class ParseError(CourseNavigatorError, ValueError):
    """Base class for registrar-input parsing failures.

    Carries the offending text and position so front-ends can point at the
    exact spot that failed.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        self.text = text
        self.position = position
        if position is not None:
            message = f"{message} (at position {position} in {text!r})"
        elif text:
            message = f"{message} (in {text!r})"
        super().__init__(message)


class PrerequisiteParseError(ParseError):
    """A prerequisite description string could not be parsed."""


class ScheduleParseError(ParseError):
    """A schedule table row or term name could not be parsed."""


class GoalError(CourseNavigatorError):
    """A goal requirement is malformed or cannot be evaluated."""


class ExplorationError(CourseNavigatorError):
    """A path-generation run was misconfigured or failed."""


class BudgetExceededError(ExplorationError):
    """An exploration exceeded its node/path/time budget.

    The paper's deadline-driven algorithm exhausts memory beyond five
    semesters; this exception is the library's controlled equivalent of that
    failure mode.  Attributes record what was exceeded so harnesses (and the
    Table 2 benchmark) can report ``N/A`` rows faithfully.
    """

    def __init__(self, kind: str, limit: float, observed: float):
        self.kind = kind
        self.limit = limit
        self.observed = observed
        super().__init__(
            f"exploration budget exceeded: {kind} limit {limit} reached (observed {observed})"
        )


class InvalidConfigError(ExplorationError, ValueError):
    """An :class:`~repro.core.config.ExplorationConfig` field is invalid."""
