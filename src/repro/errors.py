"""Exception hierarchy for the CourseNavigator reproduction.

All library-raised exceptions derive from :class:`CourseNavigatorError` so
callers can catch everything the library raises with a single ``except``
clause while still distinguishing failure classes when they need to.
"""

from __future__ import annotations

__all__ = [
    "CourseNavigatorError",
    "CatalogError",
    "UnknownCourseError",
    "DuplicateCourseError",
    "ParseError",
    "PrerequisiteParseError",
    "ScheduleParseError",
    "GoalError",
    "ExplorationError",
    "BudgetExceededError",
    "RunCancelledError",
    "InvalidConfigError",
]


class CourseNavigatorError(Exception):
    """Base class for every exception raised by this library."""


class CatalogError(CourseNavigatorError):
    """A problem with catalog contents (courses, schedules, references)."""


class UnknownCourseError(CatalogError, KeyError):
    """A course id was referenced that the catalog does not contain.

    Inherits from :class:`KeyError` so mapping-style lookups behave naturally.
    """

    def __init__(self, course_id: str, context: str = ""):
        self.course_id = course_id
        self.context = context
        message = f"unknown course {course_id!r}"
        if context:
            message = f"{message} ({context})"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError.__str__ repr-quotes its arg
        return self.args[0]


class DuplicateCourseError(CatalogError):
    """The same course id was added to a catalog twice."""

    def __init__(self, course_id: str):
        self.course_id = course_id
        super().__init__(f"duplicate course {course_id!r}")


class ParseError(CourseNavigatorError, ValueError):
    """Base class for registrar-input parsing failures.

    Carries the offending text and position so front-ends can point at the
    exact spot that failed.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        self.text = text
        self.position = position
        if position is not None:
            message = f"{message} (at position {position} in {text!r})"
        elif text:
            message = f"{message} (in {text!r})"
        super().__init__(message)


class PrerequisiteParseError(ParseError):
    """A prerequisite description string could not be parsed."""


class ScheduleParseError(ParseError):
    """A schedule table row or term name could not be parsed."""


class GoalError(CourseNavigatorError):
    """A goal requirement is malformed or cannot be evaluated."""


class ExplorationError(CourseNavigatorError):
    """A path-generation run was misconfigured or failed."""


class BudgetExceededError(ExplorationError):
    """An exploration exceeded its node/wall-clock/memory budget.

    The paper's deadline-driven algorithm exhausts memory beyond five
    semesters; this exception is the library's controlled equivalent of that
    failure mode.  Attributes record what was exceeded so harnesses (and the
    Table 2 benchmark) can report ``N/A`` rows faithfully.

    When live telemetry is attached to the run (see
    :mod:`repro.obs.live`), ``progress`` carries the final
    :class:`~repro.obs.live.ProgressSnapshot` and ``partial_stats`` the
    run's :class:`~repro.core.stats.ExplorationStats` as of the abort, so
    a supervisor can report how far the reaped run got; both are ``None``
    on untracked runs.
    """

    def __init__(
        self,
        kind: str,
        limit: float,
        observed: float,
        progress=None,
        partial_stats=None,
    ):
        self.kind = kind
        self.limit = limit
        self.observed = observed
        self.progress = progress
        self.partial_stats = partial_stats
        super().__init__(
            f"exploration budget exceeded: {kind} limit {limit} reached (observed {observed})"
        )


class RunCancelledError(BudgetExceededError):
    """A run was cooperatively cancelled from another thread.

    Raised by the exploration thread at its next budget tick after
    :meth:`~repro.obs.live.ExplorationBudget.cancel` was called (by a
    watchdog, a request handler, an operator).  Subclasses
    :class:`BudgetExceededError` so "bounded or reaped" is one except
    clause, and carries the same ``progress``/``partial_stats`` payload.
    """

    def __init__(self, reason: str = "cancelled", progress=None, partial_stats=None):
        self.reason = reason
        # kind/limit/observed keep the parent's contract meaningful:
        # a cancellation is a zero-tolerance budget observed once.
        self.kind = "cancelled"
        self.limit = 0
        self.observed = 1
        self.progress = progress
        self.partial_stats = partial_stats
        Exception.__init__(self, f"exploration cancelled: {reason}")


class InvalidConfigError(ExplorationError, ValueError):
    """An :class:`~repro.core.config.ExplorationConfig` field is invalid."""
