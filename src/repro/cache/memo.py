"""The bounded LRU memo every cache layer is built on.

One deliberately small primitive: an :class:`collections.OrderedDict`
used as an LRU map, with hit/miss/eviction accounting that can be wired
live into :mod:`repro.obs` counters.  Keys are whatever tuple the layer
chooses (goal fingerprints, identity tokens, frozensets); values are the
memoized results.

Like the rest of the engine, a memo is written by the single exploration
thread; other threads only ever read the counters (via the metrics
registry or :meth:`stats`), which is safe because the counts are plain
ints updated atomically enough for monitoring purposes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Iterator, Optional, Tuple

__all__ = ["LRUMemo"]


class LRUMemo:
    """A bounded least-recently-used memoization map with accounting.

    Parameters
    ----------
    name:
        Identifier used in :meth:`stats` output.
    capacity:
        Maximum number of entries; the least recently *used* entry is
        evicted when a store would exceed it.  ``None`` means unbounded.
    """

    __slots__ = (
        "name",
        "capacity",
        "_data",
        "hits",
        "misses",
        "evictions",
        "_hit_counter",
        "_miss_counter",
        "_eviction_counter",
    )

    def __init__(self, name: str, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"memo {name!r} capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._hit_counter = None
        self._miss_counter = None
        self._eviction_counter = None

    def bind_counters(self, hits=None, misses=None, evictions=None) -> None:
        """Mirror accounting into :mod:`repro.obs` counters from now on.

        Counts accumulated *before* binding are flushed into the counters
        first, so a registry attached mid-run (or after a warm-start
        preload) still sees the full totals.
        """
        if hits is not None and hits is not self._hit_counter:
            hits.inc(self.hits)
            self._hit_counter = hits
        if misses is not None and misses is not self._miss_counter:
            misses.inc(self.misses)
            self._miss_counter = misses
        if evictions is not None and evictions is not self._eviction_counter:
            evictions.inc(self.evictions)
            self._eviction_counter = evictions

    # -- the memo protocol ---------------------------------------------------

    def lookup(self, key: Hashable) -> Tuple[bool, Any]:
        """``(found, value)`` for ``key``, counting a hit or a miss.

        A hit refreshes the entry's recency.
        """
        data = self._data
        if key in data:
            data.move_to_end(key)
            self.hits += 1
            if self._hit_counter is not None:
                self._hit_counter.inc()
            return True, data[key]
        self.misses += 1
        if self._miss_counter is not None:
            self._miss_counter.inc()
        return False, None

    def store(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry if full.

        Does **not** count a hit or a miss — preloading a store-warmed
        entry must not distort the hit rate.
        """
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if self.capacity is not None and len(data) > self.capacity:
            data.popitem(last=False)
            self.evictions += 1
            if self._eviction_counter is not None:
                self._eviction_counter.inc()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        """Entries in recency order (LRU first); for store export."""
        return iter(list(self._data.items()))

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating)."""
        self._data.clear()

    # -- reporting -----------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 before the first lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """A plain-dict accounting snapshot."""
        return {
            "name": self.name,
            "size": len(self._data),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }
