"""Content fingerprints for cache keying and invalidation.

The persistent cache layer (:mod:`repro.cache.store`) must answer one
question reliably: *is this stored entry still valid?*  Every cacheable
object in the system already has a canonical JSON form (``to_dict``), so
the answer is a content hash: serialize canonically (sorted keys, no
whitespace), SHA-256 the bytes, and key everything on the digest.  A
catalog edit — a new course, a changed prerequisite, a different
schedule — produces a different digest, and the store for the old digest
is simply never opened again (invalidation by construction, no
timestamps or manual versioning).

Goal fingerprints serve the in-memory layers too: two structurally
identical :class:`~repro.requirements.Goal` objects (say, the same
degree goal rebuilt per query) hash to the same digest, so a warm
:class:`~repro.cache.memos.FlowMemo` serves both.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = [
    "fingerprint_payload",
    "catalog_fingerprint",
    "goal_fingerprint",
    "schedule_fingerprint",
]


def fingerprint_payload(payload: Any) -> str:
    """SHA-256 hex digest of ``payload``'s canonical JSON form.

    Canonical means sorted keys and no insignificant whitespace, so the
    digest depends only on content, never on dict ordering or formatting.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def catalog_fingerprint(catalog) -> str:
    """Digest of a :class:`~repro.catalog.Catalog`'s content.

    Covers courses (ids, titles, workloads, prerequisite expressions) and
    the schedule — exactly what exploration results depend on.  The
    offering-probability model is excluded (as in ``Catalog.to_dict``):
    it affects reliability *ranking costs*, which are never cached.
    """
    return fingerprint_payload({"kind": "catalog", "content": catalog.to_dict()})


def goal_fingerprint(goal) -> str:
    """Digest of a :class:`~repro.requirements.Goal`'s content."""
    return fingerprint_payload({"kind": "goal", "content": goal.to_dict()})


def schedule_fingerprint(schedule) -> str:
    """Digest of a :class:`~repro.catalog.Schedule`'s offerings."""
    return fingerprint_payload({"kind": "schedule", "content": schedule.to_dict()})
