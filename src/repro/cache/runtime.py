"""The :class:`ExplorationCache` bundle — one object the engine threads.

Mirrors the shape of :class:`~repro.obs.runtime.Observability`: the
generators and the :class:`~repro.system.CourseNavigator` take one
optional ``cache`` argument, and everything — flow memo, eval memo,
transposition table, persistent store, metrics binding — hangs off it.
``cache=None`` (the default for the library API) is the seed engine,
untouched.

Sharing model: one cache per catalog.  All four generators, every pruner
instance, and repeated queries through one navigator reuse the same
memos; nothing is global, so two navigators over different catalogs
never interfere.  Like the engine itself, a cache is written from the
single exploration thread.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..requirements import Goal
from ..requirements.goals import ExpressionGoal
from .fingerprint import catalog_fingerprint, goal_fingerprint
from .memo import LRUMemo
from .memos import (
    DEFAULT_EVAL_CAPACITY,
    DEFAULT_FLOW_CAPACITY,
    CachedGoal,
    EvalMemo,
    FlowMemo,
)
from .store import CacheStore
from .transposition import (
    DEFAULT_TRANSPOSITION_CAPACITY,
    TranspositionTable,
    TranspositionView,
    pruner_signature,
)

__all__ = ["ExplorationCache"]


class ExplorationCache:
    """Query acceleration for one catalog: memos + transpositions + store.

    Parameters
    ----------
    flow_capacity, eval_capacity, transposition_capacity:
        LRU entry bounds per layer (``None`` = unbounded).
    store:
        Optional :class:`~repro.cache.CacheStore`; its entries warm-start
        the flow memo immediately, and :meth:`save` writes the memo back.

    Guarantee: caching is *output-invisible*.  Every layer replays a
    previously computed pure function of its key, so path sets, counts,
    statistics and decision streams are identical with the cache on or
    off (the equivalence suite in ``tests/test_cache.py`` enforces this).
    """

    def __init__(
        self,
        flow_capacity: Optional[int] = DEFAULT_FLOW_CAPACITY,
        eval_capacity: Optional[int] = DEFAULT_EVAL_CAPACITY,
        transposition_capacity: Optional[int] = DEFAULT_TRANSPOSITION_CAPACITY,
        store: Optional[CacheStore] = None,
    ):
        self.flow = FlowMemo(flow_capacity)
        self.eval = EvalMemo(eval_capacity)
        self.transposition = TranspositionTable(transposition_capacity)
        self.store = store
        self._metrics = None
        self._wrapped: Dict[int, CachedGoal] = {}
        self._fingerprints: Dict[int, Any] = {}  # id -> (fingerprint, goal ref)
        if store is not None:
            store.load_into(self.flow)

    @classmethod
    def with_store(cls, catalog, cache_dir: str, **kwargs) -> "ExplorationCache":
        """A cache whose flow memo persists under ``cache_dir``.

        The store file is keyed by ``catalog``'s content fingerprint, so
        editing the catalog automatically cold-starts (the old file is
        simply never opened).
        """
        store = CacheStore(cache_dir, catalog_fingerprint(catalog))
        return cls(store=store, **kwargs)

    # -- goal plumbing -------------------------------------------------------

    def fingerprint_for(self, goal: Goal) -> str:
        """``goal``'s content fingerprint, computed once per object."""
        if isinstance(goal, CachedGoal):
            return goal.fingerprint
        entry = self._fingerprints.get(id(goal))
        if entry is not None:
            return entry[0]
        fingerprint = goal_fingerprint(goal)
        # Keep a strong reference so the id cannot be recycled.
        self._fingerprints[id(goal)] = (fingerprint, goal)
        return fingerprint

    def wrap_goal(self, goal: Goal) -> Goal:
        """A :class:`CachedGoal` over ``goal`` backed by this cache's memo.

        Idempotent (wrapping a wrap returns it unchanged) and stable per
        goal object, so repeated queries reuse one wrapper.
        """
        if isinstance(goal, CachedGoal) and goal.flow_memo is self.flow:
            return goal
        wrapped = self._wrapped.get(id(goal))
        if wrapped is not None:
            return wrapped
        dnf = None
        if isinstance(goal, ExpressionGoal):
            dnf = self.eval.dnf(goal.expression)
        wrapped = CachedGoal(goal, self.flow, fingerprint=self.fingerprint_for(goal), dnf=dnf)
        self._wrapped[id(goal)] = wrapped
        return wrapped

    def transposition_view(
        self, goal: Goal, end_term, config, pruners: Sequence
    ) -> TranspositionView:
        """A per-run view of the transposition table.

        The run key covers everything a prune verdict depends on besides
        the status itself: the goal's content, the deadline, the config,
        and the pruner stack (class + order).  An unhashable config
        (exotic constraint objects) falls back to identity keying —
        strictly less reuse, never a wrong answer.
        """
        try:
            hash(config)
            config_key: Any = config
        except TypeError:
            config_key = self.eval.token(config)
        run_key = (
            self.fingerprint_for(goal),
            end_term,
            config_key,
            pruner_signature(pruners),
        )
        return self.transposition.view(run_key)

    # -- observability -------------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Emit hit/miss/eviction counters into a
        :class:`~repro.obs.MetricsRegistry` (idempotent per registry).

        One counter triple per layer, labelled ``layer="flow"`` /
        ``"eval"`` / ``"transposition"``; counts accumulated before
        binding are flushed in so totals are complete.
        """
        if registry is None or registry is self._metrics:
            return
        self._metrics = registry
        layers = (
            ("flow", [self.flow.memo]),
            ("eval", self.eval.memos),
            ("transposition", [self.transposition.memo]),
        )
        for layer, memos in layers:
            labels = {"layer": layer}
            hits = registry.counter(
                "repro_cache_hits_total", "cache lookups served from memory", labels
            )
            misses = registry.counter(
                "repro_cache_misses_total", "cache lookups that had to compute", labels
            )
            evictions = registry.counter(
                "repro_cache_evictions_total", "cache entries dropped by the LRU bound", labels
            )
            for memo in memos:
                memo.bind_counters(hits, misses, evictions)
        if self.store is not None:
            registry.gauge(
                "repro_cache_store_entries_loaded",
                "flow entries warm-started from the persistent store",
            ).set(self.store.loaded_entries)

    # -- worker shipping (repro.parallel) -------------------------------------

    def flow_snapshot(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """A picklable/JSON-safe snapshot of the flow memo's entries.

        This is the warm-start payload the parallel engine ships to worker
        processes: each entry is the plain-dict form produced by
        :meth:`FlowMemo.export_entries <repro.cache.memos.FlowMemo.export_entries>`
        (the same format the persistent store writes), so a worker's fresh
        cache can :meth:`preload_flow` them without sharing any state with
        the parent.  ``limit`` keeps only the most recently used entries,
        bounding the pickled payload size.
        """
        entries = list(self.flow.export_entries())
        if limit is not None and len(entries) > limit:
            entries = entries[-limit:]
        return entries

    def preload_flow(self, entries: Sequence[Dict[str, Any]]) -> int:
        """Insert exported flow entries (see :meth:`flow_snapshot`).

        Preloads bypass the hit/miss counters, exactly like a store
        warm-start, so shipped entries never distort a worker's metrics.
        Returns the number of entries accepted.
        """
        count = 0
        for entry in entries:
            if self.flow.preload(entry):
                count += 1
        return count

    def counter_totals(self) -> Dict[str, Dict[str, int]]:
        """Per-layer ``{hits, misses, evictions}`` totals.

        Workers report these deltas back to the parent, which adds them to
        the session registry's ``repro_cache_*_total`` counters so a
        parallel run's cache traffic is visible in one scrape.
        """
        totals: Dict[str, Dict[str, int]] = {}
        for layer, memos in (
            ("flow", [self.flow.memo]),
            ("eval", self.eval.memos),
            ("transposition", [self.transposition.memo]),
        ):
            totals[layer] = {
                "hits": sum(memo.hits for memo in memos),
                "misses": sum(memo.misses for memo in memos),
                "evictions": sum(memo.evictions for memo in memos),
            }
        return totals

    # -- persistence ---------------------------------------------------------

    def save(self) -> int:
        """Write the flow memo back to the store; 0 when storeless."""
        if self.store is None:
            return 0
        return self.store.save_from(self.flow)

    # -- reporting -----------------------------------------------------------

    @property
    def memos(self) -> List[LRUMemo]:
        """Every constituent memo (flow, eval×3, transposition)."""
        return [self.flow.memo] + self.eval.memos + [self.transposition.memo]

    def stats(self) -> Dict[str, Any]:
        """A plain-dict snapshot across all layers (plus store, if any)."""
        snapshot: Dict[str, Any] = {
            "flow": self.flow.memo.stats(),
            "eval": [memo.stats() for memo in self.eval.memos],
            "transposition": self.transposition.memo.stats(),
        }
        if self.store is not None:
            snapshot["store"] = self.store.stats()
        return snapshot

    def describe_line(self) -> str:
        """A one-line summary for CLI stderr reporting."""
        parts = []
        for label, memos in (
            ("flow", [self.flow.memo]),
            ("eval", self.eval.memos),
            ("transposition", [self.transposition.memo]),
        ):
            hits = sum(memo.hits for memo in memos)
            misses = sum(memo.misses for memo in memos)
            total = hits + misses
            rate = f" ({hits / total:.0%})" if total else ""
            parts.append(f"{label} {hits}/{total}{rate}")
        line = "cache hits: " + ", ".join(parts)
        if self.store is not None and self.store.warm_start:
            line += f"; warm-started {self.store.loaded_entries} flow entries"
        return line
