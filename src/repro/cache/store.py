"""Persistent cross-run cache store (JSON-lines under ``--cache-dir``).

One file per catalog content fingerprint::

    <cache-dir>/flow-<catalog fingerprint>.jsonl

Line 1 is a header naming the format, version and catalog fingerprint;
every further line is one exported :class:`~repro.cache.memos.FlowMemo`
entry.  Flow entries are the right thing to persist: they are the
expensive computations (max-flow solves), they are keyed purely by
*content* (goal fingerprint + completed set), and they stay valid for as
long as the goal definition does — unlike option sets, which depend on
the catalog object wholesale and reload in microseconds anyway.

Invalidation is structural, not procedural:

* a **changed catalog** produces a different fingerprint, hence a
  different path — the stale file is never even opened;
* a **header mismatch** (foreign file, version bump, fingerprint edit)
  makes the load return zero entries — a graceful cold start;
* a **corrupt line** (truncated write, bit rot) is skipped individually,
  keeping every decodable entry.

Writes go to a temp file in the same directory followed by
:func:`os.replace`, so a crash mid-save leaves the previous store intact.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Optional

from .memos import FlowMemo

__all__ = ["CacheStore"]

STORE_FORMAT = "repro-cache-flow"
STORE_VERSION = 1


class CacheStore:
    """Load/save one catalog's flow-memo entries under ``cache_dir``."""

    __slots__ = (
        "cache_dir",
        "catalog_fingerprint",
        "path",
        "loaded_entries",
        "saved_entries",
        "warm_start",
    )

    def __init__(self, cache_dir: str, catalog_fingerprint: str):
        self.cache_dir = cache_dir
        self.catalog_fingerprint = catalog_fingerprint
        self.path = os.path.join(cache_dir, f"flow-{catalog_fingerprint}.jsonl")
        self.loaded_entries = 0
        self.saved_entries = 0
        #: Whether a valid store file existed and was loaded.
        self.warm_start = False

    def _header(self) -> Dict[str, Any]:
        return {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "catalog": self.catalog_fingerprint,
        }

    def _header_valid(self, line: str) -> bool:
        try:
            header = json.loads(line)
        except ValueError:
            return False
        return (
            isinstance(header, dict)
            and header.get("format") == STORE_FORMAT
            and header.get("version") == STORE_VERSION
            and header.get("catalog") == self.catalog_fingerprint
        )

    def load_into(self, flow: FlowMemo) -> int:
        """Preload ``flow`` from disk; returns the entry count (0 = cold).

        Never raises on bad content: an unreadable file, a foreign or
        stale header, and individually corrupt lines all degrade to
        loading less — the engine then recomputes, it never miscomputes.
        """
        self.loaded_entries = 0
        self.warm_start = False
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                header_line = handle.readline()
                if not self._header_valid(header_line):
                    return 0
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(entry, dict) and flow.preload(entry):
                        self.loaded_entries += 1
        except OSError:
            return 0
        self.warm_start = self.loaded_entries > 0
        return self.loaded_entries

    def save_from(self, flow: FlowMemo) -> int:
        """Atomically write ``flow``'s entries; returns the entry count."""
        os.makedirs(self.cache_dir, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            prefix=".flow-", suffix=".tmp", dir=self.cache_dir
        )
        count = 0
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(self._header(), sort_keys=True) + "\n")
                for entry in flow.export_entries():
                    handle.write(json.dumps(entry, sort_keys=True) + "\n")
                    count += 1
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.saved_entries = count
        return count

    def stats(self) -> Dict[str, Any]:
        """A plain-dict snapshot for reports."""
        return {
            "path": self.path,
            "catalog": self.catalog_fingerprint,
            "warm_start": self.warm_start,
            "loaded_entries": self.loaded_entries,
            "saved_entries": self.saved_entries,
        }

    def exists(self) -> bool:
        """Whether a store file is present (valid or not)."""
        return os.path.exists(self.path)

    @staticmethod
    def invalidation_note(cache_dir: str) -> Optional[str]:
        """Short note listing stale store files left in ``cache_dir``
        (files for other catalog fingerprints); ``None`` when clean.
        Informational only — stale files are inert, never loaded."""
        try:
            names = [
                name
                for name in os.listdir(cache_dir)
                if name.startswith("flow-") and name.endswith(".jsonl")
            ]
        except OSError:
            return None
        if len(names) > 1:
            return f"{len(names)} catalog generations in {cache_dir}"
        return None
