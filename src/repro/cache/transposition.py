"""Transposition table: reuse pruning outcomes across identical statuses.

Tree-shaped exploration revisits states: two different selection orders
that complete the same courses by the same semester produce two tree
nodes with one ``(term, completed)`` key, and the pruning verdict at that
key is a pure function of the key once the goal, end term and config are
fixed (the same fact that makes :mod:`repro.core.counting`'s merged DAG
exact).  The table records, per distinct status, which strategy fired
(or that none did) together with the structured verdicts when decision
recording asked for them — so a transposed node pays one dict lookup
instead of a max-flow solve plus a satisfaction check.

Entries are namespaced by a *run key* — ``(goal fingerprint, end term,
config, pruner-stack signature)`` — so one table safely serves many
queries: only runs that would provably compute identical verdicts share
entries, and anything else (different deadline, different ``m``, a
reordered or custom pruner stack) gets its own namespace.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from ..core.pruning import Pruner, examine_pruners, first_firing_pruner
from ..graph.status import EnrollmentStatus
from .memo import LRUMemo

__all__ = ["TranspositionTable", "TranspositionView"]

DEFAULT_TRANSPOSITION_CAPACITY = 200_000

#: ``(firing strategy name or None, verdict dicts or None)``.
Entry = Tuple[Optional[str], Optional[Tuple[Dict[str, Any], ...]]]


def pruner_signature(pruners: Sequence[Pruner]) -> Tuple[Tuple[str, str], ...]:
    """A content key for a pruner stack: class identity + name, in order.

    First-fires-wins means the *order* of the stack is part of the
    decision, so reordered stacks must not share entries.
    """
    return tuple(
        (type(pruner).__module__ + "." + type(pruner).__qualname__, pruner.name)
        for pruner in pruners
    )


class TranspositionView:
    """One run's window onto the shared table (run key pre-bound)."""

    __slots__ = ("_memo", "_run_key")

    def __init__(self, memo: LRUMemo, run_key: Any):
        self._memo = memo
        self._run_key = run_key

    def consult(
        self,
        pruners: Sequence[Pruner],
        status: EnrollmentStatus,
        obs=None,
        want_verdicts: bool = False,
    ) -> Entry:
        """The pruner stack's answer for ``status``, cached.

        Drop-in for :func:`~repro.core.pruning.first_firing_pruner` /
        :func:`~repro.core.pruning.examine_pruners` — same first-fires-wins
        semantics, same per-strategy phase charging on a miss — except the
        firing strategy comes back by *name* and the verdicts as the
        ``as_dict`` forms the decision recorder stores.

        A boolean-only entry (recorded while no decisions were being
        audited) cannot serve a ``want_verdicts`` consult; it is recomputed
        and upgraded in place so explain streams stay byte-identical with
        caching on.
        """
        key = (self._run_key, status.term, status.completed)
        found, entry = self._memo.lookup(key)
        if found and (not want_verdicts or entry[1] is not None):
            return entry
        if want_verdicts:
            firing, verdicts = examine_pruners(pruners, status, obs)
            entry = (
                firing.name if firing is not None else None,
                tuple(verdict.as_dict() for verdict in verdicts),
            )
        else:
            firing = first_firing_pruner(pruners, status, obs)
            entry = (firing.name if firing is not None else None, None)
        self._memo.store(key, entry)
        return entry


class TranspositionTable:
    """The process-wide table; hand each run a :class:`TranspositionView`."""

    __slots__ = ("memo",)

    def __init__(self, capacity: Optional[int] = DEFAULT_TRANSPOSITION_CAPACITY):
        self.memo = LRUMemo("transposition", capacity)

    def view(self, run_key: Any) -> TranspositionView:
        """A view namespaced under ``run_key``."""
        return TranspositionView(self.memo, run_key)
