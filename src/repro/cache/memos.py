"""The in-memory memo layers: flow results, evaluation results, goals.

Three cooperating pieces:

* :class:`FlowMemo` — memoizes what the pruning strategies ask of a goal:
  ``remaining_courses`` (the max-flow-backed ``left_i`` of §4.2.1) and
  ``is_satisfied`` (the terminal test and availability pruning's §4.2.2
  best-case check), keyed by ``(goal fingerprint, completed)``.  Keying on
  the *fingerprint* rather than the object means a degree goal rebuilt
  per query still reuses every prior answer, and lets the persistent
  store replay entries across processes.

* :class:`EvalMemo` — memoizes catalog-level evaluation: per-term option
  sets (``eligible_courses``, which walks every course's prerequisite
  DNF), the availability pruner's offered-in-remaining-semesters window,
  and prerequisite-expression DNF conversion.  Keys use *identity
  tokens* for catalog/schedule objects: hashing a schedule's full
  offering map on every lookup would cost more than the lookup saves, so
  each distinct object is assigned a small integer token once (a strong
  reference is kept so tokens can never be recycled onto a different
  object).

* :class:`CachedGoal` — a transparent :class:`~repro.requirements.Goal`
  wrapper that routes ``is_satisfied``/``remaining_courses`` through a
  :class:`FlowMemo`.  Satisfaction and remaining-count are memoized
  *separately*: for the composite goals, ``remaining_courses`` is an
  admissible bound rather than an exact count, so neither answer may be
  derived from the other without changing results.
"""

from __future__ import annotations

import itertools
import math
from typing import (
    AbstractSet,
    Any,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Tuple,
)

from ..requirements import Goal
from ..semester import Term
from .fingerprint import goal_fingerprint
from .memo import LRUMemo

__all__ = ["FlowMemo", "EvalMemo", "CachedGoal"]

#: Default entry bounds: generous enough that the paper-scale workloads
#: (Table 2 tops out well under a million distinct completed-sets) never
#: evict, small enough to bound memory on runaway horizons.
DEFAULT_FLOW_CAPACITY = 200_000
DEFAULT_EVAL_CAPACITY = 200_000


class FlowMemo:
    """Memoized goal queries, keyed by ``(kind, goal fingerprint, completed)``."""

    __slots__ = ("memo",)

    #: Entry kinds (also the persistent store's ``kind`` field).
    REMAINING = "left"
    SATISFIED = "sat"

    def __init__(self, capacity: Optional[int] = DEFAULT_FLOW_CAPACITY):
        self.memo = LRUMemo("flow", capacity)

    def lookup_remaining(
        self, fingerprint: str, completed: FrozenSet[str]
    ) -> Tuple[bool, Any]:
        """Cached ``remaining_courses`` answer, if any."""
        return self.memo.lookup((self.REMAINING, fingerprint, completed))

    def store_remaining(
        self, fingerprint: str, completed: FrozenSet[str], value: float
    ) -> None:
        self.memo.store((self.REMAINING, fingerprint, completed), value)

    def lookup_satisfied(
        self, fingerprint: str, completed: FrozenSet[str]
    ) -> Tuple[bool, Any]:
        """Cached ``is_satisfied`` answer, if any."""
        return self.memo.lookup((self.SATISFIED, fingerprint, completed))

    def store_satisfied(
        self, fingerprint: str, completed: FrozenSet[str], value: bool
    ) -> None:
        self.memo.store((self.SATISFIED, fingerprint, completed), value)

    # -- persistence hooks ---------------------------------------------------

    def export_entries(self) -> Iterator[Dict[str, Any]]:
        """JSON-serializable entries, LRU first (the store's line format)."""
        for key, value in self.memo.items():
            kind, fingerprint, completed = key
            if isinstance(value, float) and math.isinf(value):
                value = "inf"
            yield {
                "kind": kind,
                "goal": fingerprint,
                "completed": sorted(completed),
                "value": value,
            }

    def preload(self, entry: Dict[str, Any]) -> bool:
        """Insert one exported entry; returns whether it was well-formed.

        Preloads never count as hits or misses, so a warm start does not
        inflate the reported hit rate.
        """
        kind = entry.get("kind")
        fingerprint = entry.get("goal")
        completed = entry.get("completed")
        value = entry.get("value")
        if not isinstance(fingerprint, str) or not isinstance(completed, list):
            return False
        if value == "inf":
            value = math.inf
        if kind == self.REMAINING:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                return False
        elif kind == self.SATISFIED:
            if not isinstance(value, bool):
                return False
        else:
            return False
        self.memo.store((kind, fingerprint, frozenset(completed)), value)
        return True


class EvalMemo:
    """Shared catalog-level evaluation caches (one per exploration cache).

    All generators and every pruner instance built against the same
    :class:`~repro.cache.ExplorationCache` route through this object, so
    a deadline run, a goal run and a ranked run over the same catalog
    compute each option set and offered-window exactly once between them.
    """

    __slots__ = ("options_memo", "offered_memo", "dnf_memo", "_tokens", "_next_token")

    def __init__(self, capacity: Optional[int] = DEFAULT_EVAL_CAPACITY):
        self.options_memo = LRUMemo("eval_options", capacity)
        # Offered windows and DNFs are tiny key spaces (one entry per term
        # window / per distinct expression) — a small bound is plenty.
        self.offered_memo = LRUMemo("eval_offered", 4096)
        self.dnf_memo = LRUMemo("eval_dnf", 4096)
        self._tokens: Dict[int, Tuple[int, Any]] = {}
        self._next_token = itertools.count()

    @property
    def memos(self) -> List[LRUMemo]:
        """The constituent memos (for metrics binding and stats)."""
        return [self.options_memo, self.offered_memo, self.dnf_memo]

    def token(self, obj: Any) -> int:
        """A stable small-integer identity token for ``obj``.

        Tokens replace expensive content hashes (``Schedule.__hash__``
        rebuilds a frozenset of its whole offering map) in memo keys.  The
        table keeps a strong reference, so an object's id can never be
        reused for a different token while this memo is alive.
        """
        entry = self._tokens.get(id(obj))
        if entry is not None:
            return entry[0]
        token = next(self._next_token)
        self._tokens[id(obj)] = (token, obj)
        return token

    def options(
        self,
        catalog,
        schedule,
        completed: AbstractSet[str],
        term: Term,
        exclude: FrozenSet[str],
    ) -> FrozenSet[str]:
        """Memoized ``catalog.eligible_courses`` (the expander's ``Y``)."""
        key = (self.token(catalog), self.token(schedule), term, frozenset(completed), exclude)
        found, value = self.options_memo.lookup(key)
        if found:
            return value
        value = catalog.eligible_courses(completed, term, exclude=exclude, schedule=schedule)
        self.options_memo.store(key, value)
        return value

    def offered_window(
        self, schedule, first_term: Term, last_term: Term, avoid: FrozenSet[str]
    ) -> FrozenSet[str]:
        """Memoized availability window: everything offered in
        ``[first_term, last_term]`` minus the avoid-list (§4.2.2's
        best-case completion pool)."""
        if last_term < first_term:
            return frozenset()
        key = (self.token(schedule), first_term, last_term, avoid)
        found, value = self.offered_memo.lookup(key)
        if found:
            return value
        value = schedule.offered_between(first_term, last_term) - avoid
        self.offered_memo.store(key, value)
        return value

    def dnf(self, expression) -> FrozenSet[FrozenSet[str]]:
        """Memoized :meth:`~repro.catalog.prereq.PrereqExpr.to_dnf`."""
        key = self.token(expression)
        found, value = self.dnf_memo.lookup(key)
        if found:
            return value
        value = expression.to_dnf()
        self.dnf_memo.store(key, value)
        return value


class CachedGoal(Goal):
    """A goal whose queries are served through a :class:`FlowMemo`.

    Pure delegation otherwise: ``courses``/``describe``/``to_dict`` and
    equality/hash forward to the wrapped goal, so a cached goal is
    indistinguishable from the original everywhere except speed.  For
    :class:`~repro.requirements.ExpressionGoal` the wrapper may carry the
    expression's pre-converted DNF and compute ``remaining_courses`` with
    the exact formula of ``PrereqExpr.min_courses_to_satisfy`` — same
    values, minus the per-call DNF conversion.
    """

    def __init__(
        self,
        goal: Goal,
        flow: FlowMemo,
        fingerprint: Optional[str] = None,
        dnf: Optional[FrozenSet[FrozenSet[str]]] = None,
    ):
        if isinstance(goal, CachedGoal):
            goal = goal.inner
        self._inner = goal
        self._flow = flow
        self._fingerprint = fingerprint or goal_fingerprint(goal)
        self._dnf = dnf

    @property
    def inner(self) -> Goal:
        """The wrapped goal."""
        return self._inner

    @property
    def fingerprint(self) -> str:
        """The wrapped goal's content fingerprint (the memo key prefix)."""
        return self._fingerprint

    @property
    def flow_memo(self) -> FlowMemo:
        """The memo serving this wrapper."""
        return self._flow

    def is_satisfied(self, completed: AbstractSet[str]) -> bool:
        completed = frozenset(completed)
        found, value = self._flow.lookup_satisfied(self._fingerprint, completed)
        if found:
            return value
        value = self._inner.is_satisfied(completed)
        self._flow.store_satisfied(self._fingerprint, completed, value)
        return value

    def remaining_courses(self, completed: AbstractSet[str]) -> float:
        completed = frozenset(completed)
        found, value = self._flow.lookup_remaining(self._fingerprint, completed)
        if found:
            return value
        if self._dnf is not None:
            # min_courses_to_satisfy, verbatim, over the pre-converted DNF.
            if self._dnf:
                value = min(len(conjunction - completed) for conjunction in self._dnf)
            else:
                value = math.inf
        else:
            value = self._inner.remaining_courses(completed)
        self._flow.store_remaining(self._fingerprint, completed, value)
        return value

    def courses(self) -> FrozenSet[str]:
        return self._inner.courses()

    def describe(self) -> str:
        return self._inner.describe()

    def to_dict(self) -> Dict[str, Any]:
        return self._inner.to_dict()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CachedGoal):
            other = other.inner
        return self._inner == other

    def __hash__(self) -> int:
        return hash(self._inner)

    def __repr__(self) -> str:
        return f"CachedGoal({self._inner!r})"
