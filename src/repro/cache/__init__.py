"""Query acceleration: memoization, transposition tables, persistence.

The exploration engine's hot loop repeats itself at every scale — the
same max-flow ``left_i`` solve for thousands of tree nodes sharing a
completed-set, the same option-set computation for transposed statuses,
the same verdicts when one student re-runs a query against an unchanged
catalog.  This package removes the repetition without changing a single
output (path sets, counts, statistics and explain streams are identical
with caching on or off — property-tested):

* :class:`FlowMemo` — ``remaining_courses`` / ``is_satisfied`` results
  keyed by ``(goal fingerprint, completed)`` (:mod:`repro.cache.memos`);
* :class:`EvalMemo` — option sets, availability windows and prereq DNFs
  shared across pruners and generators (:mod:`repro.cache.memos`);
* :class:`TranspositionTable` — recorded pruning outcomes per distinct
  ``(term, completed)`` status (:mod:`repro.cache.transposition`);
* :class:`CacheStore` — a JSONL store under ``--cache-dir``, keyed by
  catalog content fingerprint, warm-starting the flow memo across
  processes and invalidating on any catalog change
  (:mod:`repro.cache.store`).

Entry point: build one :class:`ExplorationCache` per catalog and pass it
as the ``cache=`` argument to :class:`~repro.system.CourseNavigator` or
any generator, or use the CLI's ``--cache/--no-cache`` / ``--cache-dir``
flags.  See ``docs/caching.md``.
"""

from .fingerprint import (
    catalog_fingerprint,
    fingerprint_payload,
    goal_fingerprint,
    schedule_fingerprint,
)
from .memo import LRUMemo
from .memos import CachedGoal, EvalMemo, FlowMemo
from .runtime import ExplorationCache
from .store import CacheStore
from .transposition import TranspositionTable, TranspositionView, pruner_signature

__all__ = [
    "ExplorationCache",
    "FlowMemo",
    "EvalMemo",
    "CachedGoal",
    "TranspositionTable",
    "TranspositionView",
    "CacheStore",
    "LRUMemo",
    "catalog_fingerprint",
    "goal_fingerprint",
    "schedule_fingerprint",
    "fingerprint_payload",
    "pruner_signature",
]
