"""Deterministic merge of shard results onto the prefix tree.

Shard payloads arrive in completion order, but everything order-sensitive
here is keyed by shard *index*: subtrees are grafted in seed order, the
combined tree is renumbered by replaying the serial LIFO discipline
(:meth:`~repro.graph.learning_graph.LearningGraph.canonicalize`), and
decision events are re-emitted in the renumbered pop order with their
graph context re-derived from the canonical node ids.  The output —
node ids, ``paths()`` order, and the ``--explain`` event stream — is
byte-identical to the serial run over the same query.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..graph import LearningGraph
from ..core.goal_driven import _graph_decision
from .plan import BufferedEvent, PrefixPlan

__all__ = ["merge_tree_results"]


def _buffer_worker_events(
    event_lookup: Dict[int, List[BufferedEvent]],
    id_map: Dict[int, int],
    events,
) -> None:
    """Translate a worker's decision events into prefix-graph buffers.

    Only the event-specific payload survives (strategy / verdicts /
    detail); node id, parent, term, selection and completed set are
    re-derived from the canonical graph at replay time, which is exactly
    how the serial generator builds them.
    """
    for event in events:
        kwargs: Dict[str, Any] = {}
        if event.strategy is not None:
            kwargs["strategy"] = event.strategy
        if event.verdicts:
            kwargs["verdicts"] = event.verdicts
        if event.detail:
            kwargs["detail"] = event.detail
        event_lookup.setdefault(id_map[event.node_id], []).append((event.kind, kwargs))


def merge_tree_results(
    plan: PrefixPlan,
    payloads: Sequence[Optional[Dict[str, Any]]],
    recorder,
) -> LearningGraph:
    """Grafts every shard graph onto the prefix and renumbers serially.

    ``payloads`` must be ordered by shard index (``payloads[i]`` belongs
    to ``plan.seed_ids[i]``).  When ``recorder`` is attached, the
    buffered prefix events plus every worker's event stream are replayed
    against the canonical graph in serial pop order.
    """
    event_lookup: Dict[int, List[BufferedEvent]] = {
        node_id: list(buffered) for node_id, buffered in (plan.events or {}).items()
    }
    for seed_id, payload in zip(plan.seed_ids, payloads):
        id_map = plan.graph.graft(seed_id, payload["graph"])
        worker_events = payload.get("events")
        if worker_events:
            _buffer_worker_events(event_lookup, id_map, worker_events)

    canonical, id_map, order = plan.graph.canonicalize()
    if recorder is not None:
        for old_id in order:
            for kind, kwargs in event_lookup.get(old_id, ()):
                recorder.record(
                    _graph_decision(canonical, id_map[old_id], kind, **kwargs)
                )
    return canonical
