"""The process-sharded exploration engine.

Strategy (see ``docs/parallel.md`` for the full argument): run the first
``split_depth`` levels serially in-process, ship every surviving node at
the split depth to a :class:`concurrent.futures.ProcessPoolExecutor`
worker that runs the *unmodified* serial generator on its subtree, then
merge deterministically — subtrees grafted in seed order, node ids
renumbered by replaying the serial LIFO discipline, stats and pruning
counters folded with the same ``merge`` used everywhere else.  For the
tree modes the output (paths, counts, prune statistics, ``--explain``
event streams) is byte-identical to the serial run; the only permitted
difference is ``stats.elapsed_seconds``, which reports the parallel
run's wall time.

Known deviations, by design:

* Budget ticks happen once per prefix node and once per completed shard
  (workers enforce ``config.max_nodes`` on their own subtrees; the
  parent re-checks the merged total), so an over-budget run aborts at a
  slightly different moment than serial — but succeeds/fails on the
  same queries in the tree modes.
* Ranked mode enumerates the shallow prefix exhaustively (serial
  best-first can stop early), so its *stats* are approximate and a
  ``max_nodes`` budget binds per shard rather than globally; the
  returned costs are identical and the path list matches serial up to
  equal-cost tie order.
* Frontier counting reports exact path counts and terminal tallies;
  layer widths / peak / total states are upper bounds because shards
  cannot merge duplicate states across chunks.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import AbstractSet, Any, Dict, List, Optional, Sequence

from ..cache.memos import CachedGoal
from ..catalog import Catalog
from ..errors import ExplorationError
from ..graph.path import LearningPath
from ..obs.live import budget_exceeded
from ..obs.runtime import NULL_OBSERVABILITY, Observability
from ..requirements import Goal
from ..semester import Term
from ..core.config import ExplorationConfig
from ..core.deadline import DeadlineResult
from ..core.frontier import FrontierCount, _run_frontier
from ..core.goal_driven import GoalDrivenResult
from ..core.pruning import PruningContext, TimeBasedPruner, default_pruners
from ..core.ranked import RankedResult
from ..core.ranking import RankingFunction
from .merge import merge_tree_results
from .plan import (
    partition_frontier,
    resolve_split_depth,
    walk_ranked_prefix,
    walk_tree_prefix,
)
from .worker import ShardContext, _initialize_worker, _run_shard, execute_shard

__all__ = [
    "parallel_count_deadline_paths",
    "parallel_count_goal_paths",
    "parallel_deadline_driven",
    "parallel_goal_driven",
    "parallel_ranked",
    "resolve_workers",
]

#: Cap on the flow-memo entries shipped to each worker's warm start.
FLOW_SNAPSHOT_LIMIT = 4096

#: Auto worker count is capped here: exploration shards are CPU-bound and
#: the merge is serial, so very wide pools only add pickling overhead.
AUTO_WORKER_CAP = 4


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count request (``0``/``None`` = auto)."""
    if workers is None:
        workers = 0
    workers = int(workers)
    if workers < 0:
        raise ExplorationError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return max(1, min(AUTO_WORKER_CAP, os.cpu_count() or 1))
    return workers


def _check_inputs(catalog: Catalog, start_term: Term, end_term: Term, completed) -> None:
    if end_term < start_term:
        raise ExplorationError(f"end term {end_term} precedes start term {start_term}")
    unknown = frozenset(completed) - catalog.course_ids()
    if unknown:
        raise ExplorationError(f"completed courses not in catalog: {sorted(unknown)}")


def _resolve_goal_setup(catalog, goal, end_term, config, pruners, cache):
    """Prefix-side goal/pruner plumbing plus the worker-shippable forms.

    Returns ``(ship_goal, run_goal, prefix_pruners, pruner_classes,
    time_pruner, transpositions)``: the unwrapped goal for pickling, the
    (possibly cache-wrapped) goal the prefix runs with, the instantiated
    pruner stack, and the class tuple workers rebuild it from.
    """
    ship_goal = goal.inner if isinstance(goal, CachedGoal) else goal
    run_goal = cache.wrap_goal(goal) if cache is not None else goal
    if pruners is None:
        context = PruningContext(
            catalog=catalog, goal=run_goal, end_term=end_term, config=config, cache=cache
        )
        prefix_pruners = default_pruners(context)
        pruner_classes: Optional[tuple] = None
    elif not pruners:
        prefix_pruners = []
        pruner_classes = ()
    else:
        prefix_pruners = list(pruners)
        pruner_classes = tuple(type(p) for p in prefix_pruners)
    time_pruner = next(
        (p for p in prefix_pruners if isinstance(p, TimeBasedPruner)), None
    )
    transpositions = (
        cache.transposition_view(run_goal, end_term, config, prefix_pruners)
        if cache is not None and prefix_pruners
        else None
    )
    return ship_goal, run_goal, prefix_pruners, pruner_classes, time_pruner, transpositions


def _run_shards(
    context: ShardContext,
    tasks: Sequence[tuple],
    workers: int,
    on_result,
) -> List[Optional[Dict[str, Any]]]:
    """Execute shards (inline or pooled) and fold results as they finish.

    ``on_result`` sees payloads in *completion* order — it must only do
    commutative folding (stats sums, budget ticks, metrics).  The
    returned list is indexed by shard id, which is what order-sensitive
    merging keys on.  The pool is always shut down with
    ``cancel_futures=True`` so a budget abort raised by ``on_result``
    leaves no worker running.
    """
    results: List[Optional[Dict[str, Any]]] = [None] * len(tasks)
    if not tasks:
        return results
    if workers <= 1 or len(tasks) == 1:
        for task in tasks:
            payload = execute_shard(context, task)
            results[task[0]] = payload
            on_result(payload)
        return results
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        mp_context = None
    executor = ProcessPoolExecutor(
        max_workers=min(workers, len(tasks)),
        mp_context=mp_context,
        initializer=_initialize_worker,
        initargs=(context,),
    )
    try:
        futures = {executor.submit(_run_shard, task): task[0] for task in tasks}
        for future in as_completed(futures):
            payload = future.result()
            results[futures[future]] = payload
            on_result(payload)
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
    return results


def _absorb_shard_observability(obs, mode: str, split_depth: int, payload) -> None:
    """Per-shard spans, ``repro_shard_*`` metrics, cache counters, progress."""
    seconds = payload.get("seconds", 0.0)
    stats = payload.get("stats")
    metrics = obs.metrics
    if metrics is not None:
        metrics.counter("repro_shard_runs_total", "parallel shards completed").inc()
        if stats is not None:
            metrics.counter(
                "repro_shard_nodes_total", "nodes explored inside parallel shards"
            ).inc(stats.nodes_created)
        metrics.counter(
            "repro_shard_seconds_total", "wall seconds spent inside parallel shards"
        ).inc(seconds)
        counters = payload.get("cache_counters")
        if counters:
            for layer, counts in counters.items():
                labels = {"layer": layer}
                metrics.counter(
                    "repro_cache_hits_total", "cache lookups served from memory", labels
                ).inc(counts["hits"])
                metrics.counter(
                    "repro_cache_misses_total", "cache lookups that had to compute", labels
                ).inc(counts["misses"])
                metrics.counter(
                    "repro_cache_evictions_total",
                    "cache entries dropped by the LRU bound",
                    labels,
                ).inc(counts["evictions"])
    if obs.tracer.enabled:
        with obs.tracer.span(
            "shard", shard=payload.get("shard"), seconds=round(seconds, 6)
        ):
            pass
    progress = obs.progress
    if progress is not None and stats is not None:
        terminal_total = sum(stats.terminals.values())
        if mode == "goal":
            emitted = stats.terminals.get("goal", 0)
        elif mode == "deadline":
            emitted = stats.terminals.get("deadline", 0) + stats.terminals.get(
                "dead_end", 0
            )
        else:  # ranked
            emitted = len(payload.get("costs") or ())
        progress.absorb_counts(
            split_depth,
            expanded=max(0, stats.nodes_created - terminal_total),
            children=stats.edges_created,
            pruned=stats.terminals.get("pruned", 0),
            terminals={k: v for k, v in stats.terminals.items() if k != "pruned"},
            emitted=emitted,
        )


def _fold_shard(
    payload,
    stats,
    pruning_stats,
    config,
    obs,
    mode: str,
    split_depth: int,
    enforce_total_nodes: bool,
) -> None:
    """Commutative per-shard folding (safe in completion order)."""
    progress = obs.progress
    budget = obs.budget
    error = payload.get("error")
    if error is not None:
        raise budget_exceeded(
            error["kind"], error["limit"], error["observed"],
            stats=stats, progress=progress, budget=budget,
        )
    shard_stats = payload.get("stats")
    if shard_stats is not None:
        stats.merge(shard_stats)
        # The seed status is counted twice: once by the prefix (as a
        # created child) and once by the worker (as its root node).
        stats.nodes_created -= 1
        shard_pruning = payload.get("pruning_stats")
        if shard_pruning is not None and pruning_stats is not None:
            pruning_stats.merge(shard_pruning)
    if budget is not None:
        budget.tick(stats, progress)
    if (
        enforce_total_nodes
        and config.max_nodes is not None
        and stats.nodes_created > config.max_nodes
    ):
        # Tree-mode equivalence: the serial run succeeds iff the finished
        # tree fits max_nodes, so re-checking the merged total preserves
        # the success/failure outcome (only the abort timing differs).
        raise budget_exceeded(
            "nodes", config.max_nodes, stats.nodes_created,
            stats=stats, progress=progress, budget=budget,
        )
    _absorb_shard_observability(obs, mode, split_depth, payload)


# -- tree modes (goal-driven / deadline-driven) -------------------------------


def _parallel_tree(
    mode: str,
    run_name: str,
    catalog: Catalog,
    start_term: Term,
    goal: Optional[Goal],
    end_term: Term,
    completed: AbstractSet[str],
    config: Optional[ExplorationConfig],
    pruners,
    obs: Optional[Observability],
    cache,
    workers: Optional[int],
    split_depth: Optional[int],
):
    config = config or ExplorationConfig()
    workers = resolve_workers(workers)
    _check_inputs(catalog, start_term, end_term, completed)
    horizon = int(end_term - start_term)
    split = resolve_split_depth(split_depth, horizon)
    wall_started = time.perf_counter()

    ship_goal = run_goal = None
    prefix_pruners: List = []
    pruner_classes: Optional[tuple] = ()
    time_pruner = None
    transpositions = None
    if mode == "goal":
        (
            ship_goal,
            run_goal,
            prefix_pruners,
            pruner_classes,
            time_pruner,
            transpositions,
        ) = _resolve_goal_setup(catalog, goal, end_term, config, pruners, cache)

    if obs is None:
        obs = NULL_OBSERVABILITY
    recorder = obs.decisions if mode == "goal" else None
    progress = obs.progress
    budget = obs.budget
    if progress is not None:
        progress.begin_run(run_name, horizon=horizon)
    if budget is not None:
        budget.arm()

    with obs.run(
        run_name,
        start=str(start_term),
        end=str(end_term),
        workers=workers,
        split_depth=split,
    ):
        plan = walk_tree_prefix(
            mode,
            catalog,
            start_term,
            run_goal,
            end_term,
            completed,
            config,
            prefix_pruners,
            time_pruner,
            transpositions,
            split,
            obs,
            cache,
            collect_events=recorder is not None,
        )
        tasks = []
        for index, seed_id in enumerate(plan.seed_ids):
            seed_status = plan.graph.status(seed_id)
            tasks.append((index, seed_status.term, seed_status.completed))
        context = ShardContext(
            mode=mode,
            catalog=catalog,
            goal=ship_goal,
            start_term=start_term,
            end_term=end_term,
            config=config,
            pruner_classes=pruner_classes,
            want_events=recorder is not None,
            flow_entries=(
                cache.flow_snapshot(FLOW_SNAPSHOT_LIMIT)
                if cache is not None and mode == "goal"
                else None
            ),
            use_cache=cache is not None,
        )

        def on_result(payload):
            _fold_shard(
                payload, plan.stats, plan.pruning_stats, config, obs,
                mode, split, enforce_total_nodes=True,
            )

        payloads = _run_shards(context, tasks, workers, on_result)
        graph = merge_tree_results(plan, payloads, recorder)

    stats = plan.stats
    stats.elapsed_seconds = time.perf_counter() - wall_started
    obs.record_run_stats(run_name, stats)
    if mode == "goal":
        return GoalDrivenResult(
            graph=graph, stats=stats, pruning_stats=plan.pruning_stats
        )
    return DeadlineResult(graph=graph, stats=stats)


def parallel_goal_driven(
    catalog: Catalog,
    start_term: Term,
    goal: Goal,
    end_term: Term,
    completed: AbstractSet[str] = frozenset(),
    config: Optional[ExplorationConfig] = None,
    pruners=None,
    obs: Optional[Observability] = None,
    cache=None,
    workers: Optional[int] = 0,
    split_depth: Optional[int] = None,
) -> GoalDrivenResult:
    """Process-sharded :func:`~repro.core.goal_driven.generate_goal_driven`.

    Output-identical to the serial generator — graph node ids, path
    order, stats counters, pruning stats, and decision-event streams all
    match byte for byte; ``stats.elapsed_seconds`` reports this run's
    wall time.  ``workers=0`` picks an automatic pool size;
    ``split_depth=None`` picks the frontier level to shard at.
    """
    return _parallel_tree(
        "goal", "goal_driven", catalog, start_term, goal, end_term,
        completed, config, pruners, obs, cache, workers, split_depth,
    )


def parallel_deadline_driven(
    catalog: Catalog,
    start_term: Term,
    end_term: Term,
    completed: AbstractSet[str] = frozenset(),
    config: Optional[ExplorationConfig] = None,
    obs: Optional[Observability] = None,
    cache=None,
    workers: Optional[int] = 0,
    split_depth: Optional[int] = None,
) -> DeadlineResult:
    """Process-sharded :func:`~repro.core.deadline.generate_deadline_driven`.

    Output-identical to the serial Algorithm 1 run (see
    :func:`parallel_goal_driven` for the guarantee's shape).
    """
    return _parallel_tree(
        "deadline", "deadline", catalog, start_term, None, end_term,
        completed, config, None, obs, cache, workers, split_depth,
    )


# -- ranked (top-k) -----------------------------------------------------------


def parallel_ranked(
    catalog: Catalog,
    start_term: Term,
    goal: Goal,
    end_term: Term,
    k: int,
    ranking: RankingFunction,
    completed: AbstractSet[str] = frozenset(),
    config: Optional[ExplorationConfig] = None,
    pruners=None,
    obs: Optional[Observability] = None,
    cache=None,
    workers: Optional[int] = 0,
    split_depth: Optional[int] = None,
) -> RankedResult:
    """Process-sharded :func:`~repro.core.ranked.generate_ranked`.

    Each worker runs the serial best-first search re-rooted at one seed
    (with ``initial_cost`` carrying the seed's absolute cost, so float
    sums stay bit-identical); per-seed top-k lists are merged with the
    prefix's early goal hits into the global top-k.  The returned *cost*
    list equals the serial one exactly; at equal costs the path order
    may differ (the serial heap breaks ties by insertion order, which
    sharding cannot reproduce).  Stats are approximate — the prefix is
    exhaustive where serial best-first stops early — and decision
    recording is unsupported (raises :class:`~repro.errors.ExplorationError`).
    """
    config = config or ExplorationConfig()
    workers = resolve_workers(workers)
    if k < 1:
        raise ExplorationError(f"k must be >= 1, got {k}")
    _check_inputs(catalog, start_term, end_term, completed)
    if obs is not None and obs.decisions is not None:
        raise ExplorationError(
            "ranked exploration cannot record decision events with workers; "
            "run it serially (no --workers) for --explain"
        )
    horizon = int(end_term - start_term)
    split = resolve_split_depth(split_depth, horizon)
    wall_started = time.perf_counter()

    (
        ship_goal,
        run_goal,
        prefix_pruners,
        pruner_classes,
        time_pruner,
        transpositions,
    ) = _resolve_goal_setup(catalog, goal, end_term, config, pruners, cache)

    if obs is None:
        obs = NULL_OBSERVABILITY
    progress = obs.progress
    budget = obs.budget
    if progress is not None:
        progress.begin_run("ranked", horizon=horizon)
    if budget is not None:
        budget.arm()

    with obs.run(
        "ranked",
        start=str(start_term),
        end=str(end_term),
        k=k,
        workers=workers,
        split_depth=split,
    ):
        prefix = walk_ranked_prefix(
            catalog, start_term, run_goal, end_term, ranking, completed,
            config, prefix_pruners, time_pruner, transpositions, split, obs, cache,
        )
        tasks = [
            (index, seed.status.term, seed.status.completed, seed.cost)
            for index, seed in enumerate(prefix.seeds)
        ]
        context = ShardContext(
            mode="ranked",
            catalog=catalog,
            goal=ship_goal,
            start_term=start_term,
            end_term=end_term,
            config=config,
            pruner_classes=pruner_classes,
            flow_entries=(
                cache.flow_snapshot(FLOW_SNAPSHOT_LIMIT) if cache is not None else None
            ),
            use_cache=cache is not None,
            ranking=ranking,
            k=k,
        )

        def on_result(payload):
            _fold_shard(
                payload, prefix.stats, prefix.pruning_stats, config, obs,
                "ranked", split, enforce_total_nodes=False,
            )

        payloads = _run_shards(context, tasks, workers, on_result)

        # Global top-k: prefix candidates (group 0, discovery order) and
        # per-shard rankings (group = shard index + 1, already cost-sorted)
        # merged by (cost, group, rank).  Correct because every goal path
        # crosses exactly one seed — a path outside its seed's top-k has
        # >= k cheaper paths through that same seed, so it cannot be in
        # the global top-k either.
        merged = []
        for index, (cost, statuses, selections) in enumerate(prefix.candidates):
            merged.append(
                (cost, 0, index, LearningPath(list(statuses), list(selections)))
            )
        for shard_index, payload in enumerate(payloads):
            seed = prefix.seeds[shard_index]
            for rank, (cost, path) in enumerate(
                zip(payload["costs"], payload["paths"])
            ):
                stitched = LearningPath(
                    list(seed.statuses[:-1]) + list(path.statuses),
                    list(seed.selections) + list(path.selections),
                )
                merged.append((cost, shard_index + 1, rank, stitched))
        merged.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        top = merged[:k]

    stats = prefix.stats
    stats.elapsed_seconds = time.perf_counter() - wall_started
    obs.record_run_stats("ranked", stats)
    return RankedResult(
        paths=[entry[3] for entry in top],
        costs=[entry[0] for entry in top],
        ranking=ranking,
        stats=stats,
        pruning_stats=prefix.pruning_stats,
        exhausted=len(top) < k,
    )


# -- frontier counting --------------------------------------------------------


def _merge_frontier_counts(
    prefix: FrontierCount,
    shard_counts: Sequence[FrontierCount],
    goal_mode: bool,
    count_dead_ends: bool,
) -> FrontierCount:
    terminal_counts = dict(prefix.terminal_path_counts)
    pruning = prefix.pruning_stats
    widths = list(prefix.layer_widths)
    base = len(widths)
    for count in shard_counts:
        for kind, value in count.terminal_path_counts.items():
            terminal_counts[kind] = terminal_counts.get(kind, 0) + value
        if pruning is not None and count.pruning_stats is not None:
            pruning.merge(count.pruning_stats)
        # widths[0] of every shard is its chunk of the split layer, which
        # the prefix already counted as its last width.
        for offset, width in enumerate(count.layer_widths[1:]):
            index = base + offset
            if index < len(widths):
                widths[index] += width
            else:
                widths.append(width)
    if goal_mode:
        path_count = terminal_counts.get("goal", 0)
    else:
        path_count = terminal_counts.get("deadline", 0) + (
            terminal_counts.get("dead_end", 0) if count_dead_ends else 0
        )
    return FrontierCount(
        path_count=path_count,
        peak_frontier=max(widths) if widths else 0,
        total_states=sum(widths),
        elapsed_seconds=0.0,
        pruning_stats=pruning,
        layer_widths=widths,
        terminal_path_counts=terminal_counts,
        remaining_frontier=None,
    )


def _parallel_frontier(
    goal_mode: bool,
    catalog: Catalog,
    start_term: Term,
    goal: Optional[Goal],
    end_term: Term,
    completed: AbstractSet[str],
    config: Optional[ExplorationConfig],
    pruners,
    max_frontier: Optional[int],
    obs: Optional[Observability],
    cache,
    workers: Optional[int],
    split_depth: Optional[int],
    count_dead_ends: bool,
) -> FrontierCount:
    config = config or ExplorationConfig()
    workers = resolve_workers(workers)
    _check_inputs(catalog, start_term, end_term, completed)
    if obs is not None and obs.decisions is not None:
        raise ExplorationError(
            "frontier counting cannot record decision events with workers; "
            "run it serially (no --workers) for --explain"
        )
    horizon = int(end_term - start_term)
    split = resolve_split_depth(split_depth, horizon)
    wall_started = time.perf_counter()
    run_name = "frontier_goal" if goal_mode else "frontier_deadline"

    ship_goal = run_goal = None
    prefix_pruners: List = []
    pruner_classes: Optional[tuple] = ()
    time_pruner = None
    if goal_mode:
        (
            ship_goal,
            run_goal,
            prefix_pruners,
            pruner_classes,
            time_pruner,
            _transpositions,
        ) = _resolve_goal_setup(catalog, goal, end_term, config, pruners, cache)

    if obs is None:
        obs = NULL_OBSERVABILITY
    progress = obs.progress
    budget = obs.budget
    if progress is not None:
        progress.begin_run(run_name, horizon=horizon)
    if budget is not None:
        budget.arm()

    with obs.run(
        run_name,
        start=str(start_term),
        end=str(end_term),
        workers=workers,
        split_depth=split,
    ):
        # The prefix DP gets a derived bundle sharing the tracer/metrics
        # backends but not progress (the engine owns begin/finish) nor the
        # budget (which is ticked here and per shard instead).
        derived = Observability(
            tracer=obs.tracer if obs.tracer.enabled else None, metrics=obs.metrics
        )
        prefix = _run_frontier(
            catalog,
            start_term,
            end_term,
            completed,
            config,
            run_goal,
            prefix_pruners,
            time_pruner,
            count_dead_ends=count_dead_ends,
            max_frontier=max_frontier,
            obs=derived,
            cache=cache,
            stop_after_layers=split,
        )
        if progress is not None:
            # Coarse: frontier DP has no per-node telemetry, so only the
            # emitted-path figure is reported for the prefix layers.
            counts = prefix.terminal_path_counts
            progress.absorb_counts(
                0,
                emitted=counts.get("goal", 0) if goal_mode else 0,
            )
        remaining = prefix.remaining_frontier
        if remaining is None:
            result = prefix
        else:
            chunks = partition_frontier(remaining, workers)
            context = ShardContext(
                mode="frontier",
                catalog=catalog,
                goal=ship_goal,
                start_term=start_term + split,
                end_term=end_term,
                config=config,
                pruner_classes=pruner_classes,
                flow_entries=(
                    cache.flow_snapshot(FLOW_SNAPSHOT_LIMIT)
                    if cache is not None and goal_mode
                    else None
                ),
                use_cache=cache is not None,
                count_dead_ends=count_dead_ends,
                max_frontier=max_frontier,
            )

            def on_result(payload):
                error = payload.get("error")
                if error is not None:
                    raise budget_exceeded(
                        error["kind"], error["limit"], error["observed"],
                        progress=progress, budget=budget,
                    )
                if budget is not None:
                    budget.tick(None, progress)
                _absorb_shard_observability(obs, "frontier", split, payload)
                if progress is not None:
                    shard_counts = payload["count"].terminal_path_counts
                    progress.absorb_counts(
                        split,
                        emitted=shard_counts.get("goal", 0) if goal_mode else 0,
                    )

            payloads = _run_shards(
                context, list(enumerate(chunks)), workers, on_result
            )
            result = _merge_frontier_counts(
                prefix, [payload["count"] for payload in payloads],
                goal_mode, count_dead_ends,
            )

    result.elapsed_seconds = time.perf_counter() - wall_started
    return result


def parallel_count_goal_paths(
    catalog: Catalog,
    start_term: Term,
    goal: Goal,
    end_term: Term,
    completed: AbstractSet[str] = frozenset(),
    config: Optional[ExplorationConfig] = None,
    pruners=None,
    max_frontier: Optional[int] = None,
    obs: Optional[Observability] = None,
    cache=None,
    workers: Optional[int] = 0,
    split_depth: Optional[int] = None,
) -> FrontierCount:
    """Process-sharded :func:`~repro.core.frontier.frontier_count_goal_paths`.

    Path counts and terminal tallies are exact (the multiplicity DP is
    linear in the frontier, so any partition sums to the serial answer);
    layer widths, peak and total-state figures are upper bounds because
    duplicate states in different chunks cannot merge.
    """
    return _parallel_frontier(
        True, catalog, start_term, goal, end_term, completed, config,
        pruners, max_frontier, obs, cache, workers, split_depth,
        count_dead_ends=False,
    )


def parallel_count_deadline_paths(
    catalog: Catalog,
    start_term: Term,
    end_term: Term,
    completed: AbstractSet[str] = frozenset(),
    config: Optional[ExplorationConfig] = None,
    max_frontier: Optional[int] = None,
    obs: Optional[Observability] = None,
    cache=None,
    workers: Optional[int] = 0,
    split_depth: Optional[int] = None,
) -> FrontierCount:
    """Process-sharded
    :func:`~repro.core.frontier.frontier_count_deadline_paths`."""
    return _parallel_frontier(
        False, catalog, start_term, None, end_term, completed, config,
        None, max_frontier, obs, cache, workers, split_depth,
        count_dead_ends=True,
    )
