"""Process-sharded parallel exploration (``repro.parallel``).

Public surface: one ``parallel_*`` twin per serial entry point, plus the
worker-count resolver the CLI uses for ``--workers 0`` (auto).  The tree
modes are output-identical to their serial twins; ranked and frontier
counting match on the quantities that define their results (costs and
path sets; path counts and terminal tallies).  ``docs/parallel.md``
documents the sharding scheme and the equivalence argument.
"""

from .engine import (
    parallel_count_deadline_paths,
    parallel_count_goal_paths,
    parallel_deadline_driven,
    parallel_goal_driven,
    parallel_ranked,
    resolve_workers,
)
from .plan import resolve_split_depth

__all__ = [
    "parallel_count_deadline_paths",
    "parallel_count_goal_paths",
    "parallel_deadline_driven",
    "parallel_goal_driven",
    "parallel_ranked",
    "resolve_split_depth",
    "resolve_workers",
]
