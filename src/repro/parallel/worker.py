"""Worker-process protocol for the parallel exploration engine.

One :class:`ShardContext` is pickled into every worker at pool start-up
(via the executor's ``initializer``); each task is then a tiny tuple —
a shard index plus the seed's coordinates — so per-shard dispatch cost
stays flat no matter how large the catalog is.  Workers rebuild their
own :class:`~repro.cache.ExplorationCache` (optionally warm-started from
the parent's flow-memo snapshot), run the unmodified serial generator on
the subtree, and return a plain-dict payload the parent merges.

Nothing here mutates shared state: the only channel back to the parent
is the returned payload, which is what makes the deterministic merge
argument in ``docs/parallel.md`` go through.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Tuple

from ..cache import ExplorationCache
from ..errors import BudgetExceededError, ExplorationError
from ..obs.explain import DecisionRecorder
from ..obs.runtime import NULL_OBSERVABILITY, Observability
from ..core.deadline import generate_deadline_driven
from ..core.frontier import _run_frontier
from ..core.goal_driven import generate_goal_driven
from ..core.pruning import PruningContext, TimeBasedPruner, default_pruners
from ..core.ranked import generate_ranked

__all__ = ["ShardContext", "execute_shard"]


class ShardContext:
    """Everything a worker needs, pickled once per pool.

    ``goal`` must be the *unwrapped* goal (never a
    :class:`~repro.cache.memos.CachedGoal` — those hold the parent's memo
    and are not meant to cross processes); each worker wraps it against
    its own cache.  ``pruner_classes`` is ``None`` for the paper's
    default stack, an empty tuple for the unpruned baseline, or a tuple
    of pruner classes, each reconstructed in the worker as
    ``cls(pruning_context)`` — custom pruners ridden through the parallel
    engine must therefore be constructible from a context alone (the
    same convention :func:`~repro.core.pruning.default_pruners` follows).
    """

    __slots__ = (
        "mode",
        "catalog",
        "goal",
        "start_term",
        "end_term",
        "config",
        "pruner_classes",
        "want_events",
        "flow_entries",
        "use_cache",
        "ranking",
        "k",
        "count_dead_ends",
        "max_frontier",
    )

    def __init__(
        self,
        mode: str,
        catalog,
        goal,
        start_term,
        end_term,
        config,
        pruner_classes: Optional[Tuple[type, ...]] = None,
        want_events: bool = False,
        flow_entries=None,
        use_cache: bool = False,
        ranking=None,
        k: Optional[int] = None,
        count_dead_ends: bool = False,
        max_frontier: Optional[int] = None,
    ):
        self.mode = mode
        self.catalog = catalog
        self.goal = goal
        self.start_term = start_term
        self.end_term = end_term
        self.config = config
        self.pruner_classes = pruner_classes
        self.want_events = want_events
        self.flow_entries = flow_entries
        self.use_cache = use_cache
        self.ranking = ranking
        self.k = k
        self.count_dead_ends = count_dead_ends
        self.max_frontier = max_frontier


#: Per-process context, installed by the pool initializer so tasks stay small.
_CONTEXT: Optional[ShardContext] = None


def _initialize_worker(context: ShardContext) -> None:
    global _CONTEXT
    _CONTEXT = context


def _run_shard(task: Tuple) -> Dict[str, Any]:
    if _CONTEXT is None:  # pragma: no cover - pool misconfiguration
        raise RuntimeError("shard worker used before initialization")
    return execute_shard(_CONTEXT, task)


def _build_pruners(context: ShardContext, cache, goal):
    """The worker-side pruner stack (``None`` lets the generator default)."""
    if context.pruner_classes is None:
        return None
    if not context.pruner_classes:
        return []
    pruning_context = PruningContext(
        catalog=context.catalog,
        goal=goal,
        end_term=context.end_term,
        config=context.config,
        cache=cache,
    )
    return [cls(pruning_context) for cls in context.pruner_classes]


def execute_shard(context: ShardContext, task: Tuple) -> Dict[str, Any]:
    """Run one shard and return its result payload.

    A shard that trips its budget returns an ``error`` payload rather
    than raising, so pool teardown stays orderly and the parent decides
    how to surface the abort (with its own merged partial stats).
    """
    began = time.perf_counter()
    cache = None
    if context.use_cache:
        cache = ExplorationCache()
        if context.flow_entries:
            cache.preload_flow(context.flow_entries)
    payload: Dict[str, Any] = {"shard": task[0]}
    try:
        if context.mode == "goal":
            _index, term, completed = task
            obs = None
            recorder = None
            if context.want_events:
                recorder = DecisionRecorder(keep_events=True)
                obs = Observability(decisions=recorder)
            result = generate_goal_driven(
                context.catalog,
                term,
                context.goal,
                context.end_term,
                completed=completed,
                config=context.config,
                pruners=_build_pruners(
                    context, cache, cache.wrap_goal(context.goal) if cache else context.goal
                ),
                obs=obs,
                cache=cache,
            )
            payload.update(
                graph=result.graph,
                stats=result.stats,
                pruning_stats=result.pruning_stats,
                events=list(recorder.events) if recorder is not None else None,
            )
        elif context.mode == "deadline":
            _index, term, completed = task
            result = generate_deadline_driven(
                context.catalog,
                term,
                context.end_term,
                completed=completed,
                config=context.config,
                cache=cache,
            )
            payload.update(graph=result.graph, stats=result.stats)
        elif context.mode == "ranked":
            _index, term, completed, cost = task
            result = generate_ranked(
                context.catalog,
                term,
                context.goal,
                context.end_term,
                k=context.k,
                ranking=context.ranking,
                completed=completed,
                config=context.config,
                pruners=_build_pruners(
                    context, cache, cache.wrap_goal(context.goal) if cache else context.goal
                ),
                cache=cache,
                initial_cost=cost,
            )
            payload.update(
                paths=result.paths,
                costs=result.costs,
                stats=result.stats,
                pruning_stats=result.pruning_stats,
            )
        elif context.mode == "frontier":
            _index, chunk = task
            goal = context.goal
            if cache is not None and goal is not None:
                goal = cache.wrap_goal(goal)
            pruners = _build_pruners(context, cache, goal) if goal is not None else []
            if pruners is None:
                pruning_context = PruningContext(
                    catalog=context.catalog,
                    goal=goal,
                    end_term=context.end_term,
                    config=context.config,
                    cache=cache,
                )
                pruners = default_pruners(pruning_context)
            time_pruner = next(
                (p for p in pruners if isinstance(p, TimeBasedPruner)), None
            )
            count = _run_frontier(
                context.catalog,
                context.start_term,
                context.end_term,
                frozenset(),
                context.config,
                goal,
                pruners,
                time_pruner,
                count_dead_ends=context.count_dead_ends,
                max_frontier=context.max_frontier,
                obs=NULL_OBSERVABILITY,
                cache=cache,
                initial_frontier=chunk,
            )
            payload.update(count=count)
        else:
            raise ExplorationError(f"unknown shard mode {context.mode!r}")
    except BudgetExceededError as exc:
        return {
            "shard": task[0],
            "error": {"kind": exc.kind, "limit": exc.limit, "observed": exc.observed},
        }
    payload["seconds"] = time.perf_counter() - began
    payload["cache_counters"] = cache.counter_totals() if cache is not None else None
    return payload
