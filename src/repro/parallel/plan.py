"""Shard planning: serial prefix walks that stop at the split depth.

The parallel engine runs the first ``split_depth`` levels of the search
in-process, with exactly the serial algorithms' loop bodies, and defers
every surviving node at the split depth (a *seed*) to a worker process.
The walkers here are line-for-line mirrors of the serial generators with
two changes:

1. a popped node at ``depth >= split_depth`` is appended to the seed list
   instead of being processed (its goal/deadline/prune checks happen in
   the worker, whose loop body for the subtree root is identical to the
   serial body for that node);
2. decision events are *buffered* as ``(kind, kwargs)`` pairs keyed by
   node id rather than recorded, because event payloads depend on node
   ids and the combined tree is only renumbered into serial order after
   the shards return (:func:`repro.parallel.merge.merge_tree_results`
   replays the buffer then).

Seeds are collected in the serial pop order (LIFO stack discovery), so
shard indices are deterministic for a given query.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Any, Dict, FrozenSet, List, Optional, Tuple

from ..catalog import Catalog
from ..errors import ExplorationError
from ..graph import LearningGraph
from ..graph.status import EnrollmentStatus
from ..obs.live import budget_exceeded
from ..obs.runtime import Observability
from ..requirements import Goal
from ..semester import Term
from ..core.config import ExplorationConfig
from ..core.expansion import Expander
from ..core.goal_driven import _selection_floor
from ..core.pruning import (
    Pruner,
    PruningStats,
    TimeBasedPruner,
    examine_pruners,
    first_firing_pruner,
    suppressed_selection_count,
)
from ..core.ranking import RankingFunction
from ..core.stats import ExplorationStats

__all__ = [
    "PrefixPlan",
    "RankedPrefix",
    "RankedSeed",
    "partition_frontier",
    "resolve_split_depth",
    "walk_ranked_prefix",
    "walk_tree_prefix",
]

#: Buffered decision: ``(kind, kwargs)`` — the event-specific keyword
#: arguments the serial generator would have passed alongside the graph
#: context (strategy / verdicts / detail).
BufferedEvent = Tuple[str, Dict[str, Any]]


class PrefixPlan:
    """The in-process prefix of a sharded tree exploration."""

    __slots__ = ("graph", "seed_ids", "stats", "pruning_stats", "events")

    def __init__(
        self,
        graph: LearningGraph,
        seed_ids: List[int],
        stats: ExplorationStats,
        pruning_stats: PruningStats,
        events: Optional[Dict[int, List[BufferedEvent]]],
    ):
        self.graph = graph
        #: Prefix-graph node ids deferred to workers, in serial pop order.
        self.seed_ids = seed_ids
        self.stats = stats
        self.pruning_stats = pruning_stats
        #: node id -> buffered decisions, present only when collecting.
        self.events = events


class RankedSeed:
    """A best-first search node re-rooted in a worker process."""

    __slots__ = ("status", "cost", "statuses", "selections")

    def __init__(
        self,
        status: EnrollmentStatus,
        cost: float,
        statuses: Tuple[EnrollmentStatus, ...],
        selections: Tuple[FrozenSet[str], ...],
    ):
        self.status = status
        #: Absolute path cost accrued up to (and including the edge into)
        #: the seed; the worker resumes accumulation from here so its
        #: floating-point sums stay bit-identical to the serial run.
        self.cost = cost
        #: Root-to-seed statuses (seed last) — the prefix of every path
        #: the worker's results are stitched onto.
        self.statuses = statuses
        self.selections = selections


class RankedPrefix:
    """The in-process prefix of a sharded ranked (top-k) search."""

    __slots__ = ("candidates", "seeds", "stats", "pruning_stats")

    def __init__(
        self,
        candidates: List[Tuple[float, Tuple[EnrollmentStatus, ...], Tuple[FrozenSet[str], ...]]],
        seeds: List[RankedSeed],
        stats: ExplorationStats,
        pruning_stats: PruningStats,
    ):
        #: Goal paths that completed *above* the split depth, as
        #: ``(cost, statuses, selections)`` in discovery order.
        self.candidates = candidates
        self.seeds = seeds
        self.stats = stats
        self.pruning_stats = pruning_stats


def resolve_split_depth(split_depth: Optional[int], horizon: int) -> int:
    """Validate an explicit split depth or pick one from the horizon.

    The automatic choice is deliberately non-adaptive (no probing runs —
    output equivalence is easier to reason about when the plan depends
    only on the query): depth 2 gives enough seeds to occupy a small
    pool on every catalog tried so far, while depth 1 is forced when the
    horizon is a single term (there is nothing below depth 1 to shard).
    """
    if split_depth is None:
        return 1 if horizon <= 1 else 2
    split_depth = int(split_depth)
    if split_depth < 1:
        raise ExplorationError(f"split depth must be >= 1, got {split_depth}")
    return split_depth


def walk_tree_prefix(
    mode: str,
    catalog: Catalog,
    start_term: Term,
    goal: Optional[Goal],
    end_term: Term,
    completed: AbstractSet[str],
    config: ExplorationConfig,
    pruners: List[Pruner],
    time_pruner: Optional[TimeBasedPruner],
    transpositions,
    split_depth: int,
    obs: Observability,
    cache,
    collect_events: bool,
) -> PrefixPlan:
    """Serially explore depths ``0 .. split_depth - 1`` of a tree run.

    ``mode`` is ``"goal"`` (mirrors
    :func:`~repro.core.goal_driven.generate_goal_driven`) or
    ``"deadline"`` (mirrors
    :func:`~repro.core.deadline.generate_deadline_driven`).  The caller
    owns the run scope, ``begin_run``/``arm`` and the final timer value;
    this walker only accumulates counters for the nodes it processes.
    """
    stats = ExplorationStats()
    pruning_stats = PruningStats()
    stats.start_timer()
    expander = Expander(catalog, end_term, config, obs=obs, cache=cache)
    graph = LearningGraph(expander.initial_status(start_term, completed))
    stats.record_node()

    events: Optional[Dict[int, List[BufferedEvent]]] = {} if collect_events else None
    seed_ids: List[int] = []
    progress = obs.progress
    budget = obs.budget

    stack = [graph.root_id]
    while stack:
        node_id = stack.pop()
        status = graph.status(node_id)
        depth = int(status.term - start_term)
        if depth >= split_depth:
            # Deferred to a worker; the budget tick and every terminal
            # check for this node happen in the shard.
            seed_ids.append(node_id)
            continue
        if budget is not None:
            budget.tick(stats, progress)

        if mode == "goal":
            if goal.is_satisfied(status.completed):
                graph.mark_terminal(node_id, "goal")
                stats.record_terminal("goal")
                if progress is not None:
                    progress.record_terminal("goal", depth)
                    progress.record_emit()
                if events is not None:
                    events.setdefault(node_id, []).append(("goal", {}))
                continue
            if status.term >= end_term:
                graph.mark_terminal(node_id, "deadline")
                stats.record_terminal("deadline")
                if progress is not None:
                    progress.record_terminal("deadline", depth)
                if events is not None:
                    events.setdefault(node_id, []).append(("deadline", {}))
                continue
            if transpositions is not None:
                with obs.phase("prune"):
                    firing_name, verdict_dicts = transpositions.consult(
                        pruners, status, obs, want_verdicts=collect_events
                    )
            elif not collect_events:
                with obs.phase("prune"):
                    firing = first_firing_pruner(pruners, status, obs)
                firing_name = firing.name if firing is not None else None
                verdict_dicts = None
            else:
                with obs.phase("prune"):
                    firing, verdicts = examine_pruners(pruners, status, obs)
                firing_name = firing.name if firing is not None else None
                verdict_dicts = tuple(v.as_dict() for v in verdicts)
            if firing_name is not None:
                graph.mark_terminal(node_id, "pruned")
                stats.record_terminal("pruned")
                stats.record_prune(firing_name)
                pruning_stats.record(firing_name)
                if progress is not None:
                    progress.record_pruned(depth)
                if events is not None:
                    events.setdefault(node_id, []).append(
                        ("prune", {"strategy": firing_name, "verdicts": verdict_dicts})
                    )
                continue

            floor = _selection_floor(time_pruner, config, status)
            suppressed = suppressed_selection_count(len(status.options), floor)
            if suppressed:
                stats.record_prune("time", suppressed)
                pruning_stats.record("time", suppressed)
                if events is not None:
                    events.setdefault(node_id, []).append(
                        (
                            "suppressed",
                            {
                                "strategy": "time",
                                "detail": {
                                    "suppressed": suppressed,
                                    "floor": floor,
                                    "option_count": len(status.options),
                                },
                            },
                        )
                    )
        else:  # deadline mode
            if status.term >= end_term:
                graph.mark_terminal(node_id, "deadline")
                stats.record_terminal("deadline")
                if progress is not None:
                    progress.record_terminal("deadline", depth)
                    progress.record_emit()
                continue
            floor = 0

        expanded = False
        children = 0
        with obs.phase("expand"):
            for selection, child_status in expander.successors(
                status, required_minimum=floor
            ):
                if config.max_nodes is not None and graph.num_nodes >= config.max_nodes:
                    raise budget_exceeded(
                        "nodes", config.max_nodes, graph.num_nodes,
                        stats=stats, progress=progress, budget=budget,
                    )
                child_id = graph.add_child(node_id, selection, child_status)
                stats.record_node()
                stats.record_edge()
                stack.append(child_id)
                expanded = True
                children += 1
        if not expanded:
            graph.mark_terminal(node_id, "dead_end")
            stats.record_terminal("dead_end")
            if progress is not None:
                progress.record_terminal("dead_end", depth)
                if mode != "goal":
                    progress.record_emit()
            if events is not None:
                events.setdefault(node_id, []).append(("dead_end", {}))
        else:
            if progress is not None:
                progress.record_expanded(depth, children)
                progress.set_frontier(len(stack))
            if events is not None:
                events.setdefault(node_id, []).append(
                    ("expand", {"detail": {"children": children}})
                )

    stats.stop_timer()
    return PrefixPlan(graph, seed_ids, stats, pruning_stats, events)


def walk_ranked_prefix(
    catalog: Catalog,
    start_term: Term,
    goal: Goal,
    end_term: Term,
    ranking: RankingFunction,
    completed: AbstractSet[str],
    config: ExplorationConfig,
    pruners: List[Pruner],
    time_pruner: Optional[TimeBasedPruner],
    transpositions,
    split_depth: int,
    obs: Observability,
    cache,
) -> RankedPrefix:
    """Depth-first sweep of depths ``0 .. split_depth - 1`` for top-k runs.

    Unlike the serial best-first search this enumerates the *entire*
    shallow prefix (it cannot stop after k paths — a cheaper completion
    could live under any seed), collecting goal paths that finish early
    as candidates and every surviving split-depth node as a seed with its
    absolute path cost.  Prune/floor handling matches
    :func:`~repro.core.ranked.generate_ranked`; decision recording is
    unsupported (the engine rejects it before calling here).
    """
    stats = ExplorationStats()
    pruning_stats = PruningStats()
    stats.start_timer()
    expander = Expander(catalog, end_term, config, obs=obs, cache=cache)
    root_status = expander.initial_status(start_term, completed)
    stats.record_node()

    candidates: List[
        Tuple[float, Tuple[EnrollmentStatus, ...], Tuple[FrozenSet[str], ...]]
    ] = []
    seeds: List[RankedSeed] = []
    generated = 1
    progress = obs.progress
    budget = obs.budget

    with obs.phase("rank"):
        root_bound = ranking.remaining_cost_bound(root_status, goal, config)
    stack: List[
        Tuple[EnrollmentStatus, float, Tuple[EnrollmentStatus, ...], Tuple[FrozenSet[str], ...]]
    ] = []
    if not math.isinf(root_bound):
        stack.append((root_status, 0.0, (root_status,), ()))

    while stack:
        status, cost, statuses, selections = stack.pop()
        depth = int(status.term - start_term)
        if depth >= split_depth:
            seeds.append(RankedSeed(status, cost, statuses, selections))
            continue
        if budget is not None:
            budget.tick(stats, progress)

        if goal.is_satisfied(status.completed):
            candidates.append((cost, statuses, selections))
            stats.record_terminal("goal")
            if progress is not None:
                progress.record_terminal("goal", depth)
                progress.record_emit()
            continue
        if status.term >= end_term:
            stats.record_terminal("deadline")
            if progress is not None:
                progress.record_terminal("deadline", depth)
            continue
        if transpositions is not None:
            with obs.phase("prune"):
                firing_name, _verdicts = transpositions.consult(
                    pruners, status, obs, want_verdicts=False
                )
        else:
            with obs.phase("prune"):
                firing = first_firing_pruner(pruners, status, obs)
            firing_name = firing.name if firing is not None else None
        if firing_name is not None:
            stats.record_terminal("pruned")
            stats.record_prune(firing_name)
            pruning_stats.record(firing_name)
            if progress is not None:
                progress.record_pruned(depth)
            continue

        floor = _selection_floor(time_pruner, config, status)
        suppressed = suppressed_selection_count(len(status.options), floor)
        if suppressed:
            stats.record_prune("time", suppressed)
            pruning_stats.record("time", suppressed)
        expanded = False
        children = 0
        with obs.phase("expand"):
            for selection, child_status in expander.successors(
                status, required_minimum=floor
            ):
                with obs.phase("rank"):
                    edge_cost = ranking.edge_cost(selection, status.term)
                if edge_cost < 0:
                    raise ExplorationError(
                        f"ranking {ranking.name!r} produced a negative edge cost "
                        f"({edge_cost}) — best-first ordering would be unsound"
                    )
                if math.isinf(edge_cost):
                    continue
                with obs.phase("rank"):
                    bound = ranking.remaining_cost_bound(child_status, goal, config)
                if math.isinf(bound):
                    continue
                generated += 1
                if config.max_nodes is not None and generated > config.max_nodes:
                    raise budget_exceeded(
                        "nodes", config.max_nodes, generated,
                        stats=stats, progress=progress, budget=budget,
                    )
                stats.record_node()
                stats.record_edge()
                stack.append(
                    (
                        child_status,
                        cost + edge_cost,
                        statuses + (child_status,),
                        selections + (selection,),
                    )
                )
                expanded = True
                children += 1
        if not expanded:
            stats.record_terminal("dead_end")
            if progress is not None:
                progress.record_terminal("dead_end", depth)
        else:
            if progress is not None:
                progress.record_expanded(depth, children)
                progress.set_frontier(len(stack))

    stats.stop_timer()
    return RankedPrefix(candidates, seeds, stats, pruning_stats)


def partition_frontier(
    frontier: Dict[FrozenSet[str], int], shards: int
) -> List[Dict[FrozenSet[str], int]]:
    """Split a DP frontier layer into ``shards`` deterministic chunks.

    States are ordered by their sorted course ids and dealt round-robin,
    so chunk membership depends only on the layer's contents (never on
    dict iteration order).  Path counts are exact under any partition —
    the multiplicity-weighted DP is linear in the frontier — so the split
    only needs to be balanced, not meaningful.
    """
    shards = max(1, min(shards, len(frontier)))
    chunks: List[Dict[FrozenSet[str], int]] = [{} for _ in range(shards)]
    for index, state in enumerate(sorted(frontier, key=lambda s: tuple(sorted(s)))):
        chunks[index % shards][state] = frontier[state]
    return chunks
