"""CourseNavigator: interactive learning path exploration (reproduction).

A from-scratch Python implementation of *CourseNavigator* (Li,
Papaemmanouil, Koutrika; ExploreDB @ SIGMOD/PODS 2016): given a course
catalog with prerequisite conditions and class schedules, enumerate, prune,
and rank the *learning paths* — per-semester course selections — that meet
a student's educational goal.

Quickstart::

    from repro import CourseNavigator, Term
    from repro.data import brandeis_catalog, brandeis_major_goal

    nav = CourseNavigator(brandeis_catalog())
    top = nav.explore_ranked(
        start_term=Term(2013, "Fall"),
        goal=brandeis_major_goal(),
        end_term=Term(2015, "Fall"),
        k=5,
        ranking="time",
    )
    for cost, path in top.ranked():
        print(cost, path)

Package map (details in DESIGN.md):

- :mod:`repro.semester` — terms and academic calendars
- :mod:`repro.catalog` — courses, prerequisite expressions, schedules
- :mod:`repro.parsing` — registrar-text parsers and catalog JSON I/O
- :mod:`repro.requirements` — goals and the max-flow ``left_i`` substrate
- :mod:`repro.graph` — learning graphs (tree + merged DAG), paths, export
- :mod:`repro.core` — deadline-driven / goal-driven / ranked generation
- :mod:`repro.data` — the synthetic evaluation dataset and generators
- :mod:`repro.system` — the CourseNavigator façade, visualizer, CLI
- :mod:`repro.analysis` — containment checks and path statistics
- :mod:`repro.obs` — span tracing, metrics registry, phase profiling
- :mod:`repro.cache` — flow/eval memos, transposition tables, cache store
"""

from .semester import AcademicCalendar, SPRING_FALL, Term, term_range
from .errors import (
    BudgetExceededError,
    CatalogError,
    CourseNavigatorError,
    ExplorationError,
    GoalError,
    ParseError,
)
from .catalog import (
    Catalog,
    Course,
    DeterministicOfferings,
    HistoricalOfferingModel,
    OfferingModel,
    Schedule,
)
from .requirements import (
    AllOfGoal,
    AnyOfGoal,
    CourseSetGoal,
    DegreeGoal,
    ExpressionGoal,
    Goal,
    RequirementGroup,
)
from .graph import EnrollmentStatus, LearningGraph, LearningPath, MergedStatusDag
from .core import (
    ExplorationConfig,
    RankedResult,
    RankingFunction,
    ReliabilityRanking,
    TimeRanking,
    WorkloadRanking,
    count_deadline_paths,
    count_goal_paths,
    generate_deadline_driven,
    generate_goal_driven,
    generate_ranked,
)
from .obs import (
    DecisionEvent,
    DecisionRecorder,
    ExplainReport,
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    Observability,
    Tracer,
)
from .cache import CacheStore, ExplorationCache
from .system import CourseNavigator

__version__ = "1.0.0"

__all__ = [
    # time
    "Term",
    "AcademicCalendar",
    "SPRING_FALL",
    "term_range",
    # errors
    "CourseNavigatorError",
    "CatalogError",
    "ParseError",
    "GoalError",
    "ExplorationError",
    "BudgetExceededError",
    # catalog
    "Course",
    "Catalog",
    "Schedule",
    "OfferingModel",
    "DeterministicOfferings",
    "HistoricalOfferingModel",
    # goals
    "Goal",
    "CourseSetGoal",
    "ExpressionGoal",
    "RequirementGroup",
    "DegreeGoal",
    "AllOfGoal",
    "AnyOfGoal",
    # graph
    "EnrollmentStatus",
    "LearningPath",
    "LearningGraph",
    "MergedStatusDag",
    # core
    "ExplorationConfig",
    "generate_deadline_driven",
    "generate_goal_driven",
    "generate_ranked",
    "count_deadline_paths",
    "count_goal_paths",
    "RankingFunction",
    "TimeRanking",
    "WorkloadRanking",
    "ReliabilityRanking",
    "RankedResult",
    # observability
    "Tracer",
    "InMemorySink",
    "JsonlSink",
    "MetricsRegistry",
    "Observability",
    "DecisionEvent",
    "DecisionRecorder",
    "ExplainReport",
    # caching
    "ExplorationCache",
    "CacheStore",
    # system
    "CourseNavigator",
    "__version__",
]
