"""Live exploration telemetry: progress, ETA, budgets, watchdog.

The spans/metrics/EXPLAIN layers all report *after* a run finishes.  This
module is the online half: a :class:`ProgressTracker` the generators feed
incrementally while they walk the learning graph, an optimistic ETA
derived from the branching observed so far, and an
:class:`ExplorationBudget` that bounds wall time, node count, and memory —
raising :class:`~repro.errors.BudgetExceededError` *with the final
progress snapshot attached* so a serving layer can report how far a
reaped run got.

Threading model
---------------

The tracker is **single-writer, many-reader**: exactly one exploration
thread records into it, while any number of other threads (a scrape
handler, a progress printer, a watchdog) call :meth:`ProgressTracker.snapshot`
concurrently.  All mutation and snapshot assembly happen under one lock,
so snapshots are internally consistent and counters never appear to move
backwards.

ETA semantics (and why it is "optimistic")
------------------------------------------

The tracker predicts the total search-space size by extrapolating the
*observed* per-depth branching factor over the remaining semesters,
tightened by the observed prune/terminal rates at each depth.  Early in a
run the observed branching comes from the first few expansions only, and
exhaustive generators expand the cheapest subtrees first, so the estimate
is a lower bound more often than not — treat the ETA as "no sooner than",
not as a promise.  Once every depth has real observations the estimate
converges on the truth.
"""

from __future__ import annotations

import sys
import threading
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TextIO

from ..errors import BudgetExceededError, RunCancelledError

__all__ = [
    "ProgressSnapshot",
    "ProgressTracker",
    "ExplorationBudget",
    "Watchdog",
    "ProgressPrinter",
    "PROGRESS_GAUGE_PREFIX",
    "budget_exceeded",
]


def budget_exceeded(
    kind: str,
    limit: float,
    observed: float,
    stats=None,
    progress: Optional["ProgressTracker"] = None,
    budget: Optional["ExplorationBudget"] = None,
) -> BudgetExceededError:
    """Assemble a :class:`~repro.errors.BudgetExceededError` with telemetry.

    Stops the stats timer (so ``partial_stats`` reports real elapsed time)
    and attaches the tracker's final snapshot when one is live.  The
    generators use this for their ``config.max_nodes`` abort sites so
    every budget failure — config-level or budget-level — carries the same
    payload.
    """
    if stats is not None:
        stats.stop_timer()
    return BudgetExceededError(
        kind,
        limit,
        observed,
        progress=progress.snapshot(budget=budget) if progress is not None else None,
        partial_stats=stats,
    )

#: Every gauge the tracker publishes starts with this prefix.
PROGRESS_GAUGE_PREFIX = "repro_progress"


def _process_memory_bytes() -> int:
    """Current process memory, cheaply.

    Prefers ``tracemalloc`` when it is already tracing (exact allocated
    bytes); otherwise falls back to peak RSS via :mod:`resource` (Linux
    reports KiB).  Returns 0 when neither source is available, so a
    memory budget degrades to "never fires" rather than crashing.
    """
    if tracemalloc.is_tracing():
        return tracemalloc.get_traced_memory()[0]
    try:
        import resource

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":  # macOS reports bytes, Linux KiB
            return int(rss)
        return int(rss) * 1024
    except Exception:  # pragma: no cover - platform without resource
        return 0


@dataclass(frozen=True)
class ProgressSnapshot:
    """One consistent point-in-time view of a running exploration.

    ``nodes_seen`` counts every node the generator finished deciding about
    (expanded + pruned + terminal); ``estimated_total_nodes``,
    ``progress_fraction``, and ``eta_seconds`` are ``None`` until the run
    has a horizon and at least one expansion to extrapolate from.
    """

    run: str
    generation: int
    elapsed_seconds: float
    horizon: Optional[int]
    depth: int
    nodes_seen: int
    nodes_expanded: int
    nodes_pruned: int
    terminals: Dict[str, int]
    paths_emitted: int
    frontier_size: int
    per_depth: Dict[int, Dict[str, int]]
    estimated_total_nodes: Optional[float] = None
    progress_fraction: Optional[float] = None
    eta_seconds: Optional[float] = None
    finished: bool = False
    cancelled: Optional[str] = None
    budget: Optional[Dict[str, Any]] = field(default=None)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (``/progress`` serves exactly this)."""
        return {
            "run": self.run,
            "generation": self.generation,
            "elapsed_seconds": self.elapsed_seconds,
            "horizon": self.horizon,
            "depth": self.depth,
            "nodes_seen": self.nodes_seen,
            "nodes_expanded": self.nodes_expanded,
            "nodes_pruned": self.nodes_pruned,
            "terminals": dict(self.terminals),
            "paths_emitted": self.paths_emitted,
            "frontier_size": self.frontier_size,
            "per_depth": {
                str(depth): dict(counts) for depth, counts in self.per_depth.items()
            },
            "estimated_total_nodes": self.estimated_total_nodes,
            "progress_fraction": self.progress_fraction,
            "eta_seconds": self.eta_seconds,
            "finished": self.finished,
            "cancelled": self.cancelled,
            "budget": self.budget,
        }

    def render_line(self) -> str:
        """A one-line TTY progress report."""
        parts = [
            f"[{self.run or 'idle'}]",
            f"{self.elapsed_seconds:6.1f}s",
            f"{self.nodes_seen} nodes",
            f"({self.nodes_expanded} expanded, {self.nodes_pruned} pruned)",
        ]
        if self.horizon is not None:
            parts.append(f"depth {self.depth}/{self.horizon}")
        if self.frontier_size:
            parts.append(f"frontier {self.frontier_size}")
        if self.paths_emitted:
            parts.append(f"paths {self.paths_emitted}")
        if self.progress_fraction is not None:
            parts.append(f"~{self.progress_fraction:.0%}")
        if self.eta_seconds is not None:
            parts.append(f"eta {self.eta_seconds:.0f}s")
        if self.finished:
            parts.append("done")
        if self.cancelled:
            parts.append(f"cancelled: {self.cancelled}")
        return " ".join(parts)


class ProgressTracker:
    """Incremental progress counters with thread-safe snapshots.

    The exploration thread calls the ``record_*`` mutators (one lock
    acquisition each — only paid when live telemetry is on); any thread
    may call :meth:`snapshot` or :meth:`publish_gauges` at any time.
    ``generation`` increments on every mutation, so readers can cheaply
    detect "did anything happen since my last look".
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._lock = threading.Lock()
        self._clock = clock
        self._reset_locked(run="", horizon=None)

    # -- run lifecycle -------------------------------------------------------

    def _reset_locked(self, run: str, horizon: Optional[int]) -> None:
        self._run = run
        self._horizon = horizon
        self._started_at = self._clock()
        self._generation = 0
        self._depth = 0
        self._nodes_expanded = 0
        self._nodes_pruned = 0
        self._terminals: Dict[str, int] = {}
        self._paths_emitted = 0
        self._frontier_size = 0
        self._expanded_by_depth: Dict[int, int] = {}
        self._children_by_depth: Dict[int, int] = {}
        self._pruned_by_depth: Dict[int, int] = {}
        self._terminal_by_depth: Dict[int, int] = {}
        self._finished = False
        self._cancelled: Optional[str] = None

    def begin_run(self, run: str, horizon: Optional[int] = None) -> None:
        """Reset all counters for a fresh run of ``run`` over ``horizon``
        semesters (``end - start``; ``None`` disables the ETA estimate)."""
        with self._lock:
            self._reset_locked(run=run, horizon=horizon)

    def finish_run(self) -> None:
        """Mark the current run complete (pins ``progress_fraction`` at 1)."""
        with self._lock:
            self._finished = True
            self._generation += 1

    def mark_cancelled(self, reason: str) -> None:
        """Record that the run was cancelled (shown in snapshots)."""
        with self._lock:
            self._cancelled = reason
            self._generation += 1

    # -- mutators (exploration thread only) ----------------------------------

    def record_expanded(self, depth: int, children: int) -> None:
        """One node at ``depth`` expanded into ``children`` successors."""
        with self._lock:
            self._nodes_expanded += 1
            self._expanded_by_depth[depth] = self._expanded_by_depth.get(depth, 0) + 1
            self._children_by_depth[depth] = (
                self._children_by_depth.get(depth, 0) + children
            )
            if depth > self._depth:
                self._depth = depth
            self._generation += 1

    def record_pruned(self, depth: int) -> None:
        """One node at ``depth`` cut by a pruning strategy."""
        with self._lock:
            self._nodes_pruned += 1
            self._pruned_by_depth[depth] = self._pruned_by_depth.get(depth, 0) + 1
            if depth > self._depth:
                self._depth = depth
            self._generation += 1

    def record_terminal(self, kind: str, depth: int) -> None:
        """One terminal node of ``kind`` at ``depth``."""
        with self._lock:
            self._terminals[kind] = self._terminals.get(kind, 0) + 1
            self._terminal_by_depth[depth] = self._terminal_by_depth.get(depth, 0) + 1
            if depth > self._depth:
                self._depth = depth
            self._generation += 1

    def record_emit(self, count: int = 1) -> None:
        """``count`` output paths emitted."""
        with self._lock:
            self._paths_emitted += count
            self._generation += 1

    def set_frontier(self, size: int) -> None:
        """Current frontier width (stack/heap/layer size)."""
        with self._lock:
            self._frontier_size = size
            self._generation += 1

    def absorb_counts(
        self,
        depth: int,
        expanded: int = 0,
        children: int = 0,
        pruned: int = 0,
        terminals: Optional[Dict[str, int]] = None,
        emitted: int = 0,
    ) -> None:
        """Bulk-merge a finished shard's counters in one lock acquisition.

        The parallel engine cannot stream a worker process's per-node
        mutations (they happen in another interpreter); when a shard's
        result arrives, its aggregate counts are folded in here instead —
        attributed to ``depth`` (the shard root's depth), which keeps the
        per-depth table coarse but the run totals exact.
        """
        terminals = terminals or {}
        with self._lock:
            if expanded:
                self._nodes_expanded += expanded
                self._expanded_by_depth[depth] = (
                    self._expanded_by_depth.get(depth, 0) + expanded
                )
            if children:
                self._children_by_depth[depth] = (
                    self._children_by_depth.get(depth, 0) + children
                )
            if pruned:
                self._nodes_pruned += pruned
                self._pruned_by_depth[depth] = (
                    self._pruned_by_depth.get(depth, 0) + pruned
                )
            total_terminals = 0
            for kind, count in terminals.items():
                self._terminals[kind] = self._terminals.get(kind, 0) + count
                total_terminals += count
            if total_terminals:
                self._terminal_by_depth[depth] = (
                    self._terminal_by_depth.get(depth, 0) + total_terminals
                )
            if emitted:
                self._paths_emitted += emitted
            if depth > self._depth:
                self._depth = depth
            self._generation += 1

    # -- readers (any thread) ------------------------------------------------

    @property
    def generation(self) -> int:
        """Mutation counter; strictly increases while the run records."""
        with self._lock:
            return self._generation

    @property
    def nodes_seen(self) -> int:
        """Nodes fully decided so far (expanded + pruned + terminal)."""
        with self._lock:
            return self._nodes_expanded + self._nodes_pruned + sum(
                self._terminals.values()
            )

    def snapshot(self, budget: Optional["ExplorationBudget"] = None) -> ProgressSnapshot:
        """A consistent snapshot; optionally embeds ``budget``'s state."""
        with self._lock:
            nodes_seen = (
                self._nodes_expanded + self._nodes_pruned + sum(self._terminals.values())
            )
            estimate = self._estimate_total_locked()
            elapsed = self._clock() - self._started_at
            fraction: Optional[float] = None
            eta: Optional[float] = None
            if self._finished:
                fraction = 1.0
                eta = 0.0
            elif estimate is not None and estimate > 0:
                fraction = min(1.0, nodes_seen / estimate)
                if fraction > 0:
                    eta = elapsed * (1.0 - fraction) / fraction
            per_depth: Dict[int, Dict[str, int]] = {}
            for source, key in (
                (self._expanded_by_depth, "expanded"),
                (self._pruned_by_depth, "pruned"),
                (self._terminal_by_depth, "terminal"),
                (self._children_by_depth, "children"),
            ):
                for depth, count in source.items():
                    per_depth.setdefault(depth, {})[key] = count
            return ProgressSnapshot(
                run=self._run,
                generation=self._generation,
                elapsed_seconds=elapsed,
                horizon=self._horizon,
                depth=self._depth,
                nodes_seen=nodes_seen,
                nodes_expanded=self._nodes_expanded,
                nodes_pruned=self._nodes_pruned,
                terminals=dict(self._terminals),
                paths_emitted=self._paths_emitted,
                frontier_size=self._frontier_size,
                per_depth=per_depth,
                estimated_total_nodes=estimate,
                progress_fraction=fraction,
                eta_seconds=eta,
                finished=self._finished,
                cancelled=self._cancelled,
                budget=budget.as_dict() if budget is not None else None,
            )

    def _estimate_total_locked(self) -> Optional[float]:
        """Optimistic search-space size: observed branching per depth,
        extrapolated over the remaining semesters and tightened by the
        observed prune/terminal rates (see the module docstring caveat)."""
        if self._horizon is None or not self._expanded_by_depth:
            return None
        last_branching = 1.0
        last_survival = 1.0
        layer = 1.0
        total = 1.0
        for depth in range(self._horizon):
            expanded = self._expanded_by_depth.get(depth, 0)
            if expanded:
                branching = self._children_by_depth.get(depth, 0) / expanded
                visited = (
                    expanded
                    + self._pruned_by_depth.get(depth, 0)
                    + self._terminal_by_depth.get(depth, 0)
                )
                survival = expanded / visited if visited else 1.0
                last_branching, last_survival = branching, survival
            else:
                # No observations at this depth yet: extrapolate the last
                # observed rates (this is where the optimism lives).
                branching, survival = last_branching, last_survival
            layer *= branching * survival
            if layer < 1.0:
                layer = 0.0
            total += layer
            if layer == 0.0:
                break
        return total

    def publish_gauges(self, registry) -> None:
        """Mirror the current snapshot into ``registry`` as gauges.

        Called by the exporter on every ``/metrics`` scrape and by
        :meth:`~repro.obs.runtime.Observability.record_run_stats` at the
        end of each run, so Prometheus sees live values mid-run and final
        values afterwards.
        """
        snap = self.snapshot()
        gauges = {
            "nodes_seen": snap.nodes_seen,
            "nodes_expanded": snap.nodes_expanded,
            "nodes_pruned": snap.nodes_pruned,
            "paths_emitted": snap.paths_emitted,
            "frontier_size": snap.frontier_size,
            "depth": snap.depth,
            "elapsed_seconds": snap.elapsed_seconds,
        }
        for suffix, value in gauges.items():
            registry.gauge(
                f"{PROGRESS_GAUGE_PREFIX}_{suffix}",
                "live exploration progress (see docs/observability.md)",
            ).set(value)
        if snap.progress_fraction is not None:
            registry.gauge(
                f"{PROGRESS_GAUGE_PREFIX}_fraction",
                "optimistic completed fraction of the current run",
            ).set(snap.progress_fraction)
        if snap.eta_seconds is not None:
            registry.gauge(
                f"{PROGRESS_GAUGE_PREFIX}_eta_seconds",
                "optimistic seconds remaining in the current run",
            ).set(snap.eta_seconds)


class ExplorationBudget:
    """Wall-clock / node-count / memory budgets + cooperative cancellation.

    The generators call :meth:`tick` once per node they finish deciding
    about.  Node-count and cancellation checks run on *every* tick (two
    attribute reads and an integer compare); wall-clock runs every tick
    too (one ``perf_counter``); the comparatively expensive memory probe
    runs once every ``check_interval`` ticks via a generation counter.

    On violation the budget raises
    :class:`~repro.errors.BudgetExceededError` carrying the tracker's
    final :class:`ProgressSnapshot` and the run's partial
    :class:`~repro.core.stats.ExplorationStats`, after stopping the stats
    timer — so the exception alone tells a supervisor what the run had
    achieved when it died.

    :meth:`cancel` may be called from **any** thread (a watchdog, a
    request handler); the exploration thread observes it on its next tick
    and raises :class:`~repro.errors.RunCancelledError`.
    """

    __slots__ = (
        "wall_seconds",
        "max_nodes",
        "max_memory_bytes",
        "check_interval",
        "_clock",
        "_armed_at",
        "_ticks",
        "_cancel_reason",
    )

    def __init__(
        self,
        wall_seconds: Optional[float] = None,
        max_nodes: Optional[int] = None,
        max_memory_bytes: Optional[int] = None,
        check_interval: int = 256,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if check_interval < 1:
            raise ValueError(f"check_interval must be >= 1, got {check_interval}")
        self.wall_seconds = wall_seconds
        self.max_nodes = max_nodes
        self.max_memory_bytes = max_memory_bytes
        self.check_interval = check_interval
        self._clock = clock
        self._armed_at: Optional[float] = None
        self._ticks = 0
        self._cancel_reason: Optional[str] = None

    # -- control (any thread) ------------------------------------------------

    def arm(self) -> "ExplorationBudget":
        """(Re)start the wall clock; generators call this at run start."""
        self._armed_at = self._clock()
        self._ticks = 0
        return self

    def cancel(self, reason: str = "cancelled") -> None:
        """Ask the exploration thread to stop at its next tick."""
        self._cancel_reason = reason

    @property
    def cancelled(self) -> Optional[str]:
        """The cancellation reason, or ``None``."""
        return self._cancel_reason

    @property
    def enabled(self) -> bool:
        """Whether any limit is configured (cancel works regardless)."""
        return (
            self.wall_seconds is not None
            or self.max_nodes is not None
            or self.max_memory_bytes is not None
        )

    def elapsed(self) -> float:
        """Seconds since :meth:`arm` (0 before arming)."""
        if self._armed_at is None:
            return 0.0
        return self._clock() - self._armed_at

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable budget state (embedded in snapshots)."""
        return {
            "wall_seconds": self.wall_seconds,
            "max_nodes": self.max_nodes,
            "max_memory_bytes": self.max_memory_bytes,
            "elapsed_seconds": self.elapsed(),
            "ticks": self._ticks,
            "cancelled": self._cancel_reason,
        }

    # -- the hot-path check (exploration thread) -----------------------------

    def tick(self, stats=None, progress: Optional[ProgressTracker] = None) -> None:
        """One node decided; raise if any budget is now exceeded.

        ``stats`` (an :class:`~repro.core.stats.ExplorationStats`) supplies
        the node count when available; otherwise the tick count itself —
        one tick per decided node — stands in.
        """
        self._ticks += 1
        if self._cancel_reason is not None:
            self._fail_cancelled(stats, progress)
        if self.max_nodes is not None:
            observed = stats.nodes_created if stats is not None else self._ticks
            if observed > self.max_nodes:
                self._fail("nodes", self.max_nodes, observed, stats, progress)
        if self.wall_seconds is not None and self._armed_at is not None:
            elapsed = self._clock() - self._armed_at
            if elapsed > self.wall_seconds:
                self._fail("wall seconds", self.wall_seconds, elapsed, stats, progress)
        if (
            self.max_memory_bytes is not None
            and self._ticks % self.check_interval == 0
        ):
            used = _process_memory_bytes()
            if used > self.max_memory_bytes:
                self._fail("memory bytes", self.max_memory_bytes, used, stats, progress)

    def check(self, stats=None, progress: Optional[ProgressTracker] = None) -> None:
        """An unconditional full check (memory included), tick-free."""
        if self._cancel_reason is not None:
            self._fail_cancelled(stats, progress)
        if self.max_nodes is not None and stats is not None:
            if stats.nodes_created > self.max_nodes:
                self._fail("nodes", self.max_nodes, stats.nodes_created, stats, progress)
        if self.wall_seconds is not None and self._armed_at is not None:
            elapsed = self._clock() - self._armed_at
            if elapsed > self.wall_seconds:
                self._fail("wall seconds", self.wall_seconds, elapsed, stats, progress)
        if self.max_memory_bytes is not None:
            used = _process_memory_bytes()
            if used > self.max_memory_bytes:
                self._fail("memory bytes", self.max_memory_bytes, used, stats, progress)

    # -- failure assembly ----------------------------------------------------

    def _final_snapshot(
        self, progress: Optional[ProgressTracker]
    ) -> Optional[ProgressSnapshot]:
        if progress is None:
            return None
        return progress.snapshot(budget=self)

    def _fail(self, kind, limit, observed, stats, progress) -> None:
        if stats is not None:
            stats.stop_timer()
        raise BudgetExceededError(
            kind,
            limit,
            observed,
            progress=self._final_snapshot(progress),
            partial_stats=stats,
        )

    def _fail_cancelled(self, stats, progress) -> None:
        reason = self._cancel_reason or "cancelled"
        if progress is not None:
            progress.mark_cancelled(reason)
        if stats is not None:
            stats.stop_timer()
        raise RunCancelledError(
            reason,
            progress=self._final_snapshot(progress),
            partial_stats=stats,
        )


class Watchdog:
    """A daemon timer that cancels a budget after ``timeout`` seconds.

    The in-loop wall budget already bounds a run from the inside; the
    watchdog is the *outside* bound — a supervisor arms one per request
    and the exploration dies at its next tick even if its own budget was
    configured too generously (or not at all).

        budget = ExplorationBudget()
        with Watchdog(budget, timeout=30.0):
            navigator.explore_goal(...)
    """

    def __init__(
        self,
        budget: ExplorationBudget,
        timeout: float,
        reason: Optional[str] = None,
    ):
        self.budget = budget
        self.timeout = timeout
        self.reason = reason or f"watchdog timeout after {timeout:g}s"
        self._timer = threading.Timer(timeout, budget.cancel, args=(self.reason,))
        self._timer.daemon = True

    def start(self) -> "Watchdog":
        """Arm the timer; returns self for chaining."""
        self._timer.start()
        return self

    def close(self) -> None:
        """Disarm the timer (a completed run no longer needs reaping)."""
        self._timer.cancel()

    def __enter__(self) -> "Watchdog":
        return self.start()

    def __exit__(self, exc_type, exc_val, exc_tb) -> bool:
        self.close()
        return False


class ProgressPrinter:
    """A daemon thread that writes the tracker's progress line periodically.

    On a TTY the line rewrites itself in place (``\\r``); on a plain
    stream (CI logs, files) each sample is its own line.  ``close()``
    writes one final line and joins the thread.
    """

    def __init__(
        self,
        tracker: ProgressTracker,
        stream: Optional[TextIO] = None,
        interval: float = 1.0,
    ):
        self.tracker = tracker
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-progress", daemon=True
        )
        self._isatty = bool(getattr(self.stream, "isatty", lambda: False)())

    def start(self) -> "ProgressPrinter":
        """Begin printing; returns self for chaining."""
        self._thread.start()
        return self

    def _write(self, line: str, final: bool = False) -> None:
        try:
            if self._isatty and not final:
                self.stream.write("\r\x1b[2K" + line)
            else:
                if self._isatty:
                    self.stream.write("\r\x1b[2K")
                self.stream.write(line + "\n")
            self.stream.flush()
        except ValueError:  # stream closed under us (interpreter teardown)
            self._stop.set()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._write(self.tracker.snapshot().render_line())

    def close(self) -> None:
        """Stop the thread and print one final line."""
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._write(self.tracker.snapshot().render_line(), final=True)

    def __enter__(self) -> "ProgressPrinter":
        return self.start()

    def __exit__(self, exc_type, exc_val, exc_tb) -> bool:
        self.close()
        return False
