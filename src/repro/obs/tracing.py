"""Span-based tracing for exploration runs.

A :class:`Tracer` hands out :class:`Span` context managers; entering a
span pushes it on the tracer's stack (so spans opened inside it become its
children), exiting records the monotonic end time and emits one record to
every attached sink.  Timing uses ``time.perf_counter`` shifted to the
tracer's creation instant, so span times are small non-negative floats
that order and subtract exactly.

Two sinks are provided: :class:`InMemorySink` (a list of records, for
tests and interactive inspection) and :class:`JsonlSink` (one JSON object
per line, for offline analysis — children appear *before* their parents
because records are emitted on span exit).

The disabled path is a first-class citizen: :data:`NULL_TRACER` answers
every ``span()`` call with one shared no-op span, so instrumented code
pays a couple of attribute lookups and **zero allocations** when tracing
is off.  A tracer's span stack is not thread-safe; use one tracer per
exploration thread.
"""

from __future__ import annotations

import itertools
import json
import time
from typing import Any, Dict, IO, Iterable, List, Optional, Union

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanSink",
    "InMemorySink",
    "JsonlSink",
    "Stopwatch",
]


class Stopwatch:
    """A reusable ``perf_counter`` stopwatch with context-manager sugar.

    ``elapsed`` accumulates across ``start``/``stop`` pairs, so one
    stopwatch can time several disjoint intervals; :meth:`read` peeks at
    the running total without stopping.
    """

    __slots__ = ("elapsed", "_started_at")

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._started_at: Optional[float] = None

    def start(self) -> "Stopwatch":
        """Begin (or resume) timing; returns self for chaining."""
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Fold the running interval into ``elapsed`` and return it."""
        if self._started_at is not None:
            self.elapsed += time.perf_counter() - self._started_at
            self._started_at = None
        return self.elapsed

    def read(self) -> float:
        """``elapsed`` including the still-running interval, if any."""
        if self._started_at is None:
            return self.elapsed
        return self.elapsed + time.perf_counter() - self._started_at

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently timing an interval."""
        return self._started_at is not None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, exc_type, exc_val, exc_tb) -> bool:
        self.stop()
        return False


class SpanSink:
    """Receives one record per finished span."""

    def emit(self, record: Dict[str, Any]) -> None:
        """Handle one span record (a JSON-serializable dict)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any resources (default: nothing)."""


class InMemorySink(SpanSink):
    """Collects span records in a list — the test/debug sink."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def emit(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """All records, or only those with the given span name."""
        if name is None:
            return list(self.records)
        return [r for r in self.records if r["name"] == name]

    def clear(self) -> None:
        """Drop everything collected so far."""
        self.records.clear()


class JsonlSink(SpanSink):
    """Writes one JSON object per line to a file — the offline sink.

    Accepts a path (opened and owned by the sink) or an already-open
    text-mode file object (left open on :meth:`close`).  Usable as a
    context manager.
    """

    def __init__(self, target: Union[str, "IO[str]"]) -> None:
        if isinstance(target, (str, bytes)) or hasattr(target, "__fspath__"):
            self._handle: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False

    def emit(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True, default=str))
        self._handle.write("\n")

    def close(self) -> None:
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> bool:
        self.close()
        return False


class Span:
    """One timed operation, nested under whatever span encloses it.

    Use as a context manager; ``start``/``end`` are seconds since the
    tracer's epoch (monotonic).  ``annotate`` attaches attributes at any
    point before exit.  If the body raises, the exception type is recorded
    under the ``error`` attribute and re-raised.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "depth",
        "attributes",
        "start",
        "end",
        "_tracer",
    )

    def __init__(self, tracer: "Tracer", name: str, span_id: int, attributes: Dict[str, Any]):
        self.name = name
        self.span_id = span_id
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.attributes = attributes
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self._tracer = tracer

    @property
    def duration_seconds(self) -> float:
        """Wall time between enter and exit (0.0 while still open)."""
        if self.start is None or self.end is None:
            return 0.0
        return self.end - self.start

    def annotate(self, **attributes: Any) -> "Span":
        """Attach attributes to the span; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def as_dict(self) -> Dict[str, Any]:
        """The JSON-serializable sink record for this span."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start": self.start,
            "end": self.end,
            "duration": self.duration_seconds,
            "attrs": dict(self.attributes),
        }

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = self._tracer._now()
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> bool:
        self.end = self._tracer._now()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False


class Tracer:
    """Hands out spans and routes finished records to sinks.

    Nesting comes from entry order: the span on top of the stack when a
    new span is entered becomes its parent.  One tracer may observe many
    runs; records carry monotonically increasing ``span_id`` values so
    offline tools can rebuild the forest.
    """

    enabled = True

    def __init__(self, sinks: Iterable[SpanSink] = ()):
        self._sinks: List[SpanSink] = list(sinks)
        self._stack: List[Span] = []
        self._ids = itertools.count(1)
        self._epoch = time.perf_counter()

    def add_sink(self, sink: SpanSink) -> None:
        """Attach another sink; it sees every span finished afterwards."""
        self._sinks.append(sink)

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span, parented on entry to the innermost open span."""
        return Span(self, name, next(self._ids), attributes)

    @property
    def current_span(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def close(self) -> None:
        """Close every sink (call once, after the last span exits)."""
        for sink in self._sinks:
            sink.close()

    # -- span plumbing -------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _push(self, span: Span) -> None:
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            span.parent_id = parent.span_id
        span.depth = len(self._stack)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits (a leaked span) rather than corrupt
        # the stack for every span that follows.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        record = span.as_dict()
        for sink in self._sinks:
            sink.emit(record)


class _NullSpan:
    """The shared do-nothing span the disabled path hands out."""

    __slots__ = ()

    name = ""
    duration_seconds = 0.0

    def annotate(self, **attributes: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """A tracer that never records: every ``span()`` is the same no-op."""

    enabled = False

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return NULL_SPAN

    def add_sink(self, sink: SpanSink) -> None:
        raise ValueError("NullTracer cannot carry sinks; build a Tracer instead")

    @property
    def current_span(self) -> None:
        return None

    def close(self) -> None:
        pass


#: Shared no-op tracer — the default everywhere a tracer is optional.
NULL_TRACER = NullTracer()
