"""Profiling hooks: per-phase time breakdown and peak-memory capture.

The engine charges wall time to named **phases** while it runs:

========================  ====================================================
``expand``                successor generation + node/edge insertion
``prune``                 the whole pruning-strategy consultation for a node
``prune:time``            the time-based bound alone (inside ``prune``)
``prune:availability``    the availability bound alone (inside ``prune``)
``flow``                  Ford–Fulkerson/Dinic ``left_i`` solves (inside
                          whatever phase asked for them)
``rank``                  edge-cost + admissible-bound evaluation (ranked runs)
``merge``                 frontier-layer state merging (frontier DP runs)
========================  ====================================================

Phase times are **inclusive** — ``prune`` contains its ``prune:*`` and any
``flow`` time spent inside it — so sub-phases explain their parent rather
than summing with it.  :class:`PhaseBreakdown` is the cheap accumulator
(one dict entry per phase); the same durations also feed a per-phase
histogram in the metrics registry when one is attached.

:func:`capture_peak_memory` wraps ``tracemalloc`` for optional per-run
peak-RSS-style accounting (allocation tracking costs 2-4x run time, so it
is opt-in and off by default).
"""

from __future__ import annotations

import tracemalloc
from typing import Dict, List, Optional, Tuple

__all__ = [
    "PhaseBreakdown",
    "MemoryProfile",
    "capture_peak_memory",
    "PHASE_METRIC_NAME",
]

#: Histogram family every phase duration is observed into (label ``phase``).
PHASE_METRIC_NAME = "repro_phase_duration_seconds"


class PhaseBreakdown:
    """Accumulated inclusive seconds + entry counts per phase name."""

    __slots__ = ("_seconds", "_counts")

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def add(self, phase: str, seconds: float, count: int = 1) -> None:
        """Charge ``seconds`` (and ``count`` entries) to ``phase``."""
        self._seconds[phase] = self._seconds.get(phase, 0.0) + seconds
        self._counts[phase] = self._counts.get(phase, 0) + count

    def seconds(self, phase: str) -> float:
        """Total inclusive seconds charged to ``phase``."""
        return self._seconds.get(phase, 0.0)

    def count(self, phase: str) -> int:
        """How many times ``phase`` was entered."""
        return self._counts.get(phase, 0)

    @property
    def phases(self) -> List[str]:
        """Phase names seen so far, most expensive first."""
        return sorted(self._seconds, key=self._seconds.get, reverse=True)

    def __bool__(self) -> bool:
        return bool(self._seconds)

    def merge(self, other: "PhaseBreakdown") -> "PhaseBreakdown":
        """Fold another breakdown into this one; returns self."""
        for phase, seconds in other._seconds.items():
            self.add(phase, seconds, other._counts.get(phase, 0))
        return self

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-serializable ``{phase: {seconds, count}}`` snapshot."""
        return {
            phase: {"seconds": self._seconds[phase], "count": self._counts[phase]}
            for phase in self._seconds
        }

    def render(self, indent: str = "") -> str:
        """A small text table, most expensive phase first."""
        if not self._seconds:
            return indent + "(no phases recorded)"
        width = max(len(p) for p in self._seconds)
        lines = [
            f"{indent}{phase.ljust(width)}  {self._seconds[phase]:9.4f}s"
            f"  x{self._counts[phase]:,}"
            for phase in self.phases
        ]
        return "\n".join(lines)


class MemoryProfile:
    """Result of one :func:`capture_peak_memory` window."""

    __slots__ = ("peak_bytes", "current_bytes")

    def __init__(self) -> None:
        self.peak_bytes = 0
        self.current_bytes = 0

    @property
    def peak_kib(self) -> float:
        """Peak traced allocation during the window, in KiB."""
        return self.peak_bytes / 1024.0


class capture_peak_memory:
    """Context manager: tracemalloc peak allocations inside the block.

    Starts ``tracemalloc`` if it is not already running (and stops it
    again on exit in that case); resets the peak counter on entry either
    way, so nested captures each see their own window's peak.

        with capture_peak_memory() as profile:
            run_exploration()
        print(profile.peak_kib)
    """

    __slots__ = ("profile", "_started_here")

    def __enter__(self) -> MemoryProfile:
        self._started_here = not tracemalloc.is_tracing()
        if self._started_here:
            tracemalloc.start()
        else:
            tracemalloc.reset_peak()
        self.profile = MemoryProfile()
        return self.profile

    def __exit__(self, exc_type, exc_val, exc_tb) -> bool:
        current, peak = tracemalloc.get_traced_memory()
        self.profile.current_bytes = current
        self.profile.peak_bytes = peak
        if self._started_here:
            tracemalloc.stop()
        return False
