"""The engine-facing observability bundle.

Generators take one optional :class:`Observability` object instead of
separate tracer/metrics/profiler arguments.  It fans each phase out to
whichever backends are attached:

* a span per phase on the tracer (when tracing is enabled),
* an observation in the per-phase duration histogram (when a metrics
  registry is attached),
* an entry in the in-process :class:`~repro.obs.profiling.PhaseBreakdown`
  (always, when the bundle is enabled at all).

``Observability()`` with no arguments is **disabled**: ``phase()`` and
``run()`` return a shared no-op context manager and the engine's hot
loops pay only a couple of attribute reads.  The engine never checks
*which* backend is on — it just calls ``obs.phase("expand")``.

A run scope (``with obs.run("goal_driven")``) additionally publishes the
bundle through a :mod:`contextvars` variable so deeply nested code that
the engine cannot thread arguments into — the max-flow solver inside
:class:`~repro.requirements.goals.DegreeGoal` — can pick it up with
:func:`current_observability` and charge its time to the ``flow`` phase.

**Thread visibility.**  A run scope entered in one thread is *not*
visible from another: each ``threading.Thread`` starts with a fresh
:mod:`contextvars` context, so :func:`current_observability` answers
``None`` there — by design, because the publication token, the tracer's
span stack, and the phase breakdown are all single-thread state.  A
worker thread that should report into an existing bundle must opt in
explicitly with :meth:`Observability.activate`::

    def worker():
        with obs.activate():           # publish in *this* thread only
            goal.remaining_courses(x)  # flow time now lands in the bundle
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from typing import Any, Dict, Optional

from .explain import DecisionRecorder
from .live import ExplorationBudget, ProgressTracker
from .metrics import Histogram, MetricsRegistry
from .profiling import PHASE_METRIC_NAME, PhaseBreakdown, capture_peak_memory
from .tracing import NULL_SPAN, NULL_TRACER, SpanSink, Tracer

__all__ = [
    "Observability",
    "NULL_OBSERVABILITY",
    "SpanMetricsSink",
    "SPAN_METRIC_NAME",
    "current_observability",
]

#: Histogram family the tracer→metrics bridge observes into (label ``name``).
SPAN_METRIC_NAME = "repro_span_duration_seconds"


class SpanMetricsSink(SpanSink):
    """Bridges the tracer into a metrics registry.

    Every finished span's duration lands in the
    ``repro_span_duration_seconds{name=...}`` histogram, so Prometheus
    exposition covers exactly what a JSONL trace covers — per-span-name
    duration distributions — without parsing the trace offline.  One
    histogram series per span name, resolved once and cached.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self._histograms: Dict[str, Histogram] = {}

    def emit(self, record: Dict[str, Any]) -> None:
        name = record["name"]
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self.registry.histogram(
                SPAN_METRIC_NAME,
                "wall seconds per finished span, by span name",
                labels={"name": name},
            )
            self._histograms[name] = histogram
        histogram.observe(record["duration"])

_ACTIVE: "ContextVar[Optional[Observability]]" = ContextVar(
    "repro_active_observability", default=None
)


def current_observability() -> "Optional[Observability]":
    """The bundle of the innermost active ``run()`` scope, if any.

    Only enabled bundles publish themselves, so a ``None`` answer is the
    common (and cheapest) case; callers should fall straight through to
    the uninstrumented path on it.
    """
    return _ACTIVE.get()


class _Activation:
    """Context manager for :meth:`Observability.activate` (thread handoff)."""

    __slots__ = ("_obs", "_token")

    def __init__(self, obs: "Observability"):
        self._obs = obs
        self._token = None

    def __enter__(self) -> "Observability":
        self._token = _ACTIVE.set(self._obs)
        return self._obs

    def __exit__(self, exc_type, exc_val, exc_tb) -> bool:
        _ACTIVE.reset(self._token)
        return False


class _PhaseScope:
    """Times one phase entry and fans it out to span/histogram/breakdown."""

    __slots__ = ("_obs", "_name", "_attributes", "_span", "_started_at")

    def __init__(self, obs: "Observability", name: str, attributes: Dict[str, Any]):
        self._obs = obs
        self._name = name
        self._attributes = attributes

    def __enter__(self):
        obs = self._obs
        if obs.tracer.enabled:
            self._span = obs.tracer.span(self._name, **self._attributes)
            self._span.__enter__()
        else:
            self._span = NULL_SPAN
        self._started_at = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc_val, exc_tb) -> bool:
        elapsed = time.perf_counter() - self._started_at
        self._span.__exit__(exc_type, exc_val, exc_tb)
        obs = self._obs
        obs.phases.add(self._name, elapsed)
        histogram = obs._phase_histogram(self._name)
        if histogram is not None:
            histogram.observe(elapsed)
        return False


class _RunScope:
    """Root span + contextvar publication + optional memory capture."""

    __slots__ = ("_obs", "_name", "_attributes", "_span", "_token", "_memory")

    def __init__(self, obs: "Observability", name: str, attributes: Dict[str, Any]):
        self._obs = obs
        self._name = name
        self._attributes = attributes

    def __enter__(self):
        obs = self._obs
        self._token = _ACTIVE.set(obs)
        self._span = obs.tracer.span("run:" + self._name, **self._attributes)
        self._span.__enter__()
        self._memory = capture_peak_memory() if obs.capture_memory else None
        if self._memory is not None:
            self._memory.__enter__()
        return self._span

    def __exit__(self, exc_type, exc_val, exc_tb) -> bool:
        obs = self._obs
        if self._memory is not None:
            self._memory.__exit__(exc_type, exc_val, exc_tb)
            profile = self._memory.profile
            obs.last_memory = profile
            self._span.annotate(peak_memory_bytes=profile.peak_bytes)
            if obs.metrics is not None:
                obs.metrics.gauge(
                    "repro_run_peak_memory_bytes",
                    "tracemalloc peak allocation of the last observed run",
                    labels={"run": self._name},
                ).set(profile.peak_bytes)
        self._span.__exit__(exc_type, exc_val, exc_tb)
        _ACTIVE.reset(self._token)
        if exc_type is None and obs.progress is not None:
            obs.progress.finish_run()
        return False


class Observability:
    """Tracer + metrics registry + phase breakdown, threaded as one object.

    Parameters
    ----------
    tracer:
        A :class:`~repro.obs.tracing.Tracer`, or ``None`` for no tracing.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry`, or ``None``.
    capture_memory:
        When true, every ``run()`` scope measures its ``tracemalloc``
        allocation peak (slows runs measurably; off by default).
    decisions:
        A :class:`~repro.obs.explain.DecisionRecorder`, or ``None``.  When
        attached, the generators record every expansion/prune/terminal
        decision as a typed event (the EXPLAIN layer); the hot loops pay a
        single ``is not None`` check when it is absent.
    progress:
        A :class:`~repro.obs.live.ProgressTracker`, or ``None``.  When
        attached, the generators feed it incrementally (expansion, prune,
        terminal, frontier width, emitted paths) so other threads can
        watch the run mid-flight via snapshots, gauges, or the HTTP
        exporter (:mod:`repro.obs.server`).
    budget:
        An :class:`~repro.obs.live.ExplorationBudget`, or ``None``.  When
        attached, the generators tick it once per decided node; exceeding
        a limit (or a cooperative :meth:`~repro.obs.live.ExplorationBudget.cancel`
        from another thread) aborts the run with
        :class:`~repro.errors.BudgetExceededError` carrying the final
        progress snapshot.  A budget with no tracker gets a private
        :class:`~repro.obs.live.ProgressTracker` so its exceptions always
        carry a snapshot.

    With no backend at all the bundle is ``enabled == False`` and every
    hook degrades to a shared no-op.  When both a real tracer and a
    metrics registry are attached, a :class:`SpanMetricsSink` bridge is
    added automatically so span durations appear in the registry too.
    """

    __slots__ = (
        "tracer",
        "metrics",
        "capture_memory",
        "decisions",
        "progress",
        "budget",
        "phases",
        "enabled",
        "last_memory",
        "_histograms",
    )

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        capture_memory: bool = False,
        decisions: Optional[DecisionRecorder] = None,
        progress: Optional[ProgressTracker] = None,
        budget: Optional[ExplorationBudget] = None,
    ):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.capture_memory = capture_memory
        self.decisions = decisions
        if budget is not None and progress is None:
            progress = ProgressTracker()
        self.progress = progress
        self.budget = budget
        self.phases = PhaseBreakdown()
        self.enabled = bool(
            self.tracer.enabled
            or metrics is not None
            or capture_memory
            or decisions is not None
            or progress is not None
            or budget is not None
        )
        self.last_memory = None
        self._histograms: Dict[str, Optional[Histogram]] = {}
        if self.tracer.enabled and metrics is not None and not any(
            isinstance(sink, SpanMetricsSink) and sink.registry is metrics
            for sink in self.tracer._sinks
        ):
            self.tracer.add_sink(SpanMetricsSink(metrics))

    # -- scopes --------------------------------------------------------------

    def run(self, name: str, **attributes: Any):
        """Root scope for one exploration run (span ``run:<name>``)."""
        if not self.enabled:
            return NULL_SPAN
        return _RunScope(self, name, attributes)

    def phase(self, name: str, **attributes: Any):
        """Scope for one engine phase entry (span named after the phase)."""
        if not self.enabled:
            return NULL_SPAN
        return _PhaseScope(self, name, attributes)

    def activate(self):
        """Publish this bundle via :func:`current_observability` in the
        *calling* thread.

        Run scopes do this implicitly, but :mod:`contextvars` state never
        crosses thread boundaries — a worker thread spawned inside a run
        sees ``None``.  ``activate()`` is the explicit handoff: enter it at
        the top of the worker so nested code (e.g. the flow solver) finds
        the bundle there too.  The scope must be exited in the same thread
        it was entered in.
        """
        return _Activation(self)

    # -- counters ------------------------------------------------------------

    def record_run_stats(self, kind: str, stats) -> None:
        """Publish an :class:`~repro.core.stats.ExplorationStats` to metrics.

        Called once per finished run — counters accumulate across runs on
        the same registry, the per-run granularity lives in the trace.
        """
        registry = self.metrics
        if registry is None:
            return
        if self.progress is not None:
            self.progress.publish_gauges(registry)
        registry.counter(
            "repro_runs_total", "exploration runs observed", labels={"kind": kind}
        ).inc()
        registry.counter(
            "repro_nodes_created_total", "statuses materialized by the generators"
        ).inc(stats.nodes_created)
        registry.counter(
            "repro_edges_created_total", "selection edges materialized"
        ).inc(stats.edges_created)
        registry.counter("repro_merged_hits_total", "DAG/frontier status merges").inc(
            stats.merged_hits
        )
        for kind_name, count in stats.terminals.items():
            registry.counter(
                "repro_terminals_total",
                "terminal nodes by kind",
                labels={"kind": kind_name},
            ).inc(count)
        for strategy, count in stats.prune_events.items():
            registry.counter(
                "repro_prune_events_total",
                "subtrees cut, by pruning strategy",
                labels={"strategy": strategy},
            ).inc(count)
        registry.counter(
            "repro_exploration_seconds_total", "wall seconds inside exploration runs"
        ).inc(stats.elapsed_seconds)

    # -- plumbing ------------------------------------------------------------

    def _phase_histogram(self, name: str) -> Optional[Histogram]:
        try:
            return self._histograms[name]
        except KeyError:
            histogram = (
                self.metrics.histogram(
                    PHASE_METRIC_NAME,
                    "inclusive wall seconds per engine phase entry",
                    labels={"phase": name},
                )
                if self.metrics is not None
                else None
            )
            self._histograms[name] = histogram
            return histogram


#: Shared disabled bundle — what the engine uses when callers pass nothing.
NULL_OBSERVABILITY = Observability()
