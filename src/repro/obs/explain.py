"""Decision-level EXPLAIN for the exploration engine.

Aggregate counters (:class:`~repro.core.pruning.PruningStats`) say *how
much* each pruning strategy cut; they cannot say *why a specific subtree*
was cut, which bound fired, or how close a near-miss came to surviving.
This module records every expansion/prune/terminal decision the
generators make as a typed :class:`DecisionEvent` and rebuilds the pruned
decision tree from the event stream:

* :class:`DecisionEvent` — one decision about one node: its id and parent
  linkage, term, the selection on its incoming edge, the completed set,
  and (for prunes) the firing strategy with the structured
  :class:`~repro.core.pruning.PruneVerdict` evidence — the actual
  ``left_i``, ``min_i``, ``m``, ``d − s_i − 1`` values and the
  availability shortfall courses.
* :class:`DecisionRecorder` — the engine-side collector.  Events are kept
  in memory and fanned out to any span sink (:class:`JsonlSink` gives the
  ``--explain FILE.jsonl`` audit file).  Generators consult it through
  ``obs.decisions`` with a single ``is not None`` check, so the disabled
  path keeps the no-op cost budget of the rest of :mod:`repro.obs`.
* :class:`ExplainReport` — the offline analysis: per-strategy attribution
  tables (the Table 1 82%/18% split, reproduced from events rather than
  counters), near-miss listings, root-to-node lineage, and
  :meth:`ExplainReport.why_not` — "why was course X never returned?",
  answered with the exact firing strategy and counterfactual slack.

Events round-trip losslessly through JSONL
(:func:`load_decision_events` / :meth:`ExplainReport.from_jsonl`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .tracing import SpanSink

__all__ = [
    "DECISION_KINDS",
    "DecisionEvent",
    "DecisionRecorder",
    "ExplainReport",
    "WhyNotAnswer",
    "describe_verdict",
    "load_decision_events",
]

#: Every decision kind a generator may record.  ``expand`` is an interior
#: node that produced children; ``goal``/``deadline``/``dead_end`` are the
#: terminal kinds of :mod:`repro.graph.learning_graph`; ``prune`` is a cut
#: subtree; ``suppressed`` charges the strategic-selection floor (children
#: skipped below ``min_i``, credited to the time strategy like
#: :class:`~repro.core.pruning.PruningStats` does).
DECISION_KINDS = ("expand", "goal", "deadline", "dead_end", "prune", "suppressed")


@dataclass(frozen=True)
class DecisionEvent:
    """One generator decision about one node, JSONL-serializable.

    ``verdicts`` holds the :meth:`~repro.core.pruning.PruneVerdict.as_dict`
    of every strategy consulted at this node, in consultation order — for
    a ``prune`` event the last one fired (its name is ``strategy``); the
    earlier, non-firing verdicts carry the near-miss slack the report
    surfaces.  ``detail`` is kind-specific: children count for ``expand``,
    skipped-subtree count and floor for ``suppressed``, state multiplicity
    for frontier-DP events.
    """

    kind: str
    node_id: int
    parent_id: Optional[int]
    term: str
    selection: Tuple[str, ...] = ()
    completed: Tuple[str, ...] = ()
    strategy: Optional[str] = None
    verdicts: Tuple[Dict[str, Any], ...] = ()
    detail: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in DECISION_KINDS:
            raise ValueError(
                f"unknown decision kind {self.kind!r}; expected one of {DECISION_KINDS}"
            )

    @property
    def firing_verdict(self) -> Optional[Dict[str, Any]]:
        """The verdict of the strategy that fired (``None`` unless pruned)."""
        for verdict in self.verdicts:
            if verdict.get("fired"):
                return verdict
        return None

    def as_dict(self) -> Dict[str, Any]:
        """The JSON-serializable record written to decision-audit files."""
        return {
            "kind": self.kind,
            "node": self.node_id,
            "parent": self.parent_id,
            "term": self.term,
            "selection": list(self.selection),
            "completed": list(self.completed),
            "strategy": self.strategy,
            "verdicts": [dict(v) for v in self.verdicts],
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DecisionEvent":
        """Inverse of :meth:`as_dict` (the JSONL round-trip)."""
        return cls(
            kind=data["kind"],
            node_id=data["node"],
            parent_id=data.get("parent"),
            term=data["term"],
            selection=tuple(data.get("selection", ())),
            completed=tuple(data.get("completed", ())),
            strategy=data.get("strategy"),
            verdicts=tuple(dict(v) for v in data.get("verdicts", ())),
            detail=dict(data.get("detail", {})),
        )


class DecisionRecorder:
    """Collects decision events and fans them out to sinks.

    Accepts the same sink protocol as the tracer
    (:class:`~repro.obs.tracing.SpanSink`), so :class:`JsonlSink` writes
    the ``--explain`` audit file and :class:`InMemorySink` serves tests.
    ``keep_events=False`` drops the in-memory list for unbounded streaming
    runs where only the file matters.
    """

    def __init__(self, sinks: Iterable[SpanSink] = (), keep_events: bool = True):
        self._sinks: List[SpanSink] = list(sinks)
        self._keep = keep_events
        self.events: List[DecisionEvent] = []

    def add_sink(self, sink: SpanSink) -> None:
        """Attach another sink; it sees every event recorded afterwards."""
        self._sinks.append(sink)

    def record(self, event: DecisionEvent) -> None:
        """Accept one decision event."""
        if self._keep:
            self.events.append(event)
        if self._sinks:
            record = event.as_dict()
            for sink in self._sinks:
                sink.emit(record)

    def __len__(self) -> int:
        return len(self.events)

    def report(self) -> "ExplainReport":
        """An :class:`ExplainReport` over everything recorded so far."""
        return ExplainReport(self.events)

    def close(self) -> None:
        """Flush and close every sink (call once, after the last run)."""
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "DecisionRecorder":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> bool:
        self.close()
        return False


def load_decision_events(path: str) -> List[DecisionEvent]:
    """Read a decision-audit JSONL file back into events.

    Lines that are not decision events (e.g. span records, when one file
    received both) are skipped by their missing ``kind`` field.
    """
    events: List[DecisionEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if data.get("kind") in DECISION_KINDS:
                events.append(DecisionEvent.from_dict(data))
    return events


def describe_verdict(verdict: Dict[str, Any]) -> str:
    """One line of human-readable evidence for one strategy's verdict.

    For a fired time verdict this names the actual bound values and the
    counterfactual ("survives with m >= 4 or 2 more semesters"); for a
    fired availability verdict, the shortfall and the unavailable goal
    courses.  Non-firing verdicts render their margin.
    """
    strategy = verdict.get("strategy", "?")
    detail = verdict.get("detail", {})
    if strategy == "time":
        base = (
            f"time: left_i={detail.get('left_i')}, min_i={detail.get('min_i')}, "
            f"m={detail.get('m')}, d-s_i-1={detail.get('semesters_after_this')}"
        )
        if not verdict.get("fired"):
            return base + f" (margin {detail.get('slack')})"
        parts = []
        if "required_m" in detail:
            parts.append(f"m >= {detail['required_m']}")
        if "extra_semesters" in detail:
            parts.append(f"{detail['extra_semesters']} more semester(s)")
        counterfactual = f"; survives with {' or '.join(parts)}" if parts else ""
        return base + f" -> min_i > m{counterfactual}"
    if strategy == "availability":
        offered = detail.get("offered_remaining")
        if not verdict.get("fired"):
            return f"availability: satisfiable ({offered} courses still offered)"
        missing = detail.get("unavailable_goal_courses", [])
        shown = ", ".join(missing[:6]) + (" ..." if len(missing) > 6 else "")
        return (
            f"availability: {detail.get('shortfall')} course(s) short even taking "
            f"all {offered} still offered; never offered again: {shown or '(none)'}"
        )
    state = "fired" if verdict.get("fired") else "passed"
    extras = ", ".join(f"{k}={v}" for k, v in sorted(detail.items()))
    return f"{strategy}: {state}" + (f" ({extras})" if extras else "")


@dataclass
class WhyNotAnswer:
    """The answer to "why was course X never returned?".

    Either the course *was* returned (``returned_in`` > 0), or the prune
    events listed in ``blockers`` cut every subtree that could still have
    elected it — each with the strategy and evidence that justified the
    cut.
    """

    course: str
    returned_in: int
    blockers: List[DecisionEvent]

    @property
    def was_returned(self) -> bool:
        """Whether any goal path contained the course after all."""
        return self.returned_in > 0

    def render(self, limit: int = 5) -> str:
        """A small text answer, nearest-miss blockers first."""
        if self.was_returned:
            return f"{self.course}: returned in {self.returned_in} goal path(s)."
        if not self.blockers:
            return (
                f"{self.course}: in no goal path, and no pruned subtree could "
                f"have elected it (it is simply not on any satisfying path)."
            )
        lines = [
            f"{self.course}: never returned; {len(self.blockers)} pruned "
            f"subtree(s) could still have elected it:"
        ]
        for event in self.blockers[:limit]:
            verdict = event.firing_verdict or {}
            lines.append(
                f"  node {event.node_id} [{event.term}] pruned by "
                f"{event.strategy}: {describe_verdict(verdict)}"
            )
        if len(self.blockers) > limit:
            lines.append(f"  ... and {len(self.blockers) - limit} more")
        return "\n".join(lines)


def _verdict_slack(event: DecisionEvent) -> float:
    """How close a pruned node came to surviving (smaller = nearer miss).

    Time verdicts expose the signed ``slack`` (``min_i − m``); availability
    verdicts the best-case ``shortfall``.  Events without either sort last.
    """
    verdict = event.firing_verdict
    if verdict is None:
        return float("inf")
    detail = verdict.get("detail", {})
    value = detail.get("slack", detail.get("shortfall"))
    if isinstance(value, (int, float)):
        return float(value)
    return float("inf")


class ExplainReport:
    """The pruned decision tree, reconstructed from recorded events.

    Indexes the event stream by node id and parent linkage, and answers
    the audit questions: which strategies cut what (and whether the
    recorded split matches the aggregate counters), which cuts were
    near-misses, and why a given course never appeared in the output.
    """

    def __init__(self, events: Sequence[DecisionEvent]):
        self.events: List[DecisionEvent] = list(events)
        #: The one decision that closed each node (suppressed events ride
        #: alongside their node's expand decision, so they index separately).
        self.by_node: Dict[int, DecisionEvent] = {}
        self.suppressed: List[DecisionEvent] = []
        self.children: Dict[int, List[int]] = {}
        for event in self.events:
            if event.kind == "suppressed":
                self.suppressed.append(event)
                continue
            self.by_node[event.node_id] = event
            if event.parent_id is not None:
                self.children.setdefault(event.parent_id, []).append(event.node_id)

    @classmethod
    def from_jsonl(cls, path: str) -> "ExplainReport":
        """Build a report straight from a decision-audit JSONL file."""
        return cls(load_decision_events(path))

    # -- aggregate views -----------------------------------------------------

    def counts_by_kind(self) -> Dict[str, int]:
        """How many decisions of each kind were recorded."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def pruned(self) -> List[DecisionEvent]:
        """Every prune decision, in recording order."""
        return [e for e in self.events if e.kind == "prune"]

    def attribution(self, include_selection_floor: bool = True) -> Dict[str, int]:
        """Subtrees cut per strategy, recomputed from events.

        With ``include_selection_floor`` (default), selections skipped by
        the strategic floor are credited to the time strategy — the same
        accounting :class:`~repro.core.pruning.PruningStats` uses, so this
        table must reproduce the run's counters exactly (and the paper's
        82%/18% split when run over the evaluation workload).
        """
        table: Dict[str, int] = {}
        for event in self.pruned():
            name = event.strategy or "?"
            table[name] = table.get(name, 0) + 1
        if include_selection_floor:
            for event in self.suppressed:
                count = int(event.detail.get("suppressed", 0))
                table["time"] = table.get("time", 0) + count
        return table

    def share(self, strategy: str, include_selection_floor: bool = True) -> float:
        """One strategy's fraction of all recorded prune credit."""
        table = self.attribution(include_selection_floor)
        total = sum(table.values())
        if total == 0:
            return 0.0
        return table.get(strategy, 0) / total

    def near_misses(self, max_slack: float = 1.0, limit: int = 10) -> List[DecisionEvent]:
        """Pruned nodes that came within ``max_slack`` of surviving,
        nearest first — the tuning view ("one semester away")."""
        candidates = [e for e in self.pruned() if _verdict_slack(e) <= max_slack]
        candidates.sort(key=_verdict_slack)
        return candidates[:limit]

    # -- per-node views ------------------------------------------------------

    def event(self, node_id: int) -> Optional[DecisionEvent]:
        """The decision recorded for one node, if any."""
        return self.by_node.get(node_id)

    def lineage(self, node_id: int) -> List[DecisionEvent]:
        """Root-to-node chain of decisions (parent linkage walk)."""
        chain: List[DecisionEvent] = []
        current: Optional[int] = node_id
        seen = set()
        while current is not None and current not in seen:
            seen.add(current)
            event = self.by_node.get(current)
            if event is None:
                break
            chain.append(event)
            current = event.parent_id
        chain.reverse()
        return chain

    def why_not(self, course_id: str) -> WhyNotAnswer:
        """Why ``course_id`` never appeared in a returned goal path.

        A pruned subtree can only have elected the course if the course was
        not already completed at the cut — those prune events, ordered
        nearest-miss first, are the blockers; each names the strategy and
        the exact bound values that justified the cut.
        """
        returned_in = sum(
            1
            for event in self.events
            if event.kind == "goal" and course_id in event.completed
        )
        if returned_in:
            return WhyNotAnswer(course=course_id, returned_in=returned_in, blockers=[])
        blockers = [e for e in self.pruned() if course_id not in e.completed]
        blockers.sort(key=_verdict_slack)
        return WhyNotAnswer(course=course_id, returned_in=0, blockers=blockers)

    # -- export --------------------------------------------------------------

    def as_dict(self, max_pruned: int = 25) -> Dict[str, Any]:
        """A JSON-serializable summary (the CLI's ``--json`` rendering)."""
        return {
            "decisions": counts_with_total(self.counts_by_kind()),
            "attribution": {
                "subtrees": self.attribution(include_selection_floor=False),
                "with_selection_floor": self.attribution(include_selection_floor=True),
            },
            "pruned": [e.as_dict() for e in self.pruned()[:max_pruned]],
            "near_misses": [e.as_dict() for e in self.near_misses()],
        }


def counts_with_total(counts: Dict[str, int]) -> Dict[str, int]:
    """A counts dict plus its ``total`` (helper for JSON summaries)."""
    merged = dict(counts)
    merged["total"] = sum(counts.values())
    return merged
