"""Metrics registry: counters, gauges, histograms, two export formats.

A :class:`MetricsRegistry` is a process-local collection of named
instruments.  ``counter``/``gauge``/``histogram`` are get-or-create — the
same (name, labels) pair always returns the same instrument, so hot paths
can cache the object and skip the lookup.  Instruments follow Prometheus
conventions: snake_case names matching ``[a-zA-Z_:][a-zA-Z0-9_:]*``,
``_total`` suffix on counters, base units (seconds, bytes).

Export goes two ways: :meth:`MetricsRegistry.render_prometheus` produces
the text exposition format (scrape-compatible), and
:meth:`MetricsRegistry.snapshot` a JSON-serializable dict for offline
diffing; both are pure reads and may be called at any time.

Histograms use **fixed bucket boundaries** chosen at creation — a
cumulative-bucket design identical to Prometheus, so per-phase duration
histograms from different runs can be summed bucket-wise.

Thread-safety: the registry locks instrument creation/lookup and
rendering, and histograms lock ``observe``/render — so one engine thread
can write while scrape threads (the HTTP exporter) render concurrently.
``Counter``/``Gauge`` writes are deliberately lock-free single bytecode
read-modify-writes: safe under the single-writer model the engine uses
(one exploration thread mutates, any number of threads read), where
readers can never observe a torn or decreasing value.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_DURATION_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram boundaries for durations in seconds: 10 µs … 10 s,
#: roughly 1-2.5-5 per decade — wide enough for both a single flow solve
#: and a whole exploration phase.
DEFAULT_DURATION_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


def _format_number(value: float) -> str:
    """Prometheus-friendly number rendering (ints without a trailing .0)."""
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"bad metric name {name!r}")
    return name


def _freeze_labels(labels: Optional[Mapping[str, str]]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"bad label name {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(labels: Tuple[Tuple[str, str], ...], extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    escaped = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + escaped + "}"


class Metric:
    """Common identity for one instrument: name, help text, fixed labels."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labels: Tuple[Tuple[str, str], ...]):
        self.name = _check_name(name)
        self.help = help_text
        self.labels = labels

    @property
    def label_dict(self) -> Dict[str, str]:
        """The fixed labels as a plain dict."""
        return dict(self.labels)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of this instrument."""
        raise NotImplementedError

    def render(self) -> List[str]:
        """The sample lines (no HELP/TYPE header) in exposition format."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "", labels: Tuple[Tuple[str, str], ...] = ()):
        super().__init__(name, help_text, labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "kind": self.kind, "help": self.help,
            "labels": self.label_dict, "value": self.value,
        }

    def render(self) -> List[str]:
        return [f"{self.name}{_render_labels(self.labels)} {_format_number(self.value)}"]


class Gauge(Metric):
    """A value that can go up and down (peak memory, frontier width)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "", labels: Tuple[Tuple[str, str], ...] = ()):
        super().__init__(name, help_text, labels)
        self.value: float = 0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (may be negative)."""
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract ``amount``."""
        self.value -= amount

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "kind": self.kind, "help": self.help,
            "labels": self.label_dict, "value": self.value,
        }

    def render(self) -> List[str]:
        return [f"{self.name}{_render_labels(self.labels)} {_format_number(self.value)}"]


class Histogram(Metric):
    """Observation counts over fixed bucket boundaries plus sum/count.

    ``buckets`` are the inclusive upper bounds of each bucket in ascending
    order; an implicit ``+Inf`` bucket catches the rest.  Exposition is
    cumulative, exactly like Prometheus.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labels: Tuple[Tuple[str, str], ...] = (),
        buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS,
    ):
        super().__init__(name, help_text, labels)
        bounds = tuple(buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        if any(later <= earlier for earlier, later in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name} bucket bounds must be strictly increasing")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.sum: float = 0.0
        self.count: int = 0
        # observe() mutates three fields; the lock keeps a concurrent
        # render from seeing a bucket increment without its sum/count.
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (safe against concurrent renders)."""
        with self._lock:
            self.bucket_counts[bisect_left(self.bounds, value)] += 1
            self.sum += value
            self.count += 1

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at ``inf``."""
        with self._lock:
            counts = list(self.bucket_counts)
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, counts):
            running += bucket
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self.bucket_counts)
            total_sum, total_count = self.sum, self.count
        buckets: List[List[Any]] = []
        running = 0
        for bound, bucket in zip(self.bounds, counts):
            running += bucket
            buckets.append([bound, running])
        buckets.append(["+Inf", running + counts[-1]])
        return {
            "name": self.name, "kind": self.kind, "help": self.help,
            "labels": self.label_dict,
            "buckets": buckets,
            "sum": total_sum,
            "count": total_count,
        }

    def render(self) -> List[str]:
        # Snapshot sum/count under the same lock window as the buckets so
        # one render never mixes generations (sum ahead of buckets).
        with self._lock:
            counts = list(self.bucket_counts)
            total_sum, total_count = self.sum, self.count
        lines = []
        running = 0
        for bound, bucket in zip(self.bounds, counts):
            running += bucket
            le = _format_number(bound)
            lines.append(
                f"{self.name}_bucket{_render_labels(self.labels, ('le', le))} {running}"
            )
        lines.append(
            f"{self.name}_bucket{_render_labels(self.labels, ('le', '+Inf'))} "
            f"{running + counts[-1]}"
        )
        lines.append(f"{self.name}_sum{_render_labels(self.labels)} {_format_number(total_sum)}")
        lines.append(f"{self.name}_count{_render_labels(self.labels)} {total_count}")
        return lines


class MetricsRegistry:
    """A named collection of instruments with get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Metric] = {}
        self._kinds: Dict[str, str] = {}
        # Guards creation/lookup and family iteration so a scrape thread
        # rendering mid-run never races a writer registering new series.
        self._lock = threading.RLock()

    def _get_or_create(self, cls, name, help_text, labels, **kwargs) -> Metric:
        frozen = _freeze_labels(labels)
        key = (name, frozen)
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if existing.kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"not {cls.kind}"
                    )
                return existing
            registered_kind = self._kinds.get(name)
            if registered_kind is not None and registered_kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as {registered_kind}, not {cls.kind}"
                )
            metric = cls(name, help_text, frozen, **kwargs)
            self._metrics[key] = metric
            self._kinds[name] = cls.kind
            return metric

    def counter(
        self, name: str, help_text: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        """Get or create the counter with this name + label set."""
        return self._get_or_create(Counter, name, help_text, labels)  # type: ignore[return-value]

    def gauge(
        self, name: str, help_text: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        """Get or create the gauge with this name + label set."""
        return self._get_or_create(Gauge, name, help_text, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram with this name + label set."""
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, help_text, labels, buckets=buckets
        )

    def get(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[Metric]:
        """The instrument registered under (name, labels), if any."""
        with self._lock:
            return self._metrics.get((name, _freeze_labels(labels)))

    def __iter__(self) -> Iterator[Metric]:
        with self._lock:
            return iter(list(self._metrics.values()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot of every instrument."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {"metrics": [metric.as_dict() for metric in metrics]}

    def render_prometheus(self) -> str:
        """The Prometheus text exposition of every instrument."""
        with self._lock:
            metrics = list(self._metrics.values())
        by_name: Dict[str, List[Metric]] = {}
        for metric in metrics:
            by_name.setdefault(metric.name, []).append(metric)
        lines: List[str] = []
        for name in sorted(by_name):
            family = by_name[name]
            help_text = next((m.help for m in family if m.help), "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {family[0].kind}")
            for metric in sorted(family, key=lambda m: m.labels):
                lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")
