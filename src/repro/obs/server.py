"""A tiny in-process metrics/progress HTTP exporter.

:class:`MetricsServer` wraps a stdlib :class:`~http.server.ThreadingHTTPServer`
running in a daemon thread and serves three read-only endpoints:

========================  ====================================================
``GET /metrics``          the attached registry's Prometheus text exposition
                          (live progress gauges refreshed on every scrape)
``GET /progress``         the attached tracker's snapshot as JSON
``GET /healthz``          ``ok`` — liveness for supervisors
========================  ====================================================

It binds ``127.0.0.1`` by default and never mutates engine state, so
attaching it to a run costs nothing on the hot path — scrapes read the
(thread-safe) registry and tracker from the server's handler threads.
Pass ``port=0`` for an OS-assigned ephemeral port and read it back from
:attr:`MetricsServer.port`.

    server = MetricsServer(registry=metrics, progress=tracker).start()
    print(server.url)          # e.g. http://127.0.0.1:49321
    ...
    server.close()
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from .live import ExplorationBudget, ProgressTracker
from .metrics import MetricsRegistry

__all__ = ["MetricsServer", "PROMETHEUS_CONTENT_TYPE"]

#: The content type Prometheus scrapers expect from a text endpoint.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    """Routes the three endpoints; everything else is 404."""

    # Keep handler threads from blocking forever on half-open sockets.
    timeout = 10
    server_version = "repro-obs/1"

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._send_metrics()
        elif path == "/progress":
            self._send_progress()
        elif path == "/healthz":
            self._send(200, "text/plain; charset=utf-8", b"ok\n")
        else:
            self._send(404, "text/plain; charset=utf-8", b"not found\n")

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_metrics(self) -> None:
        registry = self.server.registry  # type: ignore[attr-defined]
        if registry is None:
            self._send(404, "text/plain; charset=utf-8", b"no metrics registry\n")
            return
        progress = self.server.progress  # type: ignore[attr-defined]
        if progress is not None:
            progress.publish_gauges(registry)
        body = registry.render_prometheus().encode("utf-8")
        self._send(200, PROMETHEUS_CONTENT_TYPE, body)

    def _send_progress(self) -> None:
        progress = self.server.progress  # type: ignore[attr-defined]
        if progress is None:
            self._send(404, "application/json", b'{"error": "no progress tracker"}\n')
            return
        budget = self.server.budget  # type: ignore[attr-defined]
        snapshot = progress.snapshot(budget=budget)
        body = (json.dumps(snapshot.as_dict(), sort_keys=True) + "\n").encode("utf-8")
        self._send(200, "application/json", body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr chatter (scrapes are periodic)."""


class MetricsServer:
    """Serve a registry and/or tracker over localhost HTTP.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` backing
        ``/metrics`` (``None`` turns the endpoint into a 404).
    progress:
        The :class:`~repro.obs.live.ProgressTracker` backing
        ``/progress``; when present its gauges are refreshed into the
        registry on every ``/metrics`` scrape.
    budget:
        Optional :class:`~repro.obs.live.ExplorationBudget` whose state is
        embedded in ``/progress`` responses.
    host, port:
        Bind address; ``port=0`` asks the OS for an ephemeral port.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        progress: Optional[ProgressTracker] = None,
        budget: Optional[ExplorationBudget] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        # The handler reads these through self.server (one server instance
        # per MetricsServer, so this is plain composition, not a global).
        self._httpd.registry = registry  # type: ignore[attr-defined]
        self._httpd.progress = progress  # type: ignore[attr-defined]
        self._httpd.budget = budget  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-metrics-server:{self.port}",
            daemon=True,
        )
        self._started = False

    @property
    def host(self) -> str:
        """The bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL, e.g. ``http://127.0.0.1:49321``."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        """Begin serving in a daemon thread; returns self for chaining."""
        if not self._started:
            self._thread.start()
            self._started = True
        return self

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._started:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._started = False
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, exc_type, exc_val, exc_tb) -> bool:
        self.close()
        return False
