"""Observability for the exploration engine: tracing, metrics, profiling.

Three layers, usable separately or bundled:

* :mod:`repro.obs.tracing` — span-based tracing (:class:`Tracer`,
  :class:`Span`) with pluggable sinks: :class:`InMemorySink` for tests,
  :class:`JsonlSink` for offline analysis.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of
  :class:`Counter` / :class:`Gauge` / :class:`Histogram` instruments with
  Prometheus text exposition and a JSON snapshot.
* :mod:`repro.obs.profiling` — the per-phase time breakdown
  (:class:`PhaseBreakdown`) and opt-in ``tracemalloc`` peak-memory capture.
* :mod:`repro.obs.explain` — the decision-level EXPLAIN layer: typed
  :class:`DecisionEvent` records for every expansion/prune/terminal
  decision, collected by a :class:`DecisionRecorder` and analysed by
  :class:`ExplainReport` ("why was this subtree cut?").
* :mod:`repro.obs.live` — the *online* layer: a :class:`ProgressTracker`
  the generators feed while they run (thread-safe snapshots, optimistic
  ETA), an :class:`ExplorationBudget` watchdog (wall/node/memory limits +
  cooperative cancellation), and a TTY :class:`ProgressPrinter`.
* :mod:`repro.obs.server` — a :class:`MetricsServer` daemon-thread HTTP
  exporter serving Prometheus text at ``/metrics`` and live progress
  JSON at ``/progress``.

:class:`Observability` ties them together for the engine; every generator
and :class:`~repro.system.navigator.CourseNavigator` accept one.  The
default is :data:`NULL_OBSERVABILITY` — a no-op whose hot-path cost is a
couple of attribute reads, so uninstrumented runs stay full speed.  See
``docs/observability.md`` for span naming conventions and usage.
"""

from .explain import (
    DECISION_KINDS,
    DecisionEvent,
    DecisionRecorder,
    ExplainReport,
    WhyNotAnswer,
    describe_verdict,
    load_decision_events,
)
from .live import (
    PROGRESS_GAUGE_PREFIX,
    ExplorationBudget,
    ProgressPrinter,
    ProgressSnapshot,
    ProgressTracker,
    Watchdog,
)
from .metrics import (
    DEFAULT_DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiling import (
    PHASE_METRIC_NAME,
    MemoryProfile,
    PhaseBreakdown,
    capture_peak_memory,
)
from .runtime import (
    NULL_OBSERVABILITY,
    SPAN_METRIC_NAME,
    Observability,
    SpanMetricsSink,
    current_observability,
)
from .server import PROMETHEUS_CONTENT_TYPE, MetricsServer
from .tracing import (
    NULL_TRACER,
    InMemorySink,
    JsonlSink,
    NullTracer,
    Span,
    SpanSink,
    Stopwatch,
    Tracer,
)

__all__ = [
    # tracing
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "SpanSink",
    "InMemorySink",
    "JsonlSink",
    "Stopwatch",
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_DURATION_BUCKETS",
    # profiling
    "PhaseBreakdown",
    "MemoryProfile",
    "capture_peak_memory",
    "PHASE_METRIC_NAME",
    # live telemetry
    "ProgressTracker",
    "ProgressSnapshot",
    "ProgressPrinter",
    "ExplorationBudget",
    "Watchdog",
    "PROGRESS_GAUGE_PREFIX",
    # exporter
    "MetricsServer",
    "PROMETHEUS_CONTENT_TYPE",
    # explain
    "DECISION_KINDS",
    "DecisionEvent",
    "DecisionRecorder",
    "ExplainReport",
    "WhyNotAnswer",
    "describe_verdict",
    "load_decision_events",
    # bundle
    "Observability",
    "NULL_OBSERVABILITY",
    "SpanMetricsSink",
    "SPAN_METRIC_NAME",
    "current_observability",
]
