"""Path-containment checking (the §5.2 transcript comparison).

The paper compares 83 actual student paths with the generated goal-driven
set and finds all 83 contained.  Enumerating the 4×10⁷-path generated set
to test membership would be absurd; containment is instead decidable by
*replaying* the candidate path against the generation rules — a path is in
the output iff every step is a legal expansion move and the path ends at
its first goal-satisfying status within the deadline.  (Pruning never
removes goal-reaching paths — Lemma 1 — so it cannot affect membership.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..catalog import Catalog
from ..core.config import ExplorationConfig
from ..core.expansion import Expander
from ..graph.path import LearningPath
from ..requirements import Goal
from ..semester import Term

__all__ = ["is_generated_goal_path", "check_containment", "ContainmentReport"]


def is_generated_goal_path(
    catalog: Catalog,
    goal: Goal,
    path: LearningPath,
    end_term: Term,
    config: Optional[ExplorationConfig] = None,
) -> Tuple[bool, str]:
    """Whether ``path`` belongs to the goal-driven output set.

    Returns ``(verdict, reason)``; ``reason`` pinpoints the first violated
    rule when the verdict is false (useful when auditing a registrar
    transcript that claims to complete the degree).
    """
    config = config or ExplorationConfig()
    expander = Expander(catalog, end_term, config)
    status = expander.initial_status(path.start.term, path.start.completed)

    for index, (term, selection) in enumerate(path):
        if goal.is_satisfied(status.completed):
            return False, (
                f"step {index}: the goal is already satisfied at {term} — "
                f"generated paths end at the first goal status"
            )
        if status.term >= end_term:
            return False, f"step {index}: past the end semester {end_term}"
        legal = dict(expander.successors(status))
        if frozenset(selection) not in legal:
            return False, (
                f"step {index}: selection {sorted(selection)} is not a legal "
                f"move at {term} (options {sorted(status.options)})"
            )
        status = legal[frozenset(selection)]

    if not goal.is_satisfied(status.completed):
        return False, f"final status at {status.term} does not satisfy the goal"
    if status.term > end_term:
        return False, f"goal reached after the end semester ({status.term} > {end_term})"
    return True, "contained"


@dataclass
class ContainmentReport:
    """Aggregate result of checking many candidate paths."""

    total: int = 0
    contained: int = 0
    failures: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def all_contained(self) -> bool:
        """True when every checked path is in the generated set."""
        return self.contained == self.total

    @property
    def containment_rate(self) -> float:
        """Fraction of paths contained."""
        if self.total == 0:
            return 1.0
        return self.contained / self.total

    def summary(self) -> str:
        """One line, e.g. ``83/83 paths contained``."""
        return f"{self.contained}/{self.total} paths contained"


def check_containment(
    catalog: Catalog,
    goal: Goal,
    paths: Sequence[LearningPath],
    end_term: Term,
    config: Optional[ExplorationConfig] = None,
) -> ContainmentReport:
    """Run :func:`is_generated_goal_path` over a path collection."""
    report = ContainmentReport()
    for index, path in enumerate(paths):
        report.total += 1
        verdict, reason = is_generated_goal_path(catalog, goal, path, end_term, config)
        if verdict:
            report.contained += 1
        else:
            report.failures.append((index, reason))
    return report
