"""Plan comparison — where two learning paths agree and diverge.

Advising conversations are comparative: "plan A and plan B are identical
until Spring '14, then A takes the ML track while B takes systems".
:func:`diff_paths` computes that structure, and :func:`cost_comparison`
prices both plans under every supplied ranking so the trade-off is
explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.ranking import RankingFunction
from ..graph.path import LearningPath
from ..semester import Term

__all__ = ["PathDiff", "diff_paths", "cost_comparison"]


@dataclass(frozen=True)
class PathDiff:
    """Structured difference between two plans."""

    shared_prefix: Tuple[Tuple[Term, FrozenSet[str]], ...]
    divergence_term: Optional[Term]
    only_in_first: FrozenSet[str]
    only_in_second: FrozenSet[str]
    per_term_changes: Tuple[Tuple[Term, FrozenSet[str], FrozenSet[str]], ...]

    @property
    def identical(self) -> bool:
        """Whether the two plans make the same selections throughout."""
        return self.divergence_term is None and not (
            self.only_in_first or self.only_in_second
        )

    def describe(self) -> str:
        """A short human-readable summary."""
        if self.identical:
            return "plans are identical"
        lines = []
        if self.divergence_term is not None:
            lines.append(
                f"identical for {len(self.shared_prefix)} semesters, "
                f"diverging at {self.divergence_term}"
            )
        if self.only_in_first:
            lines.append(f"only plan A: {', '.join(sorted(self.only_in_first))}")
        if self.only_in_second:
            lines.append(f"only plan B: {', '.join(sorted(self.only_in_second))}")
        return "; ".join(lines)


def diff_paths(first: LearningPath, second: LearningPath) -> PathDiff:
    """Compare two plans that start from the same enrollment status.

    Raises :class:`ValueError` when the start statuses differ — comparing
    plans of different students is a category error the caller should
    surface, not silently compute.
    """
    if first.start != second.start:
        raise ValueError(
            f"plans start from different statuses "
            f"({first.start.term} vs {second.start.term})"
        )
    steps_a = list(first)
    steps_b = list(second)

    shared: List[Tuple[Term, FrozenSet[str]]] = []
    divergence: Optional[Term] = None
    for (term_a, sel_a), (_term_b, sel_b) in zip(steps_a, steps_b):
        if sel_a == sel_b:
            shared.append((term_a, sel_a))
        else:
            divergence = term_a
            break
    else:
        if len(steps_a) != len(steps_b):
            longer = steps_a if len(steps_a) > len(steps_b) else steps_b
            divergence = longer[min(len(steps_a), len(steps_b))][0]

    courses_a = first.courses_taken()
    courses_b = second.courses_taken()

    changes: List[Tuple[Term, FrozenSet[str], FrozenSet[str]]] = []
    by_term_a: Dict[Term, FrozenSet[str]] = dict(steps_a)
    by_term_b: Dict[Term, FrozenSet[str]] = dict(steps_b)
    for term in sorted(set(by_term_a) | set(by_term_b)):
        sel_a = by_term_a.get(term, frozenset())
        sel_b = by_term_b.get(term, frozenset())
        if sel_a != sel_b:
            changes.append((term, sel_a, sel_b))

    return PathDiff(
        shared_prefix=tuple(shared),
        divergence_term=divergence,
        only_in_first=courses_a - courses_b,
        only_in_second=courses_b - courses_a,
        per_term_changes=tuple(changes),
    )


def cost_comparison(
    paths: Sequence[LearningPath], rankings: Sequence[RankingFunction]
) -> List[Dict[str, float]]:
    """Price every path under every ranking.

    Returns one dict per path: ``{ranking name: cost}`` — the table a
    front-end renders as "plan A: 4 semesters / 130 h; plan B: 5 / 118 h".
    """
    table: List[Dict[str, float]] = []
    for path in paths:
        table.append({ranking.name: ranking.path_cost(path) for ranking in rankings})
    return table
