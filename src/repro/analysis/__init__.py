"""Analysis helpers: containment checking and path/graph statistics.

These utilities back the §5.2 experiments — the transcript-containment
comparison and the pruning-effectiveness accounting — and give front-ends
summary views over generated path sets.
"""

from .compare import PathDiff, cost_comparison, diff_paths
from .containment import ContainmentReport, check_containment, is_generated_goal_path
from .filters import (
    AllFilters,
    AnyFilter,
    BalancedTerms,
    CompletesBy,
    MaxLength,
    MaxTotalWorkload,
    MinReliability,
    PathFilter,
    TakesCourse,
    filter_paths,
)
from .metrics import GraphShape, TermBranching, branching_profile, graph_shape
from .repair import RepairResult, replan
from .robustness import PlanRisk, StepRisk, assess_plan, monte_carlo_survival
from .statistics import PathSetSummary, summarize_paths

__all__ = [
    "is_generated_goal_path",
    "check_containment",
    "ContainmentReport",
    "PathSetSummary",
    "summarize_paths",
    "TermBranching",
    "branching_profile",
    "GraphShape",
    "graph_shape",
    "PathFilter",
    "MaxTotalWorkload",
    "MaxLength",
    "CompletesBy",
    "TakesCourse",
    "MinReliability",
    "BalancedTerms",
    "AllFilters",
    "AnyFilter",
    "filter_paths",
    "PathDiff",
    "diff_paths",
    "cost_comparison",
    "PlanRisk",
    "StepRisk",
    "assess_plan",
    "monte_carlo_survival",
    "RepairResult",
    "replan",
]
