"""Whole-path filters for generated learning paths (paper §6 future work).

Complements :mod:`repro.core.constraints`: constraints judge one
semester's selection and are enforced *during* generation; the filters
here judge a **complete path** (total workload, completion order,
reliability floors …) and run over any path iterable afterwards.

Filters compose with :class:`AllFilters` / :class:`AnyFilter` and apply
lazily via :func:`filter_paths`, so they work over the streaming output
of a large generation without materializing it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from ..graph.path import LearningPath
from ..semester import Term

if TYPE_CHECKING:
    from ..catalog import Catalog, OfferingModel

__all__ = [
    "PathFilter",
    "MaxTotalWorkload",
    "MaxLength",
    "CompletesBy",
    "TakesCourse",
    "MinReliability",
    "BalancedTerms",
    "AllFilters",
    "AnyFilter",
    "filter_paths",
]


class PathFilter:
    """Abstract predicate over complete learning paths."""

    #: Short identifier for reports.
    name: str = "filter"

    def accepts(self, path: LearningPath) -> bool:
        """Whether the path passes the filter."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable description."""
        return self.name

    def __str__(self) -> str:
        return self.describe()


class MaxTotalWorkload(PathFilter):
    """Total workload over the whole path at most ``max_hours``
    (the paper's "paths whose workload does not exceed a given
    threshold", §4.3.1)."""

    name = "max-total-workload"

    def __init__(self, catalog: "Catalog", max_hours: float):
        self._catalog = catalog
        self._max_hours = max_hours

    def accepts(self, path: LearningPath) -> bool:
        return path.workload_cost(self._catalog) <= self._max_hours

    def describe(self) -> str:
        return f"total workload <= {self._max_hours:g} hours"


class MaxLength(PathFilter):
    """At most ``max_semesters`` transitions."""

    name = "max-length"

    def __init__(self, max_semesters: int):
        self._max_semesters = max_semesters

    def accepts(self, path: LearningPath) -> bool:
        return len(path) <= self._max_semesters

    def describe(self) -> str:
        return f"at most {self._max_semesters} semesters"


class CompletesBy(PathFilter):
    """Course ``course_id`` completed no later than the status at ``term``
    (e.g. "I want the intro sequence done before junior year")."""

    name = "completes-by"

    def __init__(self, course_id: str, term: Term):
        self._course = course_id
        self._term = term

    def accepts(self, path: LearningPath) -> bool:
        for status in path.statuses:
            if status.term > self._term:
                break
            if self._course in status.completed:
                return True
        return False

    def describe(self) -> str:
        return f"{self._course} completed by {self._term}"


class TakesCourse(PathFilter):
    """The path elects ``course_id`` somewhere (regardless of the goal)."""

    name = "takes-course"

    def __init__(self, course_id: str):
        self._course = course_id

    def accepts(self, path: LearningPath) -> bool:
        return self._course in path.courses_taken()

    def describe(self) -> str:
        return f"takes {self._course}"


class MinReliability(PathFilter):
    """The plan's materialization probability is at least ``minimum``."""

    name = "min-reliability"

    def __init__(self, model: "OfferingModel", minimum: float):
        if not 0.0 <= minimum <= 1.0:
            raise ValueError(f"minimum must be in [0, 1], got {minimum}")
        self._model = model
        self._minimum = minimum

    def accepts(self, path: LearningPath) -> bool:
        return path.reliability(self._model) >= self._minimum

    def describe(self) -> str:
        return f"reliability >= {self._minimum:g}"


class BalancedTerms(PathFilter):
    """No semester's workload exceeds the path's average by more than
    ``tolerance_hours`` — rejects plans that cram everything into one
    brutal term."""

    name = "balanced-terms"

    def __init__(self, catalog: "Catalog", tolerance_hours: float):
        if tolerance_hours < 0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance_hours}")
        self._catalog = catalog
        self._tolerance = tolerance_hours

    def accepts(self, path: LearningPath) -> bool:
        if len(path) == 0:
            return True
        loads = [
            sum(self._catalog[c].workload_hours for c in selection)
            for _term, selection in path
        ]
        average = sum(loads) / len(loads)
        return all(load <= average + self._tolerance for load in loads)

    def describe(self) -> str:
        return f"no semester more than {self._tolerance:g}h above the path average"


class AllFilters(PathFilter):
    """Conjunction: the path must pass every child filter."""

    name = "all-of"

    def __init__(self, filters: Sequence[PathFilter]):
        self._filters = tuple(filters)

    def accepts(self, path: LearningPath) -> bool:
        return all(f.accepts(path) for f in self._filters)

    def describe(self) -> str:
        return " and ".join(f.describe() for f in self._filters) or "accept all"


class AnyFilter(PathFilter):
    """Disjunction: the path must pass at least one child filter."""

    name = "any-of"

    def __init__(self, filters: Sequence[PathFilter]):
        if not filters:
            raise ValueError("AnyFilter needs at least one filter")
        self._filters = tuple(filters)

    def accepts(self, path: LearningPath) -> bool:
        return any(f.accepts(path) for f in self._filters)

    def describe(self) -> str:
        return " or ".join(f.describe() for f in self._filters)


def filter_paths(
    paths: Iterable[LearningPath], *filters: PathFilter
) -> Iterator[LearningPath]:
    """Lazily yield the paths that pass every filter."""
    for path in paths:
        if all(f.accepts(path) for f in filters):
            yield path
