"""Summary statistics over generated path sets.

Front-ends (and EXPERIMENTS.md) want aggregate views rather than millions
of raw paths: how long are the paths, how heavy, how much do they overlap
in the early semesters (the phenomenon the paper credits for pruning's
effectiveness — "learning paths have high overlap in the first several
semesters and only branch out after a certain academic period").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..catalog import Catalog
from ..graph.path import LearningPath

__all__ = ["PathSetSummary", "summarize_paths", "prefix_overlap_profile"]


@dataclass
class PathSetSummary:
    """Aggregates over a collection of learning paths."""

    count: int = 0
    min_length: Optional[int] = None
    max_length: Optional[int] = None
    mean_length: float = 0.0
    mean_courses: float = 0.0
    min_workload: Optional[float] = None
    max_workload: Optional[float] = None
    mean_workload: float = 0.0
    course_frequency: Dict[str, int] = field(default_factory=dict)

    def most_common_courses(self, n: int = 5) -> List[Tuple[str, int]]:
        """The ``n`` most frequently elected courses across the set."""
        ranked = sorted(self.course_frequency.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]


def summarize_paths(
    paths: Iterable[LearningPath], catalog: Optional[Catalog] = None
) -> PathSetSummary:
    """Aggregate a path collection (streaming; paths may be a generator).

    Workload statistics are only computed when a ``catalog`` is supplied.
    """
    summary = PathSetSummary()
    total_length = 0
    total_courses = 0
    total_workload = 0.0
    for path in paths:
        summary.count += 1
        length = len(path)
        total_length += length
        summary.min_length = length if summary.min_length is None else min(summary.min_length, length)
        summary.max_length = length if summary.max_length is None else max(summary.max_length, length)
        taken = path.courses_taken()
        total_courses += len(taken)
        for course_id in taken:
            summary.course_frequency[course_id] = summary.course_frequency.get(course_id, 0) + 1
        if catalog is not None:
            workload = path.workload_cost(catalog)
            total_workload += workload
            summary.min_workload = (
                workload if summary.min_workload is None else min(summary.min_workload, workload)
            )
            summary.max_workload = (
                workload if summary.max_workload is None else max(summary.max_workload, workload)
            )
    if summary.count:
        summary.mean_length = total_length / summary.count
        summary.mean_courses = total_courses / summary.count
        if catalog is not None:
            summary.mean_workload = total_workload / summary.count
    return summary


def prefix_overlap_profile(paths: List[LearningPath]) -> List[int]:
    """Distinct selection-prefixes per depth across the path set.

    ``result[i]`` is the number of distinct length-``i+1`` selection
    prefixes.  A slowly growing profile early on quantifies the paper's
    observation that paths overlap heavily in the first semesters.
    """
    if not paths:
        return []
    max_depth = max(len(path) for path in paths)
    profile: List[int] = []
    for depth in range(1, max_depth + 1):
        prefixes = {path.selections[:depth] for path in paths if len(path) >= depth}
        profile.append(len(prefixes))
    return profile
