"""Learning-graph metrics — the quantities behind the paper's analysis.

§4.3 derives the per-node branching factor ``Σ_{i=1..m} C(|Y_i|, i)`` and
§5.2 explains pruning's effectiveness by the shape of the graph (heavy
early overlap, late branch-out).  This module computes those quantities
for a concrete exploration so the claims can be inspected, plotted, and
tested:

* :func:`branching_profile` — per-term option-set sizes and the predicted
  vs. actual branching factor;
* :func:`graph_shape` — node/edge/terminal counts per term for a built
  tree or merged DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

from ..core.options import selection_count
from ..graph.dag import MergedStatusDag
from ..graph.learning_graph import LearningGraph
from ..semester import Term

__all__ = ["TermBranching", "branching_profile", "graph_shape"]


@dataclass
class TermBranching:
    """Branching statistics for every explored status in one term."""

    term: Term
    statuses: int = 0
    min_options: int = 0
    max_options: int = 0
    mean_options: float = 0.0
    #: Σ over statuses of the §4.3 formula Σ_{i=1..m} C(|Y|, i).
    predicted_branches: int = 0
    #: Edges actually created out of this term's statuses.
    actual_branches: int = 0

    def describe(self) -> str:
        """One line per term, e.g. for a report table."""
        return (
            f"{self.term}: {self.statuses} statuses, |Y| in "
            f"[{self.min_options}, {self.max_options}] (mean "
            f"{self.mean_options:.1f}), predicted {self.predicted_branches} "
            f"branches, actual {self.actual_branches}"
        )


def _statuses_and_out_degrees(graph: Union[LearningGraph, MergedStatusDag]):
    if isinstance(graph, LearningGraph):
        for node_id in graph.node_ids():
            yield graph.status(node_id), graph.out_degree(node_id)
    elif isinstance(graph, MergedStatusDag):
        for key in graph.nodes():
            yield graph.status(key), len(graph.successors(key))
    else:
        raise TypeError(f"expected LearningGraph or MergedStatusDag, got {graph!r}")


def branching_profile(
    graph: Union[LearningGraph, MergedStatusDag], max_per_term: int
) -> List[TermBranching]:
    """Per-term branching statistics for a built graph.

    ``predicted_branches`` applies the paper's combination-count formula
    to every status's option set; ``actual_branches`` counts the edges
    the algorithm created (smaller when terminals stop expansion or
    pruning fires).
    """
    buckets: Dict[Term, TermBranching] = {}
    option_totals: Dict[Term, int] = {}
    for status, out_degree in _statuses_and_out_degrees(graph):
        bucket = buckets.get(status.term)
        if bucket is None:
            bucket = TermBranching(term=status.term, min_options=len(status.options))
            buckets[status.term] = bucket
            option_totals[status.term] = 0
        size = len(status.options)
        bucket.statuses += 1
        bucket.min_options = min(bucket.min_options, size)
        bucket.max_options = max(bucket.max_options, size)
        option_totals[status.term] += size
        bucket.predicted_branches += selection_count(size, max_per_term)
        bucket.actual_branches += out_degree
    for term, bucket in buckets.items():
        bucket.mean_options = option_totals[term] / bucket.statuses
    return [buckets[term] for term in sorted(buckets)]


@dataclass
class GraphShape:
    """Coarse shape summary of a built learning graph."""

    nodes: int
    edges: int
    terminals: Dict[str, int] = field(default_factory=dict)
    nodes_per_term: Dict[Term, int] = field(default_factory=dict)

    def widest_term(self) -> Term:
        """The term holding the most statuses."""
        return max(self.nodes_per_term, key=lambda t: (self.nodes_per_term[t], t.ordinal))


def graph_shape(graph: Union[LearningGraph, MergedStatusDag]) -> GraphShape:
    """Node/edge/terminal counts, bucketed per term."""
    terminals: Dict[str, int] = {}
    per_term: Dict[Term, int] = {}
    if isinstance(graph, LearningGraph):
        for node_id in graph.node_ids():
            term = graph.status(node_id).term
            per_term[term] = per_term.get(term, 0) + 1
            kind = graph.terminal_kind(node_id)
            if kind:
                terminals[kind] = terminals.get(kind, 0) + 1
        return GraphShape(
            nodes=graph.num_nodes,
            edges=graph.num_edges,
            terminals=terminals,
            nodes_per_term=per_term,
        )
    if isinstance(graph, MergedStatusDag):
        for key in graph.nodes():
            term = graph.status(key).term
            per_term[term] = per_term.get(term, 0) + 1
            kind = graph.terminal_kind(key)
            if kind:
                terminals[kind] = terminals.get(kind, 0) + 1
        return GraphShape(
            nodes=graph.num_nodes,
            edges=graph.num_edges,
            terminals=terminals,
            nodes_per_term=per_term,
        )
    raise TypeError(f"expected LearningGraph or MergedStatusDag, got {graph!r}")
