"""Plan robustness under schedule uncertainty.

Reliability ranking (§4.3.1) scores a plan by the product of its
offering probabilities.  This module turns that single number into an
actionable risk view:

* :func:`assess_plan` — per-step probabilities, the plan's weakest links
  (the specific course-term bets most likely to fall through), and the
  analytic reliability;
* :func:`monte_carlo_survival` — an empirical check: sample concrete
  schedules from the offering model (each course-term offered
  independently with its modelled probability) and measure how often the
  plan survives intact.  With independent offerings this estimates
  exactly the analytic product, which the test suite verifies within
  sampling tolerance — a useful cross-validation of both the model and
  the ranking's cost algebra.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..catalog import OfferingModel
from ..graph.path import LearningPath
from ..semester import Term

__all__ = ["StepRisk", "PlanRisk", "assess_plan", "monte_carlo_survival"]


@dataclass(frozen=True)
class StepRisk:
    """One course-term bet inside a plan."""

    term: Term
    course_id: str
    probability: float

    def describe(self) -> str:
        return f"{self.course_id} in {self.term}: offered with p={self.probability:.2f}"


@dataclass(frozen=True)
class PlanRisk:
    """Risk profile of one plan."""

    reliability: float
    steps: Tuple[StepRisk, ...]

    def weakest(self, n: int = 3) -> List[StepRisk]:
        """The ``n`` least certain course-term bets."""
        return sorted(self.steps, key=lambda s: (s.probability, str(s.term)))[:n]

    @property
    def certain(self) -> bool:
        """Whether every planned offering is guaranteed."""
        return all(step.probability >= 1.0 for step in self.steps)

    def describe(self) -> str:
        lines = [f"plan reliability: {self.reliability:.3f}"]
        if self.certain:
            lines.append("  every planned offering is certain")
        else:
            lines.append("  weakest links:")
            for step in self.weakest():
                if step.probability < 1.0:
                    lines.append(f"    - {step.describe()}")
        return "\n".join(lines)


def assess_plan(path: LearningPath, model: OfferingModel) -> PlanRisk:
    """Per-step risk breakdown plus the analytic reliability."""
    steps = []
    for term, selection in path:
        for course_id in sorted(selection):
            steps.append(
                StepRisk(
                    term=term,
                    course_id=course_id,
                    probability=model.probability(course_id, term),
                )
            )
    return PlanRisk(reliability=path.reliability(model), steps=tuple(steps))


def monte_carlo_survival(
    path: LearningPath,
    model: OfferingModel,
    trials: int = 2000,
    seed: int = 0,
) -> float:
    """Empirical survival rate of a plan over sampled schedules.

    Each trial independently realizes every planned course-term offering
    with its modelled probability; the plan survives a trial iff every
    planned offering materialized.  Returns the survival fraction, an
    unbiased estimator of :meth:`LearningPath.reliability`.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    rng = random.Random(seed)
    bets = [
        (course_id, term, model.probability(course_id, term))
        for term, selection in path
        for course_id in sorted(selection)
    ]
    survived = 0
    for _ in range(trials):
        if all(rng.random() < p for _cid, _term, p in bets):
            survived += 1
    return survived / trials
