"""Plan repair — recovering from schedule disruptions.

Reliability ranking prices the risk that a planned offering falls
through; this module handles the moment it actually does.  Given the
original plan and the term where reality diverged (a course cancelled, a
section full, a failed class), :func:`replan` rolls the student back to
their true status at that term, re-runs ranked exploration from there —
optionally with the disrupted course excluded — and reports the repaired
plan together with a diff against the original.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Optional

from ..catalog import Catalog
from ..core import ExplorationConfig, RankedResult, TimeRanking, generate_ranked
from ..core.ranking import RankingFunction
from ..errors import ExplorationError
from ..graph.path import LearningPath
from ..requirements import Goal
from ..semester import Term
from .compare import PathDiff

__all__ = ["RepairResult", "replan"]


@dataclass(frozen=True)
class RepairResult:
    """Outcome of a re-planning run."""

    original: LearningPath
    repaired: Optional[LearningPath]
    alternatives: RankedResult
    diff: Optional[PathDiff]
    delay_semesters: Optional[int]

    @property
    def recoverable(self) -> bool:
        """Whether any plan still reaches the goal by the deadline."""
        return self.repaired is not None

    def describe(self) -> str:
        if not self.recoverable:
            return "no plan reaches the goal by the deadline anymore"
        delay = self.delay_semesters or 0
        head = (
            "recovered with no delay"
            if delay <= 0
            else f"recovered with a {delay}-semester delay"
        )
        assert self.diff is not None
        return f"{head}; {self.diff.describe()}"


def replan(
    catalog: Catalog,
    goal: Goal,
    original: LearningPath,
    disrupted_term: Term,
    deadline: Term,
    dropped_courses: AbstractSet[str] = frozenset(),
    avoid_dropped: bool = False,
    ranking: Optional[RankingFunction] = None,
    config: Optional[ExplorationConfig] = None,
    k: int = 3,
) -> RepairResult:
    """Re-plan from the point a plan went off the rails.

    Parameters
    ----------
    original:
        The plan being followed.
    disrupted_term:
        The term whose selection did not happen as planned.  Everything
        *before* it is treated as actually completed.
    dropped_courses:
        Courses from the disrupted term's selection that did **not**
        complete (default: the whole selection).  Courses not listed are
        assumed completed as planned.
    avoid_dropped:
        When true, the replacement plans never retake the dropped
        courses (a cancelled seminar that will not return).
    ranking:
        Ranking for the replacement plans (default: time — finish as
        soon as possible).

    Returns
    -------
    RepairResult
        ``repaired`` is the best replacement plan *from the disruption
        point* (prefixed selections are not repeated in it);
        ``delay_semesters`` compares its completion term with the
        original plan's.
    """
    config = config or ExplorationConfig()
    ranking = ranking or TimeRanking()

    # Reconstruct the student's true status entering the disrupted term.
    completed = set(original.start.completed)
    planned_selection: Optional[AbstractSet[str]] = None
    for term, selection in original:
        if term < disrupted_term:
            completed |= selection
        elif term == disrupted_term:
            planned_selection = selection
            break
    if planned_selection is None:
        raise ExplorationError(
            f"{disrupted_term} is not a planned term of the original plan"
        )
    dropped = frozenset(dropped_courses) if dropped_courses else frozenset(planned_selection)
    unknown = dropped - planned_selection
    if unknown:
        raise ExplorationError(
            f"dropped courses {sorted(unknown)} were not planned in {disrupted_term}"
        )
    completed |= planned_selection - dropped

    if avoid_dropped:
        config = ExplorationConfig(
            max_courses_per_term=config.max_courses_per_term,
            avoid_courses=config.avoid_courses | dropped,
            empty_selection=config.empty_selection,
            enforce_min_selection=config.enforce_min_selection,
            max_nodes=config.max_nodes,
            schedule=config.schedule,
            constraints=config.constraints,
        )

    # The student lost the disrupted term: re-planning starts next term.
    restart = disrupted_term + 1
    alternatives = generate_ranked(
        catalog,
        restart,
        goal,
        deadline,
        k,
        ranking,
        completed=frozenset(completed),
        config=config,
    )

    if not alternatives.paths:
        return RepairResult(
            original=original,
            repaired=None,
            alternatives=alternatives,
            diff=None,
            delay_semesters=None,
        )

    repaired = alternatives.paths[0]
    delay = repaired.end.term - original.end.term

    # Diff against the original's tail from the same point, re-rooted at
    # the true status (course sets may differ because of the drop).
    diff = None
    if repaired.start.term == restart:
        try:
            original_tail_terms = {
                term: sel for term, sel in original if term >= restart
            }
            diff = _tail_diff(repaired, original_tail_terms)
        except ValueError:
            diff = None

    return RepairResult(
        original=original,
        repaired=repaired,
        alternatives=alternatives,
        diff=diff,
        delay_semesters=delay,
    )


def _tail_diff(repaired: LearningPath, original_tail: dict) -> PathDiff:
    """Diff the repaired plan against the original's remaining terms."""
    repaired_terms = {term: sel for term, sel in repaired}
    changes = []
    for term in sorted(set(repaired_terms) | set(original_tail)):
        sel_new = repaired_terms.get(term, frozenset())
        sel_old = original_tail.get(term, frozenset())
        if sel_new != sel_old:
            changes.append((term, sel_new, sel_old))
    new_courses = frozenset().union(*repaired_terms.values()) if repaired_terms else frozenset()
    old_courses = frozenset().union(*original_tail.values()) if original_tail else frozenset()
    divergence = changes[0][0] if changes else None
    shared = tuple(
        (term, repaired_terms[term])
        for term in sorted(repaired_terms)
        if original_tail.get(term) == repaired_terms[term]
        and (divergence is None or term < divergence)
    )
    return PathDiff(
        shared_prefix=shared,
        divergence_term=divergence,
        only_in_first=new_courses - old_courses,
        only_in_second=old_courses - new_courses,
        per_term_changes=tuple(changes),
    )
