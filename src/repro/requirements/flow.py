"""Maximum-flow solvers, implemented from scratch.

The paper computes ``left_i`` — the minimum number of courses still needed
to meet a degree requirement — "using Ford-Fulkerson max-flow algorithm"
(§4.2.1, citing Parameswaran et al.).  This module provides that substrate:
a small integer-capacity flow network with two solver implementations,

* :meth:`FlowNetwork.max_flow` with ``method="edmonds_karp"`` — the
  BFS-augmenting-path realization of Ford–Fulkerson (O(V·E²)), and
* ``method="dinic"`` — level-graph blocking flows (O(V²·E)), the default.

Both return identical values (property-tested against each other and
against ``networkx.maximum_flow`` when available); Dinic is measurably
faster on the bipartite requirement networks the degree goals build, which
the ablation benchmark quantifies.

Nodes are arbitrary hashable objects.  Parallel ``add_edge`` calls between
the same pair accumulate capacity.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Tuple

from ..obs.runtime import current_observability

__all__ = ["FlowNetwork", "max_flow"]

Node = Hashable


class _Edge:
    """A directed edge paired with its residual twin."""

    __slots__ = ("target", "capacity", "flow", "twin")

    def __init__(self, target: Node, capacity: int):
        self.target = target
        self.capacity = capacity
        self.flow = 0
        self.twin: "_Edge" = None  # type: ignore[assignment]

    @property
    def residual(self) -> int:
        return self.capacity - self.flow

    def push(self, amount: int) -> None:
        self.flow += amount
        self.twin.flow -= amount


class FlowNetwork:
    """A directed flow network with non-negative integer capacities."""

    def __init__(self) -> None:
        self._adjacency: Dict[Node, List[_Edge]] = {}
        self._forward: Dict[Tuple[Node, Node], _Edge] = {}

    def add_node(self, node: Node) -> None:
        """Ensure ``node`` exists (edges add their endpoints automatically)."""
        self._adjacency.setdefault(node, [])

    def add_edge(self, source: Node, target: Node, capacity: int) -> None:
        """Add capacity from ``source`` to ``target``.

        Repeated calls accumulate.  Self-loops are rejected (they can never
        carry useful flow and usually indicate a modelling bug).
        """
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if source == target:
            raise ValueError(f"self-loop on {source!r}")
        key = (source, target)
        existing = self._forward.get(key)
        if existing is not None:
            existing.capacity += capacity
            return
        forward = _Edge(target, capacity)
        backward = _Edge(source, 0)
        forward.twin = backward
        backward.twin = forward
        self._adjacency.setdefault(source, []).append(forward)
        self._adjacency.setdefault(target, []).append(backward)
        self._forward[key] = forward

    def nodes(self) -> Iterable[Node]:
        """All nodes (endpoints of any edge, plus explicitly added ones)."""
        return self._adjacency.keys()

    def capacity(self, source: Node, target: Node) -> int:
        """Total capacity currently assigned to ``source → target``."""
        edge = self._forward.get((source, target))
        return edge.capacity if edge is not None else 0

    def flow_on(self, source: Node, target: Node) -> int:
        """Flow pushed on ``source → target`` by the last ``max_flow`` call."""
        edge = self._forward.get((source, target))
        return max(edge.flow, 0) if edge is not None else 0

    def reset_flow(self) -> None:
        """Zero all flows so ``max_flow`` can be re-run from scratch."""
        for edges in self._adjacency.values():
            for edge in edges:
                edge.flow = 0

    # -- solvers ------------------------------------------------------------

    def max_flow(self, source: Node, sink: Node, method: str = "dinic") -> int:
        """Maximum ``source → sink`` flow value.

        ``method`` is ``"dinic"`` (default) or ``"edmonds_karp"``.  Flows
        are reset before solving, so repeated calls are independent.

        Solves run deep inside goal evaluation where no argument path
        exists, so this is the one place the engine consults the ambient
        :func:`~repro.obs.runtime.current_observability` — ``None`` (the
        overwhelmingly common case) costs a single contextvar read.
        """
        obs = current_observability()
        if obs is None:
            return self._solve(source, sink, method)
        with obs.phase("flow", method=method):
            return self._solve(source, sink, method)

    def _solve(self, source: Node, sink: Node, method: str) -> int:
        if source == sink:
            raise ValueError("source and sink must differ")
        if source not in self._adjacency or sink not in self._adjacency:
            return 0
        self.reset_flow()
        if method == "dinic":
            return self._dinic(source, sink)
        if method == "edmonds_karp":
            return self._edmonds_karp(source, sink)
        raise ValueError(f"unknown method {method!r}; use 'dinic' or 'edmonds_karp'")

    def _edmonds_karp(self, source: Node, sink: Node) -> int:
        total = 0
        while True:
            # BFS for the shortest augmenting path in the residual graph.
            parent_edge: Dict[Node, _Edge] = {}
            queue = deque([source])
            visited = {source}
            while queue and sink not in visited:
                node = queue.popleft()
                for edge in self._adjacency[node]:
                    if edge.residual > 0 and edge.target not in visited:
                        visited.add(edge.target)
                        parent_edge[edge.target] = edge
                        queue.append(edge.target)
            if sink not in visited:
                return total
            # Bottleneck along the path.
            bottleneck = None
            node = sink
            while node != source:
                edge = parent_edge[node]
                residual = edge.residual
                bottleneck = residual if bottleneck is None else min(bottleneck, residual)
                node = edge.twin.target
            assert bottleneck is not None and bottleneck > 0
            node = sink
            while node != source:
                edge = parent_edge[node]
                edge.push(bottleneck)
                node = edge.twin.target
            total += bottleneck

    def _dinic(self, source: Node, sink: Node) -> int:
        total = 0
        while True:
            level = self._bfs_levels(source, sink)
            if level is None:
                return total
            iterators = {node: 0 for node in self._adjacency}
            while True:
                pushed = self._dfs_push(source, sink, float("inf"), level, iterators)
                if pushed == 0:
                    break
                total += pushed

    def _bfs_levels(self, source: Node, sink: Node) -> Dict[Node, int] | None:
        level = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for edge in self._adjacency[node]:
                if edge.residual > 0 and edge.target not in level:
                    level[edge.target] = level[node] + 1
                    queue.append(edge.target)
        return level if sink in level else None

    def _dfs_push(
        self,
        node: Node,
        sink: Node,
        limit: float,
        level: Dict[Node, int],
        iterators: Dict[Node, int],
    ) -> int:
        if node == sink:
            return int(limit) if limit != float("inf") else _saturating(limit)
        edges = self._adjacency[node]
        while iterators[node] < len(edges):
            edge = edges[iterators[node]]
            if (
                edge.residual > 0
                and level.get(edge.target, -1) == level[node] + 1
            ):
                pushed = self._dfs_push(
                    edge.target, sink, min(limit, edge.residual), level, iterators
                )
                if pushed > 0:
                    edge.push(pushed)
                    return pushed
            iterators[node] += 1
        return 0


def _saturating(limit: float) -> int:
    # Only reachable when source == sink is prevented; keep a huge finite cap
    # so int() above never sees inf.
    return 2**62


def max_flow(
    edges: Iterable[Tuple[Node, Node, int]],
    source: Node,
    sink: Node,
    method: str = "dinic",
) -> int:
    """One-shot convenience: build a network from ``(u, v, capacity)``
    triples and return the max-flow value."""
    network = FlowNetwork()
    network.add_node(source)
    network.add_node(sink)
    for u, v, capacity in edges:
        network.add_edge(u, v, capacity)
    return network.max_flow(source, sink, method=method)
