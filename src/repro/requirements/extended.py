"""Additional goal types (paper §6: "higher expressivity … with respect
to the goal requirements").

All goals in this library must be **monotone**: adding completed courses
can never un-satisfy them, and ``remaining_courses`` never increases as
the completed set grows.  Monotonicity is what makes the goal-driven
algorithm's early termination ("stop at the first goal status") and the
pruning strategies sound.  Both goal types here are monotone, and the
test suite's property tests exercise them through the full algorithm
stack.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Any, Dict, FrozenSet, Iterable, Mapping

from ..errors import GoalError
from .goals import Goal

__all__ = ["CreditGoal", "TagCountGoal"]


class CreditGoal(Goal):
    """Accumulate at least ``min_credits`` from a pool of courses.

    Parameters
    ----------
    credits:
        ``{course_id: credit hours}`` for every course that can
        contribute.  Courses outside the mapping contribute nothing.
    min_credits:
        The target.
    name:
        Label for ``describe()``.

    ``remaining_courses`` returns the *minimum number of additional
    courses* that could reach the target — filling with the
    highest-credit pending courses first.  That greedy count is exact for
    this goal (any feasible completion needs at least that many courses)
    and therefore safe for time-based pruning.
    """

    def __init__(
        self,
        credits: Mapping[str, int],
        min_credits: int,
        name: str = "credits",
    ):
        if min_credits < 0:
            raise GoalError(f"min_credits must be >= 0, got {min_credits}")
        self._credits: Dict[str, int] = {}
        for course_id, value in credits.items():
            if value < 0:
                raise GoalError(f"negative credits for {course_id!r}: {value}")
            if value > 0:
                self._credits[course_id] = value
        self._min_credits = min_credits
        self._name = name
        self._attainable = sum(self._credits.values())

    @property
    def min_credits(self) -> int:
        """The credit target."""
        return self._min_credits

    def earned(self, completed: AbstractSet[str]) -> int:
        """Credits the completed set contributes."""
        return sum(self._credits.get(course_id, 0) for course_id in completed)

    def is_satisfied(self, completed: AbstractSet[str]) -> bool:
        return self.earned(completed) >= self._min_credits

    def remaining_courses(self, completed: AbstractSet[str]) -> float:
        missing = self._min_credits - self.earned(completed)
        if missing <= 0:
            return 0
        pending = sorted(
            (
                value
                for course_id, value in self._credits.items()
                if course_id not in completed
            ),
            reverse=True,
        )
        if sum(pending) < missing:
            return math.inf
        count = 0
        for value in pending:
            count += 1
            missing -= value
            if missing <= 0:
                return count
        return math.inf  # unreachable: guarded by the sum check

    def courses(self) -> FrozenSet[str]:
        return frozenset(self._credits)

    def describe(self) -> str:
        return f"{self._name}: at least {self._min_credits} credits"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "credits",
            "name": self._name,
            "min_credits": self._min_credits,
            "credits": dict(sorted(self._credits.items())),
        }


class TagCountGoal(Goal):
    """Complete at least ``required`` of the courses carrying a tag.

    Built from a catalog ("3 systems courses") or from an explicit id
    pool.  Equivalent to a single
    :class:`~repro.requirements.goals.RequirementGroup` but cheaper: no
    flow solve, exact ``remaining_courses`` by counting.
    """

    def __init__(self, tag: str, course_ids: Iterable[str], required: int):
        self._tag = tag
        self._pool = frozenset(course_ids)
        self._required = required
        if required < 0:
            raise GoalError(f"required must be >= 0, got {required}")
        if required > len(self._pool):
            raise GoalError(
                f"requires {required} {tag!r} courses but only "
                f"{len(self._pool)} exist"
            )

    @classmethod
    def from_catalog(cls, catalog, tag: str, required: int) -> "TagCountGoal":
        """Pool = every catalog course carrying ``tag``."""
        return cls(tag, catalog.courses_with_tag(tag), required)

    @property
    def required(self) -> int:
        """How many tagged courses are needed."""
        return self._required

    def is_satisfied(self, completed: AbstractSet[str]) -> bool:
        return len(self._pool & completed) >= self._required

    def remaining_courses(self, completed: AbstractSet[str]) -> float:
        return max(0, self._required - len(self._pool & completed))

    def courses(self) -> FrozenSet[str]:
        return self._pool

    def describe(self) -> str:
        return f"at least {self._required} {self._tag!r} courses"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "tag_count",
            "tag": self._tag,
            "courses": sorted(self._pool),
            "required": self._required,
        }
