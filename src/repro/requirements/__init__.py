"""Goal requirements and the machinery that evaluates them.

A *goal requirement* is the paper's condition on a future enrollment status
(Section 2, "Exploration Tasks"): complete a set of interesting courses,
finish a degree (7 core + 5 electives in the evaluation), or any boolean
condition over completed courses.

Beyond a yes/no test, the goal-driven algorithm's time-based pruning
(§4.2.1) needs ``left_i`` — the **minimum number of additional courses**
required to satisfy the goal — computed, per the paper's citation of
Parameswaran et al. (TOIS 2011), with Ford–Fulkerson max-flow.  That flow
solver lives in :mod:`repro.requirements.flow`, implemented from scratch
(Edmonds–Karp and Dinic variants) and cross-checked against networkx in the
test suite.
"""

from .flow import FlowNetwork, max_flow
from .goals import (
    AllOfGoal,
    AnyOfGoal,
    CourseSetGoal,
    DegreeGoal,
    ExpressionGoal,
    Goal,
    RequirementGroup,
)
from .extended import CreditGoal, TagCountGoal
from .progress import GoalProgress, GroupProgress, progress_report

__all__ = [
    "FlowNetwork",
    "max_flow",
    "Goal",
    "CourseSetGoal",
    "ExpressionGoal",
    "RequirementGroup",
    "DegreeGoal",
    "AllOfGoal",
    "AnyOfGoal",
    "CreditGoal",
    "TagCountGoal",
    "GoalProgress",
    "GroupProgress",
    "progress_report",
]
