"""Goal requirements: degree rules, course sets, boolean conditions.

A :class:`Goal` answers the two questions the goal-driven algorithm asks of
an enrollment status:

* :meth:`Goal.is_satisfied` — does this completed set meet the requirement?
  (the terminal test, and the heart of availability pruning §4.2.2), and
* :meth:`Goal.remaining_courses` — ``left_i``, the minimum number of
  *additional* courses needed (the quantity inside time-based pruning's
  ``min_i = left_i − m·(d − s_i − 1)``, §4.2.1).

Lemma 1's soundness argument requires ``left_i`` to never **over**-estimate.
:class:`CourseSetGoal`, :class:`ExpressionGoal`, :class:`RequirementGroup`
and :class:`DegreeGoal` compute it exactly; the composite goals return an
admissible lower bound (documented per class), which keeps pruning sound at
the cost of pruning slightly less.

:class:`DegreeGoal` is the paper's evaluation goal ("7 core courses and 5
elective courses"): a set of k-of-group requirements where one course may
satisfy at most one group (no double counting), solved with the max-flow
substrate exactly as the paper prescribes.
"""

from __future__ import annotations

import math
from typing import (
    AbstractSet,
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Mapping,
    Sequence,
    Tuple,
)

from ..catalog.prereq import PrereqExpr, from_dict as prereq_from_dict
from ..errors import GoalError
from .flow import FlowNetwork

__all__ = [
    "Goal",
    "CourseSetGoal",
    "ExpressionGoal",
    "RequirementGroup",
    "DegreeGoal",
    "AllOfGoal",
    "AnyOfGoal",
    "goal_from_dict",
]


class Goal:
    """Abstract goal requirement over completed-course sets."""

    def is_satisfied(self, completed: AbstractSet[str]) -> bool:
        """Whether a student with exactly ``completed`` meets the goal."""
        raise NotImplementedError

    def remaining_courses(self, completed: AbstractSet[str]) -> float:
        """``left_i``: minimum additional courses needed (0 when satisfied).

        Must never over-estimate (Lemma 1 soundness); ``math.inf`` means the
        goal is unsatisfiable no matter what is taken.
        """
        raise NotImplementedError

    def courses(self) -> FrozenSet[str]:
        """Every course id that can contribute to satisfying the goal."""
        raise NotImplementedError

    def describe(self) -> str:
        """A one-line human-readable description."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation; inverse of :func:`goal_from_dict`."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.describe()


class CourseSetGoal(Goal):
    """Complete every course in a fixed set.

    This is the paper's "complete a given set of interesting courses" task;
    ``remaining_courses`` is exactly ``|S − X|``.
    """

    def __init__(self, course_ids: Iterable[str]):
        self._course_ids = frozenset(course_ids)
        if not self._course_ids:
            raise GoalError("CourseSetGoal needs at least one course")
        for cid in self._course_ids:
            if not isinstance(cid, str) or not cid:
                raise GoalError(f"bad course id {cid!r}")

    @property
    def course_ids(self) -> FrozenSet[str]:
        """The required courses."""
        return self._course_ids

    def is_satisfied(self, completed: AbstractSet[str]) -> bool:
        return self._course_ids <= completed

    def remaining_courses(self, completed: AbstractSet[str]) -> float:
        return len(self._course_ids - completed)

    def courses(self) -> FrozenSet[str]:
        return self._course_ids

    def describe(self) -> str:
        return f"complete {{{', '.join(sorted(self._course_ids))}}}"

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "course_set", "courses": sorted(self._course_ids)}

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CourseSetGoal) and other._course_ids == self._course_ids

    def __hash__(self) -> int:
        return hash(("CourseSetGoal", self._course_ids))


class ExpressionGoal(Goal):
    """A goal given as an arbitrary boolean expression over completions.

    The paper lets users state goal requirements "as a boolean expression on
    the student's enrollment status"; this wraps the same expression AST the
    prerequisite conditions use.  ``remaining_courses`` is exact via DNF.
    """

    def __init__(self, expression: PrereqExpr, label: str = ""):
        if not isinstance(expression, PrereqExpr):
            raise GoalError(f"expected PrereqExpr, got {expression!r}")
        self._expression = expression
        self._label = label

    @property
    def expression(self) -> PrereqExpr:
        """The underlying boolean expression."""
        return self._expression

    def is_satisfied(self, completed: AbstractSet[str]) -> bool:
        return self._expression.evaluate(completed)

    def remaining_courses(self, completed: AbstractSet[str]) -> float:
        return self._expression.min_courses_to_satisfy(completed)

    def courses(self) -> FrozenSet[str]:
        return self._expression.courses()

    def describe(self) -> str:
        return self._label or f"satisfy {self._expression.to_string()}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "expression",
            "expression": self._expression.to_dict(),
            "label": self._label,
        }

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ExpressionGoal) and other._expression == self._expression

    def __hash__(self) -> int:
        return hash(("ExpressionGoal", self._expression))


class RequirementGroup:
    """"At least ``required`` of ``courses``" — one row of a degree rule."""

    __slots__ = ("name", "course_ids", "required")

    def __init__(self, name: str, course_ids: Iterable[str], required: int):
        self.name = name
        self.course_ids = frozenset(course_ids)
        self.required = required
        if required < 0:
            raise GoalError(f"group {name!r}: required must be >= 0, got {required}")
        if required > len(self.course_ids):
            raise GoalError(
                f"group {name!r}: requires {required} of only "
                f"{len(self.course_ids)} courses"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "courses": sorted(self.course_ids),
            "required": self.required,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RequirementGroup":
        return cls(data["name"], data["courses"], data["required"])

    def __repr__(self) -> str:
        return f"RequirementGroup({self.name!r}, {self.required} of {len(self.course_ids)})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RequirementGroup)
            and other.name == self.name
            and other.course_ids == self.course_ids
            and other.required == self.required
        )

    def __hash__(self) -> int:
        return hash((self.name, self.course_ids, self.required))


class DegreeGoal(Goal):
    """A degree requirement: several k-of-group rules, no double counting.

    One completed course may be *assigned* to at most one group, so when
    groups overlap (a course that is both core-eligible and
    elective-eligible) satisfaction is an assignment problem.  The paper
    computes ``left_i`` for exactly this shape with Ford–Fulkerson; we build
    the standard network

        source → course (capacity 1) → each accepting group → sink
        (capacity = group.required)

    and read off ``left_i = total seats − max-flow(completed courses)``.
    Maximizing seats filled by already-completed courses minimizes the
    additional courses needed (transversal-matroid exchange), so the value
    is exact — the test suite verifies this against brute force.
    """

    #: Cap on the per-goal memo of ``_filled_seats`` results.  Each entry is
    #: one frozenset key and an int; the cap bounds memory during frontier
    #: runs that touch millions of distinct completed sets.
    _CACHE_LIMIT = 300_000

    def __init__(self, groups: Sequence[RequirementGroup], name: str = "degree"):
        self._groups = tuple(groups)
        self._name = name
        if not self._groups:
            raise GoalError("DegreeGoal needs at least one requirement group")
        names = [g.name for g in self._groups]
        if len(set(names)) != len(names):
            raise GoalError(f"duplicate group names in {names}")
        self._total_required = sum(g.required for g in self._groups)
        self._all_courses = frozenset().union(*(g.course_ids for g in self._groups))
        # Memo for _filled_seats: generators evaluate the same completed set
        # several times per node (terminal test, left_i, selection floor).
        self._seats_cache: Dict[FrozenSet[str], int] = {}
        # A course set can never fill more seats than it has members, so the
        # goal is unsatisfiable iff even the full course universe cannot.
        self._satisfiable = self._filled_seats(self._all_courses) >= self._total_required

    @property
    def groups(self) -> Tuple[RequirementGroup, ...]:
        """The requirement groups."""
        return self._groups

    @property
    def total_required(self) -> int:
        """Total number of seats across all groups."""
        return self._total_required

    @classmethod
    def from_core_electives(
        cls,
        core: Iterable[str],
        electives: Iterable[str],
        electives_required: int,
        name: str = "major",
    ) -> "DegreeGoal":
        """The paper's evaluation goal: all of ``core`` plus
        ``electives_required`` from ``electives``."""
        core = frozenset(core)
        return cls(
            (
                RequirementGroup("core", core, len(core)),
                RequirementGroup("electives", electives, electives_required),
            ),
            name=name,
        )

    def _filled_seats(self, completed: AbstractSet[str]) -> int:
        """Max seats fillable by ``completed`` (one course, one seat)."""
        relevant = frozenset(completed) & self._all_courses
        if not relevant:
            return 0
        cached = self._seats_cache.get(relevant)
        if cached is not None:
            return cached
        result = self._solve_seats(relevant)
        if len(self._seats_cache) >= self._CACHE_LIMIT:
            self._seats_cache.clear()
        self._seats_cache[relevant] = result
        return result

    def _solve_seats(self, relevant: FrozenSet[str]) -> int:
        network = FlowNetwork()
        source, sink = ("src",), ("snk",)  # tuples cannot collide with course ids
        network.add_node(source)
        network.add_node(sink)
        for group in self._groups:
            if group.required > 0:
                network.add_edge(("group", group.name), sink, group.required)
        for course_id in relevant:
            network.add_edge(source, ("course", course_id), 1)
            for group in self._groups:
                if group.required > 0 and course_id in group.course_ids:
                    network.add_edge(("course", course_id), ("group", group.name), 1)
        return network.max_flow(source, sink)

    def is_satisfied(self, completed: AbstractSet[str]) -> bool:
        return self._filled_seats(completed) >= self._total_required

    def remaining_courses(self, completed: AbstractSet[str]) -> float:
        if not self._satisfiable:
            return math.inf
        return self._total_required - self._filled_seats(completed)

    def assignment(self, completed: AbstractSet[str]) -> Dict[str, str]:
        """A maximal ``{course_id: group name}`` assignment — the audit view
        a front-end shows the student."""
        relevant = completed & self._all_courses
        network = FlowNetwork()
        source, sink = ("src",), ("snk",)
        network.add_node(source)
        network.add_node(sink)
        for group in self._groups:
            if group.required > 0:
                network.add_edge(("group", group.name), sink, group.required)
        for course_id in relevant:
            network.add_edge(source, ("course", course_id), 1)
            for group in self._groups:
                if group.required > 0 and course_id in group.course_ids:
                    network.add_edge(("course", course_id), ("group", group.name), 1)
        network.max_flow(source, sink)
        result = {}
        for course_id in relevant:
            for group in self._groups:
                if network.flow_on(("course", course_id), ("group", group.name)) > 0:
                    result[course_id] = group.name
                    break
        return result

    def courses(self) -> FrozenSet[str]:
        return self._all_courses

    def describe(self) -> str:
        parts = ", ".join(
            f"{g.required} of {len(g.course_ids)} {g.name}" for g in self._groups
        )
        return f"{self._name}: {parts}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "degree",
            "name": self._name,
            "groups": [g.to_dict() for g in self._groups],
        }

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DegreeGoal) and other._groups == self._groups

    def __hash__(self) -> int:
        return hash(("DegreeGoal", self._groups))


class AllOfGoal(Goal):
    """Conjunction of goals.

    ``remaining_courses`` returns the **maximum** over children — an
    admissible lower bound (a course set satisfying all children must
    satisfy the most demanding one), not necessarily the exact minimum when
    children need disjoint courses.  Pruning stays sound; it just fires a
    little later than an exact bound would allow.
    """

    def __init__(self, goals: Sequence[Goal]):
        self._goals = tuple(goals)
        if not self._goals:
            raise GoalError("AllOfGoal needs at least one goal")

    @property
    def goals(self) -> Tuple[Goal, ...]:
        """The child goals."""
        return self._goals

    def is_satisfied(self, completed: AbstractSet[str]) -> bool:
        return all(g.is_satisfied(completed) for g in self._goals)

    def remaining_courses(self, completed: AbstractSet[str]) -> float:
        return max(g.remaining_courses(completed) for g in self._goals)

    def courses(self) -> FrozenSet[str]:
        return frozenset().union(*(g.courses() for g in self._goals))

    def describe(self) -> str:
        return " and ".join(f"({g.describe()})" for g in self._goals)

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "all_of", "goals": [g.to_dict() for g in self._goals]}


class AnyOfGoal(Goal):
    """Disjunction of goals.

    ``remaining_courses`` is the minimum over children — exact whenever the
    children are exact (satisfying the cheapest child satisfies the
    disjunction).
    """

    def __init__(self, goals: Sequence[Goal]):
        self._goals = tuple(goals)
        if not self._goals:
            raise GoalError("AnyOfGoal needs at least one goal")

    @property
    def goals(self) -> Tuple[Goal, ...]:
        """The child goals."""
        return self._goals

    def is_satisfied(self, completed: AbstractSet[str]) -> bool:
        return any(g.is_satisfied(completed) for g in self._goals)

    def remaining_courses(self, completed: AbstractSet[str]) -> float:
        return min(g.remaining_courses(completed) for g in self._goals)

    def courses(self) -> FrozenSet[str]:
        return frozenset().union(*(g.courses() for g in self._goals))

    def describe(self) -> str:
        return " or ".join(f"({g.describe()})" for g in self._goals)

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "any_of", "goals": [g.to_dict() for g in self._goals]}


def goal_from_dict(data: Mapping[str, Any]) -> Goal:
    """Rebuild a goal from its :meth:`Goal.to_dict` representation."""
    kind = data.get("type")
    if kind == "course_set":
        return CourseSetGoal(data["courses"])
    if kind == "expression":
        return ExpressionGoal(prereq_from_dict(data["expression"]), data.get("label", ""))
    if kind == "degree":
        return DegreeGoal(
            [RequirementGroup.from_dict(g) for g in data["groups"]],
            name=data.get("name", "degree"),
        )
    if kind == "all_of":
        return AllOfGoal([goal_from_dict(g) for g in data["goals"]])
    if kind == "any_of":
        return AnyOfGoal([goal_from_dict(g) for g in data["goals"]])
    raise GoalError(f"unknown goal type {kind!r}")
