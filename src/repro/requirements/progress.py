"""Goal progress reports — the degree-audit view.

Front-ends need more than "satisfied: no"; they need *where the student
stands*: which requirement groups are filled by what, what is missing,
how many courses remain.  :func:`progress_report` builds a structured
:class:`GoalProgress` for any goal, with per-group detail for
:class:`~repro.requirements.goals.DegreeGoal`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import AbstractSet, FrozenSet, List

from .extended import CreditGoal, TagCountGoal
from .goals import CourseSetGoal, DegreeGoal, Goal

__all__ = ["GroupProgress", "GoalProgress", "progress_report"]


@dataclass(frozen=True)
class GroupProgress:
    """Standing against one requirement group (or pseudo-group)."""

    name: str
    required: int
    filled: int
    assigned_courses: FrozenSet[str]
    missing_options: FrozenSet[str]

    @property
    def complete(self) -> bool:
        """Whether the group is fully satisfied."""
        return self.filled >= self.required

    def describe(self) -> str:
        """One line, e.g. ``core: 5/7 (missing from: …)``."""
        text = f"{self.name}: {self.filled}/{self.required}"
        if not self.complete and self.missing_options:
            options = ", ".join(sorted(self.missing_options)[:6])
            more = len(self.missing_options) - 6
            if more > 0:
                options += f", … +{more}"
            text += f" (eligible: {options})"
        return text


@dataclass(frozen=True)
class GoalProgress:
    """Full audit: overall standing plus per-group breakdown."""

    goal_description: str
    satisfied: bool
    remaining_courses: float
    groups: List[GroupProgress] = field(default_factory=list)

    def describe(self) -> str:
        """A multi-line human-readable audit."""
        status = "SATISFIED" if self.satisfied else (
            "unsatisfiable" if math.isinf(self.remaining_courses)
            else f"{int(self.remaining_courses)} courses to go"
        )
        lines = [f"{self.goal_description} — {status}"]
        for group in self.groups:
            lines.append(f"  {group.describe()}")
        return "\n".join(lines)


def _degree_groups(goal: DegreeGoal, completed: AbstractSet[str]) -> List[GroupProgress]:
    assignment = goal.assignment(completed)
    groups = []
    for group in goal.groups:
        assigned = frozenset(
            course for course, name in assignment.items() if name == group.name
        )
        groups.append(
            GroupProgress(
                name=group.name,
                required=group.required,
                filled=len(assigned),
                assigned_courses=assigned,
                missing_options=group.course_ids - frozenset(completed),
            )
        )
    return groups


def progress_report(goal: Goal, completed: AbstractSet[str]) -> GoalProgress:
    """Audit ``completed`` against ``goal``.

    Per-group detail is produced for :class:`DegreeGoal`; other goal
    types get a single pseudo-group summarizing their state.
    """
    completed = frozenset(completed)
    remaining = goal.remaining_courses(completed)
    satisfied = goal.is_satisfied(completed)

    if isinstance(goal, DegreeGoal):
        groups = _degree_groups(goal, completed)
    elif isinstance(goal, CourseSetGoal):
        done = goal.course_ids & completed
        groups = [
            GroupProgress(
                name="courses",
                required=len(goal.course_ids),
                filled=len(done),
                assigned_courses=done,
                missing_options=goal.course_ids - completed,
            )
        ]
    elif isinstance(goal, TagCountGoal):
        done = goal.courses() & completed
        groups = [
            GroupProgress(
                name="tagged courses",
                required=goal.required,
                filled=len(done),
                assigned_courses=done,
                missing_options=goal.courses() - completed,
            )
        ]
    elif isinstance(goal, CreditGoal):
        done = goal.courses() & completed
        groups = [
            GroupProgress(
                name="credits",
                required=goal.min_credits,
                filled=goal.earned(completed),
                assigned_courses=done,
                missing_options=goal.courses() - completed,
            )
        ]
    else:
        done = goal.courses() & completed
        groups = [
            GroupProgress(
                name="progress",
                required=int(remaining + len(done)) if not math.isinf(remaining) else 0,
                filled=len(done),
                assigned_courses=done,
                missing_options=goal.courses() - completed,
            )
        ]

    return GoalProgress(
        goal_description=goal.describe(),
        satisfied=satisfied,
        remaining_courses=remaining,
        groups=groups,
    )
