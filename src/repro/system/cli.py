"""Command-line front-end for CourseNavigator.

Installed as the ``coursenavigator`` console script.  Subcommands mirror
the exploration tasks:

.. code-block:: console

    coursenavigator catalog
    coursenavigator deadline --start "Fall 2014" --end "Fall 2015"
    coursenavigator goal --start "Fall 2012" --end "Fall 2015" --count-only
    coursenavigator goal --start "Fall 2013" --end "Fall 2015" --workers 4
    coursenavigator ranked --start "Fall 2013" --end "Fall 2015" -k 5 \\
        --ranking workload
    coursenavigator explain --start "Fall 2013" --end "Fall 2015" \\
        --why "COSI 118a" --out audit.jsonl
    coursenavigator transcripts --semesters 6 --students 20

By default commands run against the built-in Brandeis-style evaluation
catalog; pass ``--catalog FILE.json`` (a file produced by
:func:`repro.parsing.save_catalog`) to explore your own.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..analysis import summarize_paths
from ..core import ExplorationConfig
from ..data import (
    brandeis_catalog,
    brandeis_major_goal,
    brandeis_offering_model,
    simulate_transcripts,
    start_term_for_semesters,
)
from ..data.brandeis import EVALUATION_END_TERM, course_rows
from ..errors import BudgetExceededError, CourseNavigatorError
from ..obs import (
    DecisionRecorder,
    ExplorationBudget,
    JsonlSink,
    MetricsRegistry,
    MetricsServer,
    ProgressPrinter,
    ProgressTracker,
    Tracer,
)
from ..cache import ExplorationCache
from ..parsing import load_catalog
from ..requirements import CourseSetGoal, Goal
from ..semester import Term
from .navigator import CourseNavigator
from .visualizer import render_path_table, render_ranked

__all__ = ["main", "build_parser"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--catalog", metavar="FILE", help="catalog JSON (default: built-in Brandeis dataset)"
    )
    parser.add_argument("--start", required=True, help="start term, e.g. 'Fall 2013'")
    parser.add_argument("--end", required=True, help="end term, e.g. 'Fall 2015'")
    parser.add_argument(
        "--completed", nargs="*", default=[], metavar="COURSE", help="already-completed courses"
    )
    parser.add_argument(
        "-m",
        "--max-per-term",
        type=int,
        default=3,
        help="max courses per semester (paper default: 3)",
    )
    parser.add_argument(
        "--avoid", nargs="*", default=[], metavar="COURSE", help="courses to avoid"
    )
    parser.add_argument(
        "--max-nodes", type=int, default=None, help="abort after this many graph nodes"
    )
    parser.add_argument(
        "--limit", type=int, default=20, help="max paths to print (default 20)"
    )
    parser.add_argument(
        "--trace",
        metavar="FILE.jsonl",
        default=None,
        help="write a JSONL span trace of the exploration run to FILE",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write engine metrics to FILE (.json for a JSON snapshot, "
        "anything else for Prometheus text exposition)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print a live progress line (nodes, frontier, ETA) to stderr",
    )
    parser.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        metavar="PORT",
        help="serve Prometheus text at /metrics and live progress JSON at "
        "/progress on 127.0.0.1:PORT for the run's duration (0 picks an "
        "ephemeral port; the resolved address is printed to stderr)",
    )
    parser.add_argument(
        "--wall-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="abort the run after this much wall-clock time",
    )
    parser.add_argument(
        "--node-budget",
        type=int,
        default=None,
        metavar="N",
        help="abort the run after creating this many search nodes",
    )
    parser.add_argument(
        "--memory-budget-mb",
        type=float,
        default=None,
        metavar="MB",
        help="abort the run when process memory exceeds this many MiB",
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="memoize flow/option-set/pruning computations during the run "
        "(output-identical; --no-cache runs the bare engine)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persist the flow memo under DIR (keyed by catalog content "
        "fingerprint, so catalog edits cold-start automatically); later "
        "runs against the same catalog warm-start from it",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard the exploration across N worker processes with a "
        "deterministic merge (0 picks an automatic pool size; "
        "default: run serially)",
    )
    parser.add_argument(
        "--split-depth",
        type=int,
        default=None,
        metavar="DEPTH",
        help="frontier depth at which subtrees are handed to workers "
        "(default: chosen from the horizon; only used with --workers)",
    )


def _add_explain_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--explain",
        metavar="FILE.jsonl",
        default=None,
        help="record every expansion/prune/terminal decision to FILE "
        "(one JSON event per line; inspect with 'coursenavigator explain')",
    )


def _add_goal_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--goal-courses",
        nargs="*",
        default=None,
        metavar="COURSE",
        help="goal = complete these courses (default: the built-in CS major)",
    )
    parser.add_argument(
        "--goal-file",
        metavar="FILE",
        default=None,
        help="goal = the JSON goal description in FILE "
        "(see repro.requirements.goals.goal_from_dict)",
    )
    parser.add_argument(
        "--electives-required",
        type=int,
        default=5,
        help="electives required by the built-in major goal (default 5)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="coursenavigator",
        description="Interactive learning path exploration (CourseNavigator reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    catalog_cmd = sub.add_parser("catalog", help="list the catalog's courses")
    catalog_cmd.add_argument("--catalog", metavar="FILE")

    deadline_cmd = sub.add_parser(
        "deadline", help="all learning paths until an end semester (Algorithm 1)"
    )
    _add_common(deadline_cmd)
    deadline_cmd.add_argument(
        "--count-only",
        action="store_true",
        help="report the exact path count via the merged DAG (no enumeration)",
    )

    goal_cmd = sub.add_parser(
        "goal", help="learning paths that meet a goal by the end semester"
    )
    _add_common(goal_cmd)
    _add_goal_options(goal_cmd)
    goal_cmd.add_argument("--no-prune", action="store_true", help="disable pruning (baseline)")
    goal_cmd.add_argument(
        "--count-only",
        action="store_true",
        help="report the exact goal-path count via the merged DAG",
    )
    _add_explain_option(goal_cmd)

    ranked_cmd = sub.add_parser("ranked", help="top-k goal paths under a ranking")
    _add_common(ranked_cmd)
    _add_goal_options(ranked_cmd)
    ranked_cmd.add_argument("-k", type=int, default=5, help="how many paths (default 5)")
    ranked_cmd.add_argument(
        "--ranking",
        choices=("time", "workload", "reliability"),
        default="time",
        help="ranking function (default time)",
    )
    _add_explain_option(ranked_cmd)

    explain_cmd = sub.add_parser(
        "explain",
        help="run a goal exploration with decision auditing and report why "
        "each subtree was cut (firing strategy + bound values)",
    )
    _add_common(explain_cmd)
    _add_goal_options(explain_cmd)
    explain_cmd.add_argument(
        "--no-prune", action="store_true", help="disable pruning (baseline audit)"
    )
    explain_cmd.add_argument(
        "--out",
        metavar="FILE.jsonl",
        default=None,
        help="also save the decision events to FILE (one JSON event per line)",
    )
    explain_cmd.add_argument(
        "--json", action="store_true", help="print the report as JSON instead of text"
    )
    explain_cmd.add_argument(
        "--why",
        metavar="COURSE",
        default=None,
        help="answer 'why was COURSE never part of a returned path?'",
    )
    explain_cmd.add_argument(
        "--max-pruned",
        type=int,
        default=8,
        help="pruned decisions to detail in the report (default 8)",
    )

    transcripts_cmd = sub.add_parser(
        "transcripts", help="simulate transcripts and check containment (§5.2)"
    )
    transcripts_cmd.add_argument("--semesters", type=int, default=6)
    transcripts_cmd.add_argument("--students", type=int, default=83)
    transcripts_cmd.add_argument("--seed", type=int, default=2016)
    transcripts_cmd.add_argument("-m", "--max-per-term", type=int, default=3)

    audit_cmd = sub.add_parser(
        "audit", help="degree-audit a set of completed courses against a goal"
    )
    audit_cmd.add_argument("--catalog", metavar="FILE")
    audit_cmd.add_argument(
        "--completed", nargs="*", default=[], metavar="COURSE",
        help="already-completed courses",
    )
    _add_goal_options(audit_cmd)

    export_cmd = sub.add_parser(
        "export", help="write a learning graph as DOT or JSON for the visualizer"
    )
    _add_common(export_cmd)
    _add_goal_options(export_cmd)
    export_cmd.add_argument(
        "--format", choices=("dot", "json"), default="dot", help="output format"
    )
    export_cmd.add_argument(
        "--output", required=True, metavar="FILE", help="file to write"
    )
    export_cmd.add_argument(
        "--max-graph-nodes", type=int, default=500,
        help="truncate DOT output beyond this many nodes (default 500)",
    )

    lint_cmd = sub.add_parser(
        "lint", help="sanity-check a catalog (reachability, dead courses, …)"
    )
    lint_cmd.add_argument("--catalog", metavar="FILE")
    lint_cmd.add_argument(
        "--errors-only", action="store_true", help="suppress warnings and infos"
    )

    return parser


def _make_cache(args: argparse.Namespace, catalog) -> Optional[ExplorationCache]:
    """The run's :class:`~repro.cache.ExplorationCache` (``None`` when off).

    Kept on ``args._cache`` so :func:`main`'s cleanup can save the
    persistent store and report hit rates after the command finishes.
    """
    if not getattr(args, "cache", False):
        return None
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        cache = ExplorationCache.with_store(catalog, cache_dir)
    else:
        cache = ExplorationCache()
    args._cache = cache
    return cache


def _load(args: argparse.Namespace) -> CourseNavigator:
    tracer = getattr(args, "_tracer", None)
    metrics = getattr(args, "_metrics", None)
    decisions = getattr(args, "_decisions", None)
    progress = getattr(args, "_progress", None)
    budget = getattr(args, "_budget", None)
    if getattr(args, "catalog", None):
        catalog = load_catalog(args.catalog)
        return CourseNavigator(
            catalog,
            tracer=tracer,
            metrics=metrics,
            decisions=decisions,
            progress=progress,
            budget=budget,
            cache=_make_cache(args, catalog),
        )
    catalog = brandeis_catalog()
    return CourseNavigator(
        catalog,
        offering_model=brandeis_offering_model(),
        tracer=tracer,
        metrics=metrics,
        decisions=decisions,
        progress=progress,
        budget=budget,
        cache=_make_cache(args, catalog),
    )


def _parallel_kwargs(args: argparse.Namespace) -> dict:
    """``workers``/``split_depth`` pass-through for navigator calls."""
    return {
        "workers": getattr(args, "workers", None),
        "split_depth": getattr(args, "split_depth", None),
    }


def _config(args: argparse.Namespace) -> ExplorationConfig:
    return ExplorationConfig(
        max_courses_per_term=args.max_per_term,
        avoid_courses=frozenset(args.avoid),
        max_nodes=args.max_nodes,
    )


def _goal(args: argparse.Namespace) -> Goal:
    if getattr(args, "goal_file", None):
        import json

        from ..requirements.goals import goal_from_dict

        with open(args.goal_file, "r", encoding="utf-8") as handle:
            return goal_from_dict(json.load(handle))
    if args.goal_courses:
        return CourseSetGoal(args.goal_courses)
    return brandeis_major_goal(args.electives_required)


def _run_catalog(args: argparse.Namespace, out) -> int:
    if getattr(args, "catalog", None):
        catalog = load_catalog(args.catalog)
        for course_id in sorted(catalog):
            course = catalog[course_id]
            offered = ", ".join(str(t) for t in sorted(catalog.schedule.offerings(course_id)))
            print(
                f"{course.course_id:12} {course.title:45} "
                f"prereq: {course.prereq.to_string():30} offered: {offered}",
                file=out,
            )
        return 0
    for row in course_rows():
        print(
            f"{row['course_id']:12} {row['title']:45} "
            f"[{row['tag']:8}] prereq: {row['prerequisites']:40} ({row['pattern']})",
            file=out,
        )
    return 0


def _run_deadline(args: argparse.Namespace, out) -> int:
    navigator = _load(args)
    start, end = Term.parse(args.start), Term.parse(args.end)
    config = _config(args)
    completed = frozenset(args.completed)
    if args.count_only:
        count = navigator.count_deadline(
            start, end, completed=completed, config=config, **_parallel_kwargs(args)
        )
        print(f"{count} deadline-driven paths from {start} to {end}", file=out)
        return 0
    result = navigator.explore_deadline(
        start, end, completed=completed, config=config, **_parallel_kwargs(args)
    )
    print(
        f"{result.path_count} paths, {result.graph.num_nodes} nodes "
        f"({result.stats.elapsed_seconds:.3f}s)",
        file=out,
    )
    print(render_path_table(result.paths(), navigator.catalog, limit=args.limit), file=out)
    return 0


def _run_goal(args: argparse.Namespace, out) -> int:
    navigator = _load(args)
    start, end = Term.parse(args.start), Term.parse(args.end)
    config = _config(args)
    completed = frozenset(args.completed)
    goal = _goal(args)
    if args.count_only:
        count = navigator.count_goal(
            start, goal, end, completed=completed, config=config,
            **_parallel_kwargs(args),
        )
        print(f"{count} goal paths ({goal.describe()}) from {start} to {end}", file=out)
        return 0
    pruners = [] if args.no_prune else None
    result = navigator.explore_goal(
        start, goal, end, completed=completed, config=config, pruners=pruners,
        **_parallel_kwargs(args),
    )
    print(
        f"{result.path_count} goal paths, {result.graph.num_nodes} nodes, "
        f"{result.pruning_stats.total} subtrees pruned "
        f"({result.stats.elapsed_seconds:.3f}s)",
        file=out,
    )
    summary = summarize_paths(result.paths(), navigator.catalog)
    if summary.count:
        print(
            f"lengths {summary.min_length}-{summary.max_length} semesters; "
            f"most common courses: "
            + ", ".join(f"{c} ({n})" for c, n in summary.most_common_courses(5)),
            file=out,
        )
    print(render_path_table(result.paths(), navigator.catalog, limit=args.limit), file=out)
    return 0


def _run_ranked(args: argparse.Namespace, out) -> int:
    navigator = _load(args)
    start, end = Term.parse(args.start), Term.parse(args.end)
    result = navigator.explore_ranked(
        start,
        _goal(args),
        end,
        k=args.k,
        ranking=args.ranking,
        completed=frozenset(args.completed),
        config=_config(args),
        **_parallel_kwargs(args),
    )
    print(
        f"top-{args.k} by {args.ranking}: {len(result.paths)} paths "
        f"({result.stats.elapsed_seconds:.3f}s)",
        file=out,
    )
    model = navigator.offering_model if args.ranking == "reliability" else None
    print(render_ranked(result, navigator.catalog, offering_model=model), file=out)
    return 0


def _run_explain(args: argparse.Namespace, out) -> int:
    from ..obs import ExplainReport
    from .report import build_explain_report, explain_report_dict

    recorder = DecisionRecorder(
        sinks=[JsonlSink(args.out)] if args.out else [], keep_events=True
    )
    args._decisions = recorder
    navigator = _load(args)
    start, end = Term.parse(args.start), Term.parse(args.end)
    goal = _goal(args)
    result = navigator.explore_goal(
        start,
        goal,
        end,
        completed=frozenset(args.completed),
        config=_config(args),
        pruners=[] if args.no_prune else None,
        **_parallel_kwargs(args),
    )
    recorder.close()
    args._decisions = None  # already closed; keep main()'s finally from re-closing
    report = ExplainReport(recorder.events)
    if args.json:
        import json

        print(
            json.dumps(
                explain_report_dict(
                    report,
                    goal=goal,
                    start_term=start,
                    end_term=end,
                    max_pruned=args.max_pruned,
                    why=args.why,
                ),
                indent=2,
                sort_keys=True,
            ),
            file=out,
        )
    else:
        print(
            build_explain_report(
                report,
                goal=goal,
                start_term=start,
                end_term=end,
                max_pruned=args.max_pruned,
                why=args.why,
            ),
            file=out,
            end="",
        )
    print(
        f"{result.path_count} goal paths, {result.graph.num_nodes} nodes, "
        f"{result.pruning_stats.total} subtrees pruned; "
        f"{len(recorder)} decisions audited",
        file=sys.stderr,
    )
    if args.out:
        print(f"decision audit written to {args.out}", file=sys.stderr)
    return 0


def _run_transcripts(args: argparse.Namespace, out) -> int:
    navigator = CourseNavigator(brandeis_catalog())
    goal = brandeis_major_goal()
    start = start_term_for_semesters(args.semesters)
    end = EVALUATION_END_TERM
    config = ExplorationConfig(max_courses_per_term=args.max_per_term)
    body = simulate_transcripts(
        navigator.catalog,
        goal,
        start,
        end,
        count=args.students,
        seed=args.seed,
        config=config,
    )
    report = navigator.check_transcripts(body.paths, goal, end, config=config)
    print(
        f"simulated {body.attempts} students, {body.successes} graduated "
        f"({body.success_rate:.0%}); containment: {report.summary()}",
        file=out,
    )
    for index, reason in report.failures:
        print(f"  path {index}: {reason}", file=out)
    return 0 if report.all_contained else 1


def _run_audit(args: argparse.Namespace, out) -> int:
    navigator = _load(args)
    goal = _goal(args)
    completed = frozenset(args.completed)
    unknown = completed - navigator.catalog.course_ids()
    if unknown:
        print(f"error: unknown courses {sorted(unknown)}", file=sys.stderr)
        return 2
    from ..requirements import progress_report

    report = progress_report(goal, completed)
    print(report.describe(), file=out)
    return 0 if report.satisfied else 1


def _run_export(args: argparse.Namespace, out) -> int:
    from ..graph.export import write_dot, write_json

    navigator = _load(args)
    start, end = Term.parse(args.start), Term.parse(args.end)
    result = navigator.explore_goal(
        start, _goal(args), end,
        completed=frozenset(args.completed),
        config=_config(args),
        **_parallel_kwargs(args),
    )
    if args.format == "dot":
        write_dot(result.graph, args.output, max_nodes=args.max_graph_nodes)
    else:
        write_json(result.graph, args.output)
    print(
        f"wrote {args.format} for {result.graph.num_nodes} nodes "
        f"({result.path_count} goal paths) to {args.output}",
        file=out,
    )
    return 0


def _run_lint(args: argparse.Namespace, out) -> int:
    from ..catalog import lint_catalog

    navigator = _load(args)
    issues = lint_catalog(navigator.catalog)
    if args.errors_only:
        issues = [issue for issue in issues if issue.severity == "error"]
    for issue in issues:
        print(issue, file=out)
    errors = sum(1 for issue in issues if issue.severity == "error")
    print(
        f"{len(issues)} finding(s), {errors} error(s) in "
        f"{len(navigator.catalog)} courses",
        file=out,
    )
    return 1 if errors else 0


def _write_metrics(metrics: MetricsRegistry, path: str) -> None:
    if path.endswith(".json"):
        import json

        content = json.dumps(metrics.snapshot(), indent=2, sort_keys=True) + "\n"
    else:
        content = metrics.render_prometheus()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "catalog": _run_catalog,
        "deadline": _run_deadline,
        "goal": _run_goal,
        "ranked": _run_ranked,
        "explain": _run_explain,
        "transcripts": _run_transcripts,
        "audit": _run_audit,
        "export": _run_export,
        "lint": _run_lint,
    }
    args._cache = None  # populated by _load when --cache is on
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics_out", None)
    explain_path = getattr(args, "explain", None)
    serve_port = getattr(args, "serve_metrics", None)
    args._tracer = Tracer(sinks=[JsonlSink(trace_path)]) if trace_path else None
    args._metrics = (
        MetricsRegistry() if (metrics_path or serve_port is not None) else None
    )
    args._decisions = (
        DecisionRecorder(sinks=[JsonlSink(explain_path)]) if explain_path else None
    )
    wall_budget = getattr(args, "wall_budget", None)
    node_budget = getattr(args, "node_budget", None)
    memory_budget_mb = getattr(args, "memory_budget_mb", None)
    args._budget = (
        ExplorationBudget(
            wall_seconds=wall_budget,
            max_nodes=node_budget,
            max_memory_bytes=(
                int(memory_budget_mb * 1024 * 1024)
                if memory_budget_mb is not None
                else None
            ),
        )
        if (wall_budget, node_budget, memory_budget_mb) != (None, None, None)
        else None
    )
    # The tracker backs the TTY line, the /progress endpoint, and the
    # partial snapshot attached to budget aborts — any of those wants it.
    args._progress = (
        ProgressTracker()
        if (
            getattr(args, "progress", False)
            or serve_port is not None
            or args._budget is not None
        )
        else None
    )
    server: Optional[MetricsServer] = None
    printer: Optional[ProgressPrinter] = None
    try:
        if serve_port is not None:
            server = MetricsServer(
                registry=args._metrics,
                progress=args._progress,
                budget=args._budget,
                port=serve_port,
            ).start()
            # Printed before the run starts so watchers (and the CI smoke)
            # can discover an ephemeral port while the run is still going.
            print(f"serving live telemetry on {server.url}", file=sys.stderr)
        if getattr(args, "progress", False) and args._progress is not None:
            printer = ProgressPrinter(args._progress, stream=sys.stderr).start()
        return handlers[args.command](args, sys.stdout)
    except BudgetExceededError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if exc.progress is not None:
            print(f"partial progress: {exc.progress.render_line()}", file=sys.stderr)
        return 3
    except CourseNavigatorError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if printer is not None:
            printer.close()
        if server is not None:
            server.close()
        if args._tracer is not None:
            args._tracer.close()
            print(f"trace written to {trace_path}", file=sys.stderr)
        if args._cache is not None:
            if args._metrics is not None:
                # Bound late so counters cover the whole run even when the
                # registry exists only for --metrics-out.
                args._cache.bind_metrics(args._metrics)
            if getattr(args, "cache_dir", None):
                saved = args._cache.save()
                print(
                    f"cache: {args._cache.describe_line()}; "
                    f"{saved} flow entries saved to {args._cache.store.path}",
                    file=sys.stderr,
                )
        if args._metrics is not None:
            if args._progress is not None:
                args._progress.publish_gauges(args._metrics)
            if metrics_path:
                _write_metrics(args._metrics, metrics_path)
                print(f"metrics written to {metrics_path}", file=sys.stderr)
        if args._decisions is not None:
            args._decisions.close()
            if explain_path:
                print(f"decision audit written to {explain_path}", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
