"""The CourseNavigator façade — the system of the paper's Fig. 2.

One object ties the pieces together for application code: a validated
:class:`~repro.catalog.Catalog` (built by the registrar parsers), an
optional :class:`~repro.catalog.OfferingModel`, and the three exploration
tasks as methods taking student-level arguments (current semester,
completed courses, goal, constraints, ranking choice).

    >>> from repro.data import brandeis_catalog, brandeis_major_goal
    >>> from repro.semester import Term
    >>> nav = CourseNavigator(brandeis_catalog())
    >>> result = nav.explore_ranked(
    ...     start_term=Term(2013, "Fall"),
    ...     goal=brandeis_major_goal(),
    ...     end_term=Term(2015, "Fall"),
    ...     k=3,
    ... )
    >>> len(result.paths) <= 3
    True
"""

from __future__ import annotations

from typing import AbstractSet, List, Optional, Tuple, Union

from ..catalog import Catalog, OfferingModel
from ..core import (
    DeadlineResult,
    ExplorationConfig,
    GoalDrivenResult,
    RankedResult,
    RankingFunction,
    ReliabilityRanking,
    TimeRanking,
    WorkloadRanking,
    count_deadline_paths,
    count_goal_paths,
    generate_deadline_driven,
    generate_goal_driven,
    generate_ranked,
)
from ..core.pruning import Pruner
from ..analysis import check_containment, ContainmentReport, is_generated_goal_path
from ..cache import ExplorationCache
from ..errors import ExplorationError
from ..graph.path import LearningPath
from ..obs import (
    DecisionRecorder,
    ExplorationBudget,
    MetricsRegistry,
    Observability,
    ProgressTracker,
    Tracer,
)
from ..requirements import Goal
from ..semester import Term

__all__ = ["CourseNavigator"]

RankingSpec = Union[str, RankingFunction]


class CourseNavigator:
    """Interactive learning-path exploration over one catalog.

    Parameters
    ----------
    catalog:
        The validated course catalog (courses + schedule).
    offering_model:
        Probability model for reliability ranking; defaults to the
        catalog's own (deterministic) model.
    tracer:
        Optional :class:`~repro.obs.Tracer`; every exploration run this
        navigator performs emits spans into its sinks.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; run counters and
        per-phase duration histograms accumulate into it.
    capture_memory:
        When true, each run records its ``tracemalloc`` allocation peak
        (noticeably slower; for memory studies only).
    decisions:
        Optional :class:`~repro.obs.DecisionRecorder`; every exploration
        run this navigator performs records its expansion/prune/terminal
        decisions into it (the EXPLAIN layer).
    progress:
        Optional :class:`~repro.obs.ProgressTracker`; every run feeds it
        incrementally so other threads can watch live (snapshots, the
        ``/progress`` endpoint, the TTY progress line).
    budget:
        Optional :class:`~repro.obs.ExplorationBudget`; every run ticks it
        and dies with :class:`~repro.errors.BudgetExceededError` (carrying
        the final progress snapshot) when a wall/node/memory limit is hit
        or another thread cancels it.
    cache:
        Optional :class:`~repro.cache.ExplorationCache`.  Every run this
        navigator performs shares it, so repeated queries over the one
        catalog reuse flow results, option sets and pruning verdicts —
        with identical outputs (the cache only replays pure functions).
        When a ``metrics`` registry is also given, cache hit/miss/eviction
        counters are emitted into it.

    With none of the observability arguments, runs are completely
    uninstrumented (the engine's no-op fast path).
    """

    def __init__(
        self,
        catalog: Catalog,
        offering_model: Optional[OfferingModel] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        capture_memory: bool = False,
        decisions: Optional[DecisionRecorder] = None,
        progress: Optional[ProgressTracker] = None,
        budget: Optional[ExplorationBudget] = None,
        cache: Optional[ExplorationCache] = None,
    ):
        self._catalog = catalog
        self._offering_model = offering_model or catalog.offering_model
        self._cache = cache
        if cache is not None and metrics is not None:
            cache.bind_metrics(metrics)
        if (
            tracer is None
            and metrics is None
            and not capture_memory
            and decisions is None
            and progress is None
            and budget is None
        ):
            self._obs: Optional[Observability] = None
        else:
            self._obs = Observability(
                tracer=tracer,
                metrics=metrics,
                capture_memory=capture_memory,
                decisions=decisions,
                progress=progress,
                budget=budget,
            )

    @property
    def catalog(self) -> Catalog:
        """The catalog this navigator explores."""
        return self._catalog

    @property
    def offering_model(self) -> OfferingModel:
        """The offering-probability model used by reliability ranking."""
        return self._offering_model

    @property
    def observability(self) -> Optional[Observability]:
        """The observability bundle runs report into (``None`` when off)."""
        return self._obs

    @property
    def cache(self) -> Optional[ExplorationCache]:
        """The exploration cache shared by this navigator's runs."""
        return self._cache

    # -- configuration helpers ------------------------------------------------

    def _config(
        self,
        config: Optional[ExplorationConfig],
        max_courses_per_term: Optional[int],
        avoid_courses: Optional[AbstractSet[str]],
        max_nodes: Optional[int],
    ) -> ExplorationConfig:
        if config is not None:
            return config
        kwargs = {}
        if max_courses_per_term is not None:
            kwargs["max_courses_per_term"] = max_courses_per_term
        if avoid_courses is not None:
            kwargs["avoid_courses"] = frozenset(avoid_courses)
        if max_nodes is not None:
            kwargs["max_nodes"] = max_nodes
        return ExplorationConfig(**kwargs)

    def resolve_ranking(self, ranking: RankingSpec) -> RankingFunction:
        """Turn ``"time"`` / ``"workload"`` / ``"reliability"`` (or an
        already-built :class:`RankingFunction`) into a ranking instance."""
        if isinstance(ranking, RankingFunction):
            return ranking
        if ranking == "time":
            return TimeRanking()
        if ranking == "workload":
            return WorkloadRanking(self._catalog)
        if ranking == "reliability":
            return ReliabilityRanking(self._offering_model)
        raise ExplorationError(
            f"unknown ranking {ranking!r}; use 'time', 'workload', 'reliability', "
            f"or a RankingFunction instance"
        )

    # -- the three exploration tasks ---------------------------------------------

    def explore_deadline(
        self,
        start_term: Term,
        end_term: Term,
        completed: AbstractSet[str] = frozenset(),
        config: Optional[ExplorationConfig] = None,
        max_courses_per_term: Optional[int] = None,
        avoid_courses: Optional[AbstractSet[str]] = None,
        max_nodes: Optional[int] = None,
        workers: Optional[int] = None,
        split_depth: Optional[int] = None,
    ) -> DeadlineResult:
        """All learning paths until ``end_term`` (Algorithm 1).

        ``workers`` routes the run through the process-sharded engine
        (:func:`repro.parallel.parallel_deadline_driven`; ``0`` = auto
        pool size); ``None`` (the default) runs serially.  Outputs are
        identical either way.
        """
        if workers is not None:
            from ..parallel import parallel_deadline_driven

            return parallel_deadline_driven(
                self._catalog,
                start_term,
                end_term,
                completed=completed,
                config=self._config(
                    config, max_courses_per_term, avoid_courses, max_nodes
                ),
                obs=self._obs,
                cache=self._cache,
                workers=workers,
                split_depth=split_depth,
            )
        return generate_deadline_driven(
            self._catalog,
            start_term,
            end_term,
            completed=completed,
            config=self._config(config, max_courses_per_term, avoid_courses, max_nodes),
            obs=self._obs,
            cache=self._cache,
        )

    def explore_goal(
        self,
        start_term: Term,
        goal: Goal,
        end_term: Term,
        completed: AbstractSet[str] = frozenset(),
        config: Optional[ExplorationConfig] = None,
        max_courses_per_term: Optional[int] = None,
        avoid_courses: Optional[AbstractSet[str]] = None,
        max_nodes: Optional[int] = None,
        pruners: Optional[List[Pruner]] = None,
        workers: Optional[int] = None,
        split_depth: Optional[int] = None,
    ) -> GoalDrivenResult:
        """All paths meeting ``goal`` by ``end_term`` (goal-driven, §4.2).

        ``workers`` routes through the process-sharded engine (``0`` =
        auto); output — paths, stats, prune counters, decision events —
        is identical to the serial run.
        """
        if workers is not None:
            from ..parallel import parallel_goal_driven

            return parallel_goal_driven(
                self._catalog,
                start_term,
                goal,
                end_term,
                completed=completed,
                config=self._config(
                    config, max_courses_per_term, avoid_courses, max_nodes
                ),
                pruners=pruners,
                obs=self._obs,
                cache=self._cache,
                workers=workers,
                split_depth=split_depth,
            )
        return generate_goal_driven(
            self._catalog,
            start_term,
            goal,
            end_term,
            completed=completed,
            config=self._config(config, max_courses_per_term, avoid_courses, max_nodes),
            pruners=pruners,
            obs=self._obs,
            cache=self._cache,
        )

    def explore_ranked(
        self,
        start_term: Term,
        goal: Goal,
        end_term: Term,
        k: int,
        ranking: RankingSpec = "time",
        completed: AbstractSet[str] = frozenset(),
        config: Optional[ExplorationConfig] = None,
        max_courses_per_term: Optional[int] = None,
        avoid_courses: Optional[AbstractSet[str]] = None,
        max_nodes: Optional[int] = None,
        workers: Optional[int] = None,
        split_depth: Optional[int] = None,
    ) -> RankedResult:
        """The top-``k`` goal paths under a ranking (§4.3).

        With ``workers``, per-seed searches run in worker processes; the
        returned costs equal the serial run's exactly (path order may
        differ between equal-cost paths — see ``docs/parallel.md``).
        """
        if workers is not None:
            from ..parallel import parallel_ranked

            return parallel_ranked(
                self._catalog,
                start_term,
                goal,
                end_term,
                k,
                self.resolve_ranking(ranking),
                completed=completed,
                config=self._config(
                    config, max_courses_per_term, avoid_courses, max_nodes
                ),
                obs=self._obs,
                cache=self._cache,
                workers=workers,
                split_depth=split_depth,
            )
        return generate_ranked(
            self._catalog,
            start_term,
            goal,
            end_term,
            k,
            self.resolve_ranking(ranking),
            completed=completed,
            config=self._config(config, max_courses_per_term, avoid_courses, max_nodes),
            obs=self._obs,
            cache=self._cache,
        )

    # -- counting mode ---------------------------------------------------------------

    def count_deadline(
        self,
        start_term: Term,
        end_term: Term,
        completed: AbstractSet[str] = frozenset(),
        config: Optional[ExplorationConfig] = None,
        workers: Optional[int] = None,
        split_depth: Optional[int] = None,
    ) -> int:
        """Exact deadline-driven path count via the merged DAG.

        With ``workers``, counted by the process-sharded frontier DP
        (:func:`repro.parallel.parallel_count_deadline_paths`) — counts
        are exact under any sharding.
        """
        if workers is not None:
            from ..parallel import parallel_count_deadline_paths

            return parallel_count_deadline_paths(
                self._catalog,
                start_term,
                end_term,
                completed=completed,
                config=config,
                obs=self._obs,
                cache=self._cache,
                workers=workers,
                split_depth=split_depth,
            ).path_count
        return count_deadline_paths(
            self._catalog,
            start_term,
            end_term,
            completed=completed,
            config=config,
            cache=self._cache,
        )

    def count_goal(
        self,
        start_term: Term,
        goal: Goal,
        end_term: Term,
        completed: AbstractSet[str] = frozenset(),
        config: Optional[ExplorationConfig] = None,
        workers: Optional[int] = None,
        split_depth: Optional[int] = None,
    ) -> int:
        """Exact goal-driven path count via the merged DAG.

        With ``workers``, counted by the process-sharded frontier DP —
        counts are exact under any sharding.
        """
        if workers is not None:
            from ..parallel import parallel_count_goal_paths

            return parallel_count_goal_paths(
                self._catalog,
                start_term,
                goal,
                end_term,
                completed=completed,
                config=config,
                obs=self._obs,
                cache=self._cache,
                workers=workers,
                split_depth=split_depth,
            ).path_count
        return count_goal_paths(
            self._catalog,
            start_term,
            goal,
            end_term,
            completed=completed,
            config=config,
            cache=self._cache,
        )

    # -- transcript auditing ------------------------------------------------------------

    def check_transcript(
        self,
        path: LearningPath,
        goal: Goal,
        end_term: Term,
        config: Optional[ExplorationConfig] = None,
    ) -> Tuple[bool, str]:
        """Whether one candidate path is a valid generated goal path."""
        return is_generated_goal_path(self._catalog, goal, path, end_term, config)

    def check_transcripts(
        self,
        paths: List[LearningPath],
        goal: Goal,
        end_term: Term,
        config: Optional[ExplorationConfig] = None,
    ) -> ContainmentReport:
        """Containment report over many candidate paths (§5.2)."""
        return check_containment(self._catalog, goal, paths, end_term, config)
