"""The Learning Path Visualizer — terminal rendering.

The paper's front-end presents generated paths back to the student; this
module is the text half of that component (graph file exports live in
:mod:`repro.graph.export`).  All functions return strings so they compose
with any output channel.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from ..catalog import Catalog, OfferingModel
from ..core.ranked import RankedResult
from ..graph.dag import MergedStatusDag
from ..graph.learning_graph import LearningGraph
from ..graph.path import LearningPath

__all__ = ["render_path", "render_path_table", "render_ranked", "render_graph"]


def render_path(
    path: LearningPath,
    catalog: Optional[Catalog] = None,
    offering_model: Optional[OfferingModel] = None,
    indent: str = "",
) -> str:
    """A multi-line, per-semester rendering of one plan.

    With a ``catalog``, each semester line shows its workload; with an
    ``offering_model``, the header shows the plan's reliability.
    """
    lines: List[str] = []
    header = f"{indent}Plan: {len(path)} semesters, {len(path.courses_taken())} courses"
    if catalog is not None:
        header += f", {path.workload_cost(catalog):.0f} workload hrs/wk·sem"
    if offering_model is not None:
        header += f", reliability {path.reliability(offering_model):.3f}"
    lines.append(header)
    for term, selection in path:
        courses = ", ".join(sorted(selection)) if selection else "(skip)"
        line = f"{indent}  {term.short}:  {courses}"
        if catalog is not None and selection:
            hours = sum(catalog[c].workload_hours for c in selection)
            line += f"   [{hours:.0f} hrs/wk]"
        lines.append(line)
    lines.append(f"{indent}  => completed: {', '.join(sorted(path.end.completed))}")
    return "\n".join(lines)


def render_path_table(
    paths: Iterable[LearningPath],
    catalog: Optional[Catalog] = None,
    limit: int = 20,
) -> str:
    """A compact one-line-per-path table (truncated at ``limit`` rows)."""
    rows = []
    shown = 0
    truncated = False
    for path in paths:
        if shown >= limit:
            truncated = True
            break
        shown += 1
        plan = " | ".join(
            f"{term.short} {','.join(sorted(sel)) or '-'}" for term, sel in path
        )
        prefix = f"#{shown:>3}  {len(path)} sem"
        if catalog is not None:
            prefix += f"  {path.workload_cost(catalog):6.0f}h"
        rows.append(f"{prefix}  {plan}")
    if not rows:
        return "(no paths)"
    if truncated:
        rows.append(f"… (more than {limit} paths; table truncated)")
    return "\n".join(rows)


def render_ranked(
    result: RankedResult,
    catalog: Optional[Catalog] = None,
    offering_model: Optional[OfferingModel] = None,
) -> str:
    """The top-k result with per-path rank and cost."""
    if not result.paths:
        return f"(no paths satisfy the goal under ranking {result.ranking.name!r})"
    blocks = []
    for rank, (cost, path) in enumerate(result.ranked(), start=1):
        label = f"[{rank}] {result.ranking.name} cost = {cost:g}"
        blocks.append(label)
        blocks.append(render_path(path, catalog=catalog, offering_model=offering_model, indent="    "))
    if result.exhausted:
        blocks.append(f"(only {len(result.paths)} goal paths exist)")
    return "\n".join(blocks)


def _render_tree(graph: LearningGraph, max_nodes: int) -> str:
    lines: List[str] = []
    count = 0

    def visit(node_id: int, depth: int) -> None:
        nonlocal count
        if count >= max_nodes:
            return
        count += 1
        status = graph.status(node_id)
        selection = graph.selection_into(node_id)
        arrow = f"--{{{', '.join(sorted(selection))}}}--> " if node_id != graph.root_id else ""
        kind = graph.terminal_kind(node_id)
        tag = f"  [{kind}]" if kind else ""
        lines.append(f"{'  ' * depth}{arrow}{status.describe()}{tag}")
        for child in graph.children(node_id):
            visit(child, depth + 1)

    visit(graph.root_id, 0)
    if count >= max_nodes and graph.num_nodes > max_nodes:
        lines.append(f"… truncated at {max_nodes} of {graph.num_nodes} nodes")
    return "\n".join(lines)


def _render_dag(dag: MergedStatusDag, max_nodes: int) -> str:
    lines: List[str] = []
    for i, key in enumerate(dag.nodes()):
        if i >= max_nodes:
            lines.append(f"… truncated at {max_nodes} of {dag.num_nodes} statuses")
            break
        status = dag.status(key)
        kind = dag.terminal_kind(key)
        tag = f"  [{kind}]" if kind else ""
        lines.append(f"{status.describe()}{tag}")
        for selection, child in sorted(dag.successors(key).items(), key=lambda kv: sorted(kv[0])):
            child_status = dag.status(child)
            lines.append(
                f"    --{{{', '.join(sorted(selection))}}}--> "
                f"{child_status.term.short} |X|={len(child_status.completed)}"
            )
    return "\n".join(lines)


def render_graph(
    graph: Union[LearningGraph, MergedStatusDag], max_nodes: int = 200
) -> str:
    """An indented text dump of a learning graph (tree or merged DAG)."""
    if isinstance(graph, LearningGraph):
        return _render_tree(graph, max_nodes)
    if isinstance(graph, MergedStatusDag):
        return _render_dag(graph, max_nodes)
    raise TypeError(f"expected LearningGraph or MergedStatusDag, got {graph!r}")
