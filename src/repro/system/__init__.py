"""The CourseNavigator service layer (paper Fig. 2).

:class:`~repro.system.navigator.CourseNavigator` is the front-end façade a
deployment embeds: it holds a parsed catalog and exposes the three
exploration tasks with student-friendly arguments.
:mod:`~repro.system.visualizer` is the Learning Path Visualizer (text
rendering here; DOT/JSON export lives in :mod:`repro.graph.export`), and
:mod:`~repro.system.cli` wires everything into a command-line front-end.
"""

from .compare_goals import GoalComparison, compare_goals
from .navigator import CourseNavigator
from .path_export import paths_to_csv_text, write_paths_csv, write_paths_jsonl
from .report import build_goal_report
from .session import PlanningSession, SelectionPreview
from .visualizer import render_graph, render_path, render_path_table, render_ranked

__all__ = [
    "CourseNavigator",
    "PlanningSession",
    "SelectionPreview",
    "write_paths_csv",
    "write_paths_jsonl",
    "paths_to_csv_text",
    "build_goal_report",
    "GoalComparison",
    "compare_goals",
    "render_path",
    "render_path_table",
    "render_ranked",
    "render_graph",
]
