"""Streaming exporters for generated path sets.

Generation results can be enormous; analysts want them in flat formats —
CSV for spreadsheets, JSON Lines for data pipelines.  Both writers here
stream: they accept any path iterable (including a generator over a live
:class:`~repro.graph.learning_graph.LearningGraph`) and never hold more
than one path in memory, with an optional ``limit`` as a safety rail.
"""

from __future__ import annotations

import csv
import io
import json
from typing import IO, Iterable, Optional

from ..catalog import Catalog
from ..graph.path import LearningPath

__all__ = ["write_paths_csv", "write_paths_jsonl", "paths_to_csv_text"]


def write_paths_csv(
    paths: Iterable[LearningPath],
    handle: IO[str],
    catalog: Optional[Catalog] = None,
    limit: Optional[int] = None,
) -> int:
    """Write one row per (path, term): ``path_id, term, courses, …``.

    With a ``catalog``, a per-term workload column is included.  Returns
    the number of paths written.
    """
    writer = csv.writer(handle)
    header = ["path_id", "semesters", "term", "courses"]
    if catalog is not None:
        header.append("workload_hours")
    writer.writerow(header)
    written = 0
    for path_id, path in enumerate(paths):
        if limit is not None and written >= limit:
            break
        written += 1
        for term, selection in path:
            row = [path_id, len(path), str(term), " ".join(sorted(selection))]
            if catalog is not None:
                row.append(
                    sum(catalog[c].workload_hours for c in selection)
                )
            writer.writerow(row)
    return written


def paths_to_csv_text(
    paths: Iterable[LearningPath],
    catalog: Optional[Catalog] = None,
    limit: Optional[int] = None,
) -> str:
    """Convenience: the CSV as a string."""
    buffer = io.StringIO()
    write_paths_csv(paths, buffer, catalog=catalog, limit=limit)
    return buffer.getvalue()


def write_paths_jsonl(
    paths: Iterable[LearningPath],
    handle: IO[str],
    limit: Optional[int] = None,
) -> int:
    """Write one JSON object per line (``LearningPath.to_dict`` shape).

    Returns the number of paths written.
    """
    written = 0
    for path in paths:
        if limit is not None and written >= limit:
            break
        written += 1
        json.dump(path.to_dict(), handle, sort_keys=True)
        handle.write("\n")
    return written
