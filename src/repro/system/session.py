"""Interactive planning sessions — stateful what-if exploration.

The paper's introduction frames the problem interactively: *"which course
selections increase my future course options and number of possible paths
to a CS major?"*.  A :class:`PlanningSession` is that loop as an API:

* it tracks a student's evolving enrollment status term by term,
* :meth:`options` / :meth:`audit` / :meth:`routes_remaining` answer
  "where am I and is the goal still reachable",
* :meth:`preview` scores a candidate selection **before committing**:
  next-term options it would unlock and the exact number of goal routes
  that would remain,
* :meth:`take` / :meth:`skip_term` / :meth:`undo` move through time, and
* :meth:`best_plans` hands the rest of the planning to the ranked
  generator.

Every transition is validated through the same
:class:`~repro.core.expansion.Expander` the generators use, so a session
can never wander into a state the algorithms would not generate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Dict, FrozenSet, List, Optional, Tuple

from ..catalog import Catalog
from ..core import ExplorationConfig, RankedResult, count_goal_paths
from ..core.expansion import Expander
from ..errors import ExplorationError
from ..graph.path import LearningPath
from ..graph.status import EnrollmentStatus
from ..requirements import Goal
from ..requirements.progress import GoalProgress, progress_report
from ..semester import Term
from .navigator import CourseNavigator, RankingSpec

__all__ = ["PlanningSession", "SelectionPreview"]


@dataclass(frozen=True)
class SelectionPreview:
    """What committing to one selection would mean."""

    selection: FrozenSet[str]
    next_term_options: FrozenSet[str]
    routes_remaining: int
    goal_satisfied: bool

    def describe(self) -> str:
        """One line suitable for a pick-list UI."""
        courses = ", ".join(sorted(self.selection)) or "(skip)"
        if self.goal_satisfied:
            return f"{courses}  ->  goal satisfied"
        return (
            f"{courses}  ->  {len(self.next_term_options)} next-term options, "
            f"{self.routes_remaining:,} routes to the goal"
        )


class PlanningSession:
    """One student's interactive exploration toward one goal."""

    def __init__(
        self,
        navigator: CourseNavigator,
        goal: Goal,
        start_term: Term,
        deadline: Term,
        completed: AbstractSet[str] = frozenset(),
        config: Optional[ExplorationConfig] = None,
    ):
        if deadline < start_term:
            raise ExplorationError(f"deadline {deadline} precedes start {start_term}")
        self._navigator = navigator
        self._goal = goal
        self._deadline = deadline
        self._config = config or ExplorationConfig()
        self._expander = Expander(navigator.catalog, deadline, self._config)
        self._status = self._expander.initial_status(start_term, frozenset(completed))
        self._history: List[Tuple[EnrollmentStatus, FrozenSet[str]]] = []

    # -- state ----------------------------------------------------------------

    @property
    def catalog(self) -> Catalog:
        """The catalog being explored."""
        return self._navigator.catalog

    @property
    def goal(self) -> Goal:
        """The session's goal requirement."""
        return self._goal

    @property
    def status(self) -> EnrollmentStatus:
        """The current enrollment status."""
        return self._status

    @property
    def term(self) -> Term:
        """The current semester."""
        return self._status.term

    @property
    def deadline(self) -> Term:
        """The end semester ``d``."""
        return self._deadline

    @property
    def completed(self) -> FrozenSet[str]:
        """Courses completed so far."""
        return self._status.completed

    @property
    def semesters_left(self) -> int:
        """Transitions remaining until the deadline."""
        return self._deadline - self._status.term

    def path_so_far(self) -> LearningPath:
        """The selections committed in this session as a learning path."""
        statuses = [status for status, _sel in self._history] + [self._status]
        selections = [sel for _status, sel in self._history]
        return LearningPath(statuses, selections)

    # -- queries ----------------------------------------------------------------

    def options(self) -> FrozenSet[str]:
        """The option set ``Y`` for the current term."""
        return self._status.options

    def legal_selections(self) -> List[FrozenSet[str]]:
        """Every selection the generators would consider from here."""
        return [selection for selection, _child in self._expander.successors(self._status)]

    def audit(self) -> GoalProgress:
        """Degree-audit view of the current standing."""
        return progress_report(self._goal, self._status.completed)

    def goal_satisfied(self) -> bool:
        """Whether the goal is already met."""
        return self._goal.is_satisfied(self._status.completed)

    def routes_remaining(self) -> int:
        """Exact number of goal routes from the current status."""
        return count_goal_paths(
            self._navigator.catalog,
            self._status.term,
            self._goal,
            self._deadline,
            completed=self._status.completed,
            config=self._config,
        )

    def preview(self, *course_ids: str) -> SelectionPreview:
        """Score a candidate selection without committing to it.

        Raises :class:`~repro.errors.ExplorationError` when the selection
        is not a legal move from the current status.
        """
        selection = frozenset(course_ids)
        child = self._legal_child(selection)
        satisfied = self._goal.is_satisfied(child.completed)
        routes = 0
        if not satisfied:
            routes = count_goal_paths(
                self._navigator.catalog,
                child.term,
                self._goal,
                self._deadline,
                completed=child.completed,
                config=self._config,
            )
        return SelectionPreview(
            selection=selection,
            next_term_options=child.options,
            routes_remaining=routes,
            goal_satisfied=satisfied,
        )

    def preview_all(self) -> List[SelectionPreview]:
        """Previews for every legal selection, best (most routes) first.

        This is the introduction's question answered wholesale: which
        selection keeps the most doors open.
        """
        previews = [self.preview(*selection) for selection in self.legal_selections()]
        previews.sort(key=lambda p: (not p.goal_satisfied, -p.routes_remaining))
        return previews

    def best_plans(self, k: int = 3, ranking: RankingSpec = "time") -> RankedResult:
        """Top-k complete plans from the current status."""
        return self._navigator.explore_ranked(
            self._status.term,
            self._goal,
            self._deadline,
            k=k,
            ranking=ranking,
            completed=self._status.completed,
            config=self._config,
        )

    # -- transitions -------------------------------------------------------------

    def _legal_child(self, selection: FrozenSet[str]) -> EnrollmentStatus:
        if self._status.term >= self._deadline:
            raise ExplorationError(f"the session has reached its deadline {self._deadline}")
        legal: Dict[FrozenSet[str], EnrollmentStatus] = dict(
            self._expander.successors(self._status)
        )
        child = legal.get(selection)
        if child is None:
            raise ExplorationError(
                f"selection {sorted(selection)} is not a legal move at "
                f"{self._status.term} (options: {sorted(self._status.options)})"
            )
        return child

    def take(self, *course_ids: str) -> EnrollmentStatus:
        """Commit to electing the given courses this term and advance."""
        selection = frozenset(course_ids)
        child = self._legal_child(selection)
        self._history.append((self._status, selection))
        self._status = child
        return child

    def skip_term(self) -> EnrollmentStatus:
        """Commit to an empty selection (when legal) and advance."""
        return self.take()

    def undo(self) -> EnrollmentStatus:
        """Roll back the most recent transition."""
        if not self._history:
            raise ExplorationError("nothing to undo")
        self._status, _selection = self._history.pop()
        return self._status

    def __repr__(self) -> str:
        return (
            f"PlanningSession({self._status.term}, "
            f"{len(self._status.completed)} completed, "
            f"deadline {self._deadline})"
        )
