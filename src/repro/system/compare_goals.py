"""Multi-goal comparison — "which major/minor can I still finish?".

Students deciding between programs want the same exploration run against
several candidate goals at once: is each still reachable, how many routes
remain, and what is the fastest completion.  :func:`compare_goals` runs
counting-mode goal exploration plus a top-1 ranked probe per goal and
returns a comparable row per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, List, Optional, Sequence

from ..catalog import Catalog
from ..core import (
    ExplorationConfig,
    TimeRanking,
    frontier_count_goal_paths,
    generate_ranked,
)
from ..errors import BudgetExceededError
from ..requirements import Goal
from ..semester import Term

__all__ = ["GoalComparison", "compare_goals"]


@dataclass(frozen=True)
class GoalComparison:
    """One candidate goal's standing for one student."""

    goal: Goal
    reachable: bool
    route_count: Optional[int]        # None = exceeded the counting budget
    fastest_semesters: Optional[int]  # None = unreachable
    remaining_courses: float

    def describe(self) -> str:
        if not self.reachable:
            return f"{self.goal.describe()}: unreachable by the deadline"
        routes = (
            f"{self.route_count:,} routes" if self.route_count is not None
            else "more routes than the counting budget"
        )
        return (
            f"{self.goal.describe()}: {routes}, fastest finish in "
            f"{self.fastest_semesters} semesters "
            f"({int(self.remaining_courses)} courses to go)"
        )


def compare_goals(
    catalog: Catalog,
    goals: Sequence[Goal],
    start_term: Term,
    end_term: Term,
    completed: AbstractSet[str] = frozenset(),
    config: Optional[ExplorationConfig] = None,
    count_budget: Optional[int] = 500_000,
) -> List[GoalComparison]:
    """Evaluate each candidate goal; rows sorted most-achievable first.

    "Most achievable" orders by reachability, then fewest remaining
    courses, then fastest completion.
    """
    config = config or ExplorationConfig()
    rows: List[GoalComparison] = []
    for goal in goals:
        probe = generate_ranked(
            catalog, start_term, goal, end_term, 1, TimeRanking(),
            completed=completed, config=config,
        )
        reachable = bool(probe.paths)
        fastest = int(probe.costs[0]) if reachable else None
        route_count: Optional[int] = 0
        if reachable:
            try:
                route_count = frontier_count_goal_paths(
                    catalog, start_term, goal, end_term,
                    completed=completed, config=config,
                    max_frontier=count_budget,
                ).path_count
            except BudgetExceededError:
                route_count = None
        rows.append(
            GoalComparison(
                goal=goal,
                reachable=reachable,
                route_count=route_count if reachable else 0,
                fastest_semesters=fastest,
                remaining_courses=goal.remaining_courses(frozenset(completed)),
            )
        )
    rows.sort(
        key=lambda row: (
            not row.reachable,
            row.remaining_courses,
            row.fastest_semesters if row.fastest_semesters is not None else 1 << 30,
        )
    )
    return rows
