"""Exploration reports — one document per exploration run.

A deployed CourseNavigator doesn't hand a student a raw path list; it
renders a report: the question asked, the headline numbers, the best
plans, how the engine got there (pruning effectiveness, graph shape), and
caveats.  :func:`build_goal_report` assembles exactly that from a
goal-driven result plus an optional ranked result, as plain text that
drops into an email, a terminal, or a ``<pre>`` block.
"""

from __future__ import annotations

from typing import List, Optional

from typing import Any, Dict

from ..analysis.metrics import branching_profile
from ..analysis.statistics import summarize_paths
from ..catalog import Catalog
from ..core import ExplorationConfig, GoalDrivenResult, RankedResult
from ..obs import ExplainReport, Observability, describe_verdict
from ..requirements import Goal, progress_report
from ..semester import Term
from .visualizer import render_path

__all__ = ["build_goal_report", "build_explain_report", "explain_report_dict"]

_RULE = "=" * 72


def _section(title: str) -> List[str]:
    return [_RULE, title, _RULE]


def build_goal_report(
    catalog: Catalog,
    goal: Goal,
    start_term: Term,
    end_term: Term,
    result: GoalDrivenResult,
    ranked: Optional[RankedResult] = None,
    config: Optional[ExplorationConfig] = None,
    max_listed_plans: int = 3,
    obs: Optional[Observability] = None,
) -> str:
    """Render a complete text report for one goal exploration.

    Parameters
    ----------
    result:
        The goal-driven run to report on.
    ranked:
        Optional ranked result to feature as "recommended plans"; without
        it the report lists the first few generated paths instead.
    config:
        The configuration used (echoed into the report header).
    obs:
        The :class:`~repro.obs.Observability` bundle the runs reported
        into, if any; adds a per-phase timing section (and the peak-memory
        figure when it was captured).
    """
    config = config or ExplorationConfig()
    lines: List[str] = []

    lines += _section("CourseNavigator exploration report")
    lines.append(f"goal:        {goal.describe()}")
    lines.append(f"horizon:     {start_term}  ->  {end_term} "
                 f"({end_term - start_term} semesters)")
    lines.append(f"constraints: max {config.max_courses_per_term} courses/term"
                 + (f", avoiding {', '.join(sorted(config.avoid_courses))}"
                    if config.avoid_courses else ""))
    for constraint in config.constraints:
        lines.append(f"             {constraint.describe()}")

    lines.append("")
    lines += _section("Headline")
    start_completed = result.graph.status(result.graph.root_id).completed
    audit = progress_report(goal, start_completed)
    lines.append(audit.describe())
    lines.append("")
    lines.append(f"{result.path_count:,} learning paths satisfy the goal by "
                 f"{end_term}.")
    lines.append(
        f"exploration: {result.stats.nodes_created:,} statuses in "
        f"{result.stats.elapsed_seconds:.2f}s; "
        f"{result.pruning_stats.total:,} subtrees pruned "
        f"(time {result.pruning_stats.share('time'):.0%}, "
        f"availability {result.pruning_stats.share('availability'):.0%})"
    )

    if result.path_count:
        lines.append("")
        lines += _section("Path-set profile")
        summary = summarize_paths(result.paths(), catalog)
        lines.append(
            f"lengths {summary.min_length}-{summary.max_length} semesters "
            f"(mean {summary.mean_length:.1f}); workloads "
            f"{summary.min_workload:.0f}-{summary.max_workload:.0f}h "
            f"(mean {summary.mean_workload:.0f}h)"
        )
        common = ", ".join(
            f"{course} ({count})" for course, count in summary.most_common_courses(5)
        )
        lines.append(f"most common courses: {common}")

    lines.append("")
    lines += _section("Recommended plans")
    if ranked is not None and ranked.paths:
        for rank, (cost, path) in enumerate(ranked.ranked()[:max_listed_plans], 1):
            lines.append(f"[{rank}] {ranked.ranking.name} cost {cost:g}")
            lines.append(render_path(path, catalog=catalog, indent="    "))
    elif result.path_count:
        for index, path in enumerate(result.paths()):
            if index >= max_listed_plans:
                break
            lines.append(f"[{index + 1}]")
            lines.append(render_path(path, catalog=catalog, indent="    "))
    else:
        lines.append("(no satisfying plans — consider a later deadline, a higher")
        lines.append(" per-term cap, or dropping a constraint)")

    lines.append("")
    lines += _section("Engine detail (per-term branching)")
    for row in branching_profile(result.graph, config.max_courses_per_term):
        lines.append("  " + row.describe())

    if obs is not None and obs.phases:
        lines.append("")
        lines += _section("Engine detail (phase timing, inclusive)")
        lines.append(obs.phases.render(indent="  "))
        if obs.last_memory is not None:
            lines.append(f"  peak memory     {obs.last_memory.peak_kib:,.0f} KiB "
                         f"(tracemalloc, last run)")

    return "\n".join(lines) + "\n"


def _render_decision(report: ExplainReport, event, indent: str = "  ") -> List[str]:
    """The per-node audit lines: where the node sits and every consulted
    strategy's evidence (the firing one last, per first-fires-wins)."""
    selection = ", ".join(event.selection) or "(start)"
    lines = [
        f"{indent}node {event.node_id} [{event.term}] after {{{selection}}} — "
        f"pruned by {event.strategy} "
        f"({len(event.completed)} courses completed, depth {len(report.lineage(event.node_id)) - 1})"
    ]
    for verdict in event.verdicts:
        lines.append(f"{indent}    {describe_verdict(verdict)}")
    return lines


def build_explain_report(
    report: ExplainReport,
    goal: Optional[Goal] = None,
    start_term: Optional[Term] = None,
    end_term: Optional[Term] = None,
    max_pruned: int = 8,
    why: Optional[str] = None,
) -> str:
    """Render the decision-audit report for one explain-recorded run.

    Sections: the decision census, the per-strategy attribution table
    (the Table 1 split recomputed from events), the pruned-decision detail
    with each cut's firing strategy and bound values, the near-misses, and
    — when ``why`` names a course — the "why was X never returned?"
    answer.
    """
    lines: List[str] = []
    lines += _section("CourseNavigator explain report (decision audit)")
    if goal is not None:
        lines.append(f"goal:    {goal.describe()}")
    if start_term is not None and end_term is not None:
        lines.append(f"horizon: {start_term}  ->  {end_term} "
                     f"({end_term - start_term} semesters)")

    counts = report.counts_by_kind()
    total = sum(counts.values())
    census = ", ".join(f"{kind} {counts[kind]:,}" for kind in sorted(counts))
    lines.append(f"decisions recorded: {total:,} ({census})")

    lines.append("")
    lines += _section("Strategy attribution (recomputed from events)")
    attribution = report.attribution(include_selection_floor=True)
    subtree_only = report.attribution(include_selection_floor=False)
    grand_total = sum(attribution.values())
    for strategy in sorted(attribution, key=attribution.get, reverse=True):
        count = attribution[strategy]
        share = count / grand_total if grand_total else 0.0
        lines.append(
            f"  {strategy:14} {count:10,}  {share:6.1%}  "
            f"({subtree_only.get(strategy, 0):,} direct subtree cuts)"
        )
    lines.append("  (selections skipped by the strategic floor are credited to the")
    lines.append("   time strategy, matching the run's PruningStats counters)")

    pruned = report.pruned()
    lines.append("")
    lines += _section(f"Pruned decisions ({min(max_pruned, len(pruned))} of {len(pruned):,})")
    if pruned:
        for event in pruned[:max_pruned]:
            lines += _render_decision(report, event)
    else:
        lines.append("  (nothing was pruned)")

    near = report.near_misses()
    if near:
        lines.append("")
        lines += _section("Near misses (within 1 of surviving the bound)")
        for event in near:
            lines += _render_decision(report, event)

    if why is not None:
        lines.append("")
        lines += _section(f"Why not {why}?")
        lines.append(report.why_not(why).render())

    return "\n".join(lines) + "\n"


def explain_report_dict(
    report: ExplainReport,
    goal: Optional[Goal] = None,
    start_term: Optional[Term] = None,
    end_term: Optional[Term] = None,
    max_pruned: int = 25,
    why: Optional[str] = None,
) -> Dict[str, Any]:
    """The JSON rendering of :func:`build_explain_report` (CLI ``--json``)."""
    data = report.as_dict(max_pruned=max_pruned)
    if goal is not None:
        data["goal"] = goal.describe()
    if start_term is not None and end_term is not None:
        data["horizon"] = {"start": str(start_term), "end": str(end_term)}
    if why is not None:
        answer = report.why_not(why)
        data["why_not"] = {
            "course": answer.course,
            "returned_in": answer.returned_in,
            "blockers": [e.as_dict() for e in answer.blockers[:max_pruned]],
        }
    return data
