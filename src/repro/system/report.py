"""Exploration reports — one document per exploration run.

A deployed CourseNavigator doesn't hand a student a raw path list; it
renders a report: the question asked, the headline numbers, the best
plans, how the engine got there (pruning effectiveness, graph shape), and
caveats.  :func:`build_goal_report` assembles exactly that from a
goal-driven result plus an optional ranked result, as plain text that
drops into an email, a terminal, or a ``<pre>`` block.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.metrics import branching_profile
from ..analysis.statistics import summarize_paths
from ..catalog import Catalog
from ..core import ExplorationConfig, GoalDrivenResult, RankedResult
from ..obs import Observability
from ..requirements import Goal, progress_report
from ..semester import Term
from .visualizer import render_path

__all__ = ["build_goal_report"]

_RULE = "=" * 72


def _section(title: str) -> List[str]:
    return [_RULE, title, _RULE]


def build_goal_report(
    catalog: Catalog,
    goal: Goal,
    start_term: Term,
    end_term: Term,
    result: GoalDrivenResult,
    ranked: Optional[RankedResult] = None,
    config: Optional[ExplorationConfig] = None,
    max_listed_plans: int = 3,
    obs: Optional[Observability] = None,
) -> str:
    """Render a complete text report for one goal exploration.

    Parameters
    ----------
    result:
        The goal-driven run to report on.
    ranked:
        Optional ranked result to feature as "recommended plans"; without
        it the report lists the first few generated paths instead.
    config:
        The configuration used (echoed into the report header).
    obs:
        The :class:`~repro.obs.Observability` bundle the runs reported
        into, if any; adds a per-phase timing section (and the peak-memory
        figure when it was captured).
    """
    config = config or ExplorationConfig()
    lines: List[str] = []

    lines += _section("CourseNavigator exploration report")
    lines.append(f"goal:        {goal.describe()}")
    lines.append(f"horizon:     {start_term}  ->  {end_term} "
                 f"({end_term - start_term} semesters)")
    lines.append(f"constraints: max {config.max_courses_per_term} courses/term"
                 + (f", avoiding {', '.join(sorted(config.avoid_courses))}"
                    if config.avoid_courses else ""))
    for constraint in config.constraints:
        lines.append(f"             {constraint.describe()}")

    lines.append("")
    lines += _section("Headline")
    start_completed = result.graph.status(result.graph.root_id).completed
    audit = progress_report(goal, start_completed)
    lines.append(audit.describe())
    lines.append("")
    lines.append(f"{result.path_count:,} learning paths satisfy the goal by "
                 f"{end_term}.")
    lines.append(
        f"exploration: {result.stats.nodes_created:,} statuses in "
        f"{result.stats.elapsed_seconds:.2f}s; "
        f"{result.pruning_stats.total:,} subtrees pruned "
        f"(time {result.pruning_stats.share('time'):.0%}, "
        f"availability {result.pruning_stats.share('availability'):.0%})"
    )

    if result.path_count:
        lines.append("")
        lines += _section("Path-set profile")
        summary = summarize_paths(result.paths(), catalog)
        lines.append(
            f"lengths {summary.min_length}-{summary.max_length} semesters "
            f"(mean {summary.mean_length:.1f}); workloads "
            f"{summary.min_workload:.0f}-{summary.max_workload:.0f}h "
            f"(mean {summary.mean_workload:.0f}h)"
        )
        common = ", ".join(
            f"{course} ({count})" for course, count in summary.most_common_courses(5)
        )
        lines.append(f"most common courses: {common}")

    lines.append("")
    lines += _section("Recommended plans")
    if ranked is not None and ranked.paths:
        for rank, (cost, path) in enumerate(ranked.ranked()[:max_listed_plans], 1):
            lines.append(f"[{rank}] {ranked.ranking.name} cost {cost:g}")
            lines.append(render_path(path, catalog=catalog, indent="    "))
    elif result.path_count:
        for index, path in enumerate(result.paths()):
            if index >= max_listed_plans:
                break
            lines.append(f"[{index + 1}]")
            lines.append(render_path(path, catalog=catalog, indent="    "))
    else:
        lines.append("(no satisfying plans — consider a later deadline, a higher")
        lines.append(" per-term cap, or dropping a constraint)")

    lines.append("")
    lines += _section("Engine detail (per-term branching)")
    for row in branching_profile(result.graph, config.max_courses_per_term):
        lines.append("  " + row.describe())

    if obs is not None and obs.phases:
        lines.append("")
        lines += _section("Engine detail (phase timing, inclusive)")
        lines.append(obs.phases.render(indent="  "))
        if obs.last_memory is not None:
            lines.append(f"  peak memory     {obs.last_memory.peak_kib:,.0f} KiB "
                         f"(tracemalloc, last run)")

    return "\n".join(lines) + "\n"
