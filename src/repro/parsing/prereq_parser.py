"""The Prerequisite Parser (paper Fig. 2, back-end).

Parses registrar catalog prose into a
:class:`~repro.catalog.prereq.PrereqExpr`.  The grammar covers the shapes
that actually occur in course descriptions:

.. code-block:: text

    expr    :=  or_expr
    or_expr :=  and_expr ( OR and_expr )*
    and_expr:=  atom ( (AND | ',') atom )*
    atom    :=  '(' expr ')'
            |   INT OF '[' expr (',' expr)* ']'
            |   NONE | NEVER
            |   COURSE-ID

with the conventions registrar text uses:

* Keywords are case-insensitive (``and``/``AND``, ``or``/``OR`` …).
* A course id may contain internal spaces (``COSI 11a``): consecutive
  word tokens merge into a single id.
* A bare comma between atoms reads as **AND** — registrar lists like
  ``"COSI 11a, COSI 12b and COSI 21a"`` are conjunctions.  Inside
  ``k OF [...]`` brackets the comma separates alternatives instead.
* A leading ``Prerequisite:`` / ``Prerequisites:`` / ``Prereq:`` label is
  stripped.
* The ubiquitous escape hatch ``"... or permission of the instructor"`` is
  controlled by ``instructor_permission``: ``"ignore"`` (default) drops that
  disjunct, ``"true"`` treats it as satisfied (making the whole condition
  trivially true), ``"error"`` raises.

Raises :class:`~repro.errors.PrerequisiteParseError` with the failing
position on malformed input.  ``parse_prerequisites(expr.to_string())``
round-trips for every expression the AST can print (property-tested).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from ..catalog.prereq import (
    FALSE,
    TRUE,
    CourseReq,
    KOf,
    PrereqExpr,
    all_of,
    any_of,
)
from ..errors import PrerequisiteParseError

__all__ = ["parse_prerequisites"]


_LABEL_RE = re.compile(r"^\s*prereq(uisite)?s?\s*:\s*", re.IGNORECASE)
_PERMISSION_RE = re.compile(
    r"(permission|consent)\s+of\s+(the\s+)?(instructor|department|chair)"
    r"|instructor'?s?\s+(permission|consent)",
    re.IGNORECASE,
)

_KEYWORDS = {"and", "or", "of", "none", "never"}


@dataclass(frozen=True)
class _Token:
    kind: str  # 'word', 'int', 'lparen', 'rparen', 'lbracket', 'rbracket', 'comma'
    text: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<comma>,)
  | (?P<semicolon>;)
  | (?P<word>[A-Za-z0-9][A-Za-z0-9._\-]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise PrerequisiteParseError(
                f"unexpected character {text[position]!r}", text=text, position=position
            )
        position = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        if kind == "semicolon":
            # Registrars use ';' as a strong conjunction separator.
            tokens.append(_Token("word", "and", match.start()))
            continue
        value = match.group(kind)
        if kind == "word" and value.isdigit():
            kind = "int"
        tokens.append(_Token(kind, value, match.start()))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: List[_Token], text: str):
        self._tokens = tokens
        self._text = text
        self._index = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise PrerequisiteParseError(
                "unexpected end of input", text=self._text, position=len(self._text)
            )
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token is None or token.kind != kind:
            position = token.position if token else len(self._text)
            found = token.text if token else "end of input"
            raise PrerequisiteParseError(
                f"expected {kind}, found {found!r}", text=self._text, position=position
            )
        return self._advance()

    def _at_keyword(self, *names: str) -> bool:
        token = self._peek()
        return (
            token is not None
            and token.kind == "word"
            and token.text.lower() in names
        )

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> PrereqExpr:
        expr = self._or_expr()
        leftover = self._peek()
        if leftover is not None:
            raise PrerequisiteParseError(
                f"unexpected trailing input {leftover.text!r}",
                text=self._text,
                position=leftover.position,
            )
        return expr

    def _or_expr(self) -> PrereqExpr:
        parts = [self._and_expr()]
        while self._at_keyword("or"):
            self._advance()
            parts.append(self._and_expr())
        return any_of(parts)

    def _and_expr(self, comma_joins: bool = True) -> PrereqExpr:
        parts = [self._atom()]
        while True:
            if self._at_keyword("and"):
                self._advance()
                # tolerate "…, and X" — the comma grammar may already have
                # consumed the comma, and "and" may follow a comma directly
                parts.append(self._atom())
            elif comma_joins and self._peek() is not None and self._peek().kind == "comma":
                # Lookahead: a comma inside "k OF [...]" is handled by the
                # bracket rule; here, a comma is a conjunction separator.
                self._advance()
                if self._at_keyword("and", "or"):
                    connective = self._advance().text.lower()
                    rest = self._atom()
                    if connective == "or":
                        # "a, b, or c" — the final connective retroactively
                        # applies to the whole list per registrar convention.
                        return any_of([all_of(parts), rest])
                    parts.append(rest)
                else:
                    parts.append(self._atom())
            else:
                break
        return all_of(parts)

    def _atom(self) -> PrereqExpr:
        token = self._peek()
        if token is None:
            raise PrerequisiteParseError(
                "expected a course or '('", text=self._text, position=len(self._text)
            )
        if token.kind == "lparen":
            self._advance()
            inner = self._or_expr()
            self._expect("rparen")
            return inner
        if token.kind == "int":
            return self._kof()
        if token.kind == "word":
            lowered = token.text.lower()
            if lowered == "none":
                self._advance()
                return TRUE
            if lowered == "never":
                self._advance()
                return FALSE
            if lowered in _KEYWORDS:
                raise PrerequisiteParseError(
                    f"unexpected keyword {token.text!r}",
                    text=self._text,
                    position=token.position,
                )
            return self._course()
        raise PrerequisiteParseError(
            f"unexpected {token.text!r}", text=self._text, position=token.position
        )

    def _kof(self) -> PrereqExpr:
        count_token = self._expect("int")
        k = int(count_token.text)
        if not self._at_keyword("of"):
            raise PrerequisiteParseError(
                f"expected 'OF' after {k}", text=self._text, position=count_token.position
            )
        self._advance()
        self._expect("lbracket")
        alternatives = [self._bracket_item()]
        while self._peek() is not None and self._peek().kind == "comma":
            self._advance()
            alternatives.append(self._bracket_item())
        self._expect("rbracket")
        return KOf(k, alternatives)

    def _bracket_item(self) -> PrereqExpr:
        # Inside brackets, commas separate items, so the and-rule must not
        # swallow them.
        parts = [self._atom()]
        while True:
            if self._at_keyword("and"):
                self._advance()
                parts.append(self._atom())
            elif self._at_keyword("or"):
                self._advance()
                return any_of([all_of(parts), self._bracket_item()])
            else:
                break
        return all_of(parts)

    def _course(self) -> PrereqExpr:
        words = [self._advance().text]
        while True:
            token = self._peek()
            if (
                token is not None
                and token.kind in ("word", "int")
                and (token.kind != "word" or token.text.lower() not in _KEYWORDS)
            ):
                words.append(self._advance().text)
            else:
                break
        return CourseReq(" ".join(words))


def parse_prerequisites(
    text: str, instructor_permission: str = "ignore"
) -> PrereqExpr:
    """Parse a registrar prerequisite description into a ``PrereqExpr``.

    Parameters
    ----------
    text:
        The prose, e.g. ``"Prerequisites: COSI 11a and (COSI 21a or COSI
        22b)"``.  Empty / whitespace-only text (or the words ``none`` /
        ``NONE``) means "no prerequisites" and yields :data:`TRUE`.
    instructor_permission:
        How to treat an ``"or permission of the instructor"`` clause:
        ``"ignore"`` (default) removes it, ``"true"`` replaces it with
        :data:`TRUE` (making the whole condition satisfied), ``"error"``
        raises :class:`~repro.errors.PrerequisiteParseError`.

    Raises
    ------
    PrerequisiteParseError
        On malformed input, with the failing position.
    """
    if instructor_permission not in ("ignore", "true", "error"):
        raise ValueError(
            f"instructor_permission must be ignore/true/error, got {instructor_permission!r}"
        )
    stripped = _LABEL_RE.sub("", text or "").strip().rstrip(".")
    if not stripped:
        return TRUE

    permission_clause_present = bool(_PERMISSION_RE.search(stripped))
    if permission_clause_present:
        if instructor_permission == "error":
            raise PrerequisiteParseError(
                "instructor-permission clause present", text=text
            )
        replacement = " NONE " if instructor_permission == "true" else " NEVER "
        stripped = _PERMISSION_RE.sub(replacement, stripped)
        # "ignore" maps the clause to NEVER so `any_of` drops the disjunct;
        # if the clause was the *whole* condition, fall back to TRUE below.

    tokens = _tokenize(stripped)
    if not tokens:
        return TRUE
    result = _Parser(tokens, stripped).parse()
    if result == FALSE and permission_clause_present and instructor_permission == "ignore":
        # The condition consisted solely of the permission clause.
        return TRUE
    return result
