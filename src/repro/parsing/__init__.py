"""Registrar-input parsers (the paper's back-end, Fig. 2).

The system model feeds two registrar artifacts through parsers before any
path generation happens:

* the **Prerequisite Parser** turns catalog prose like
  ``"COSI 11a and (COSI 21a or COSI 22b)"`` into a
  :class:`~repro.catalog.prereq.PrereqExpr` (``Q_i``), and
* the **Schedule Parser** turns schedule tables into a
  :class:`~repro.catalog.schedule.Schedule` (``S_i``).

:mod:`repro.parsing.catalog_io` adds JSON round-tripping for whole catalogs
and a convenience builder that runs both parsers over raw registrar text.
"""

from .prereq_parser import parse_prerequisites
from .schedule_parser import parse_schedule_csv, parse_schedule_lines, parse_schedule_text
from .catalog_io import (
    build_catalog_from_registrar,
    load_catalog,
    load_catalog_json,
    save_catalog,
)

__all__ = [
    "parse_prerequisites",
    "parse_schedule_text",
    "parse_schedule_lines",
    "parse_schedule_csv",
    "load_catalog",
    "load_catalog_json",
    "save_catalog",
    "build_catalog_from_registrar",
]
