"""The Schedule Parser (paper Fig. 2, back-end).

Turns registrar schedule tables into a
:class:`~repro.catalog.schedule.Schedule`.  Two common shapes are accepted:

* **Line format** — one course per line, id separated from a comma- or
  semicolon-separated term list by ``:``, ``|`` or a tab::

      COSI 11a: Fall 2011, Spring 2012, Fall 2012
      COSI 21a | Spring '12

* **CSV format** — one ``(course, term)`` offering per row, with an optional
  header::

      course_id,term
      COSI 11a,Fall 2011
      COSI 11a,Spring 2012

Blank lines and ``#`` comments are skipped in both formats.  Term names go
through :meth:`repro.semester.Term.parse`, so every spelling that accepts
(``Fall 2011``, ``Fall '11``, ``F11`` …) works here too.  Errors raise
:class:`~repro.errors.ScheduleParseError` with the offending line number.
"""

from __future__ import annotations

import csv
import io
import re
from typing import Dict, Iterable, List, Set, Tuple

from ..catalog.schedule import Schedule
from ..errors import ScheduleParseError
from ..semester import AcademicCalendar, SPRING_FALL, Term

__all__ = ["parse_schedule_text", "parse_schedule_lines", "parse_schedule_csv"]


_SEPARATOR_RE = re.compile(r"[:|\t]")


def _strip_comment(line: str) -> str:
    hash_index = line.find("#")
    if hash_index >= 0:
        return line[:hash_index]
    return line


def parse_schedule_lines(
    lines: Iterable[str], calendar: AcademicCalendar = SPRING_FALL
) -> Schedule:
    """Parse line-format schedule rows (see module docstring).

    Repeated course lines merge their term sets.
    """
    offerings: Dict[str, Set[Term]] = {}
    for line_number, raw in enumerate(lines, start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        pieces = _SEPARATOR_RE.split(line, maxsplit=1)
        if len(pieces) != 2:
            raise ScheduleParseError(
                f"line {line_number}: expected 'COURSE: term, term, ...'", text=raw
            )
        course_id, term_list = pieces[0].strip(), pieces[1]
        if not course_id:
            raise ScheduleParseError(f"line {line_number}: empty course id", text=raw)
        terms = offerings.setdefault(course_id, set())
        for chunk in re.split(r"[,;]", term_list):
            chunk = chunk.strip()
            if not chunk:
                continue
            try:
                terms.add(Term.parse(chunk, calendar))
            except ScheduleParseError as exc:
                raise ScheduleParseError(
                    f"line {line_number}: bad term {chunk!r}", text=raw
                ) from exc
    return Schedule(offerings)


def parse_schedule_text(
    text: str, calendar: AcademicCalendar = SPRING_FALL
) -> Schedule:
    """Parse a whole line-format schedule document."""
    return parse_schedule_lines(text.splitlines(), calendar)


def _looks_like_header(row: List[str]) -> bool:
    if len(row) < 2:
        return False
    first, second = row[0].strip().lower(), row[1].strip().lower()
    return first in ("course", "course_id", "courseid", "id") and second in (
        "term",
        "semester",
        "offered",
    )


def parse_schedule_csv(
    text: str, calendar: AcademicCalendar = SPRING_FALL
) -> Schedule:
    """Parse CSV-format schedule rows (``course_id,term`` per offering)."""
    offerings: Dict[str, Set[Term]] = {}
    reader = csv.reader(io.StringIO(text))
    for row_number, row in enumerate(reader, start=1):
        if not row or all(not cell.strip() for cell in row):
            continue
        if row[0].lstrip().startswith("#"):
            continue
        if row_number == 1 and _looks_like_header(row):
            continue
        if len(row) < 2:
            raise ScheduleParseError(
                f"row {row_number}: expected course_id,term", text=",".join(row)
            )
        course_id = row[0].strip()
        term_text = row[1].strip()
        if not course_id or not term_text:
            raise ScheduleParseError(
                f"row {row_number}: empty course id or term", text=",".join(row)
            )
        try:
            term = Term.parse(term_text, calendar)
        except ScheduleParseError as exc:
            raise ScheduleParseError(
                f"row {row_number}: bad term {term_text!r}", text=",".join(row)
            ) from exc
        offerings.setdefault(course_id, set()).add(term)
    return Schedule(offerings)


def schedule_to_rows(schedule: Schedule) -> List[Tuple[str, str]]:
    """Flatten a schedule back into sorted ``(course_id, term)`` rows.

    Useful for writing registrar-style CSV exports; the output round-trips
    through :func:`parse_schedule_csv`.
    """
    rows: List[Tuple[str, str]] = []
    for course_id in sorted(schedule.course_ids()):
        for term in sorted(schedule.offerings(course_id)):
            rows.append((course_id, str(term)))
    return rows
