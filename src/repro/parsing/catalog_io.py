"""Catalog persistence and the registrar-to-catalog pipeline.

Combines the two parsers into the paper's full back-end flow (Fig. 2):
course descriptions → Prerequisite Parser, schedule table → Schedule
Parser, both joined into a validated :class:`~repro.catalog.Catalog`.
Also round-trips catalogs through JSON files so front-ends can cache the
parsed registrar data.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, Mapping, Optional, Union

from ..catalog import Catalog, Course, Schedule
from ..errors import CatalogError
from .prereq_parser import parse_prerequisites
from .schedule_parser import parse_schedule_text

__all__ = [
    "save_catalog",
    "load_catalog",
    "load_catalog_json",
    "build_catalog_from_registrar",
]

PathLike = Union[str, "os.PathLike[str]"]


def save_catalog(catalog: Catalog, path: PathLike, indent: int = 2) -> None:
    """Write ``catalog`` to ``path`` as JSON (inverse of :func:`load_catalog`)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(catalog.to_dict(), handle, indent=indent, sort_keys=True)
        handle.write("\n")


def load_catalog(path: PathLike) -> Catalog:
    """Read a catalog previously written by :func:`save_catalog`."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return load_catalog_json(data)


def load_catalog_json(data: Mapping[str, Any]) -> Catalog:
    """Build a catalog from already-parsed JSON data."""
    if not isinstance(data, Mapping):
        raise CatalogError(f"catalog JSON must be an object, got {type(data).__name__}")
    return Catalog.from_dict(data)


def build_catalog_from_registrar(
    course_descriptions: Mapping[str, str],
    schedule_text: str,
    workloads: Optional[Mapping[str, float]] = None,
    tags: Optional[Mapping[str, Iterable[str]]] = None,
    titles: Optional[Mapping[str, str]] = None,
    instructor_permission: str = "ignore",
) -> Catalog:
    """Run the full back-end pipeline over raw registrar text.

    Parameters
    ----------
    course_descriptions:
        ``{course_id: prerequisite prose}``.  Every course in the catalog
        must appear here (use an empty string for no prerequisites).
    schedule_text:
        Line-format schedule document (see
        :func:`~repro.parsing.schedule_parser.parse_schedule_text`).
    workloads:
        Optional ``{course_id: weekly hours}`` estimates (defaults to the
        :class:`~repro.catalog.Course` default).
    tags:
        Optional ``{course_id: labels}`` (``core``/``elective`` …).
    titles:
        Optional ``{course_id: human title}``.
    instructor_permission:
        Forwarded to the prerequisite parser.

    Returns
    -------
    Catalog
        Validated: schedules may only mention described courses, and
        prerequisites may only reference described courses.
    """
    workloads = dict(workloads or {})
    tags = {cid: frozenset(v) for cid, v in (tags or {}).items()}
    titles = dict(titles or {})

    courses = []
    for course_id, prose in course_descriptions.items():
        kwargs: Dict[str, Any] = {
            "course_id": course_id,
            "prereq": parse_prerequisites(prose, instructor_permission),
        }
        if course_id in workloads:
            kwargs["workload_hours"] = workloads[course_id]
        if course_id in tags:
            kwargs["tags"] = tags[course_id]
        if course_id in titles:
            kwargs["title"] = titles[course_id]
        courses.append(Course(**kwargs))

    schedule = parse_schedule_text(schedule_text)
    return Catalog(courses, schedule=schedule)


def dump_catalog_json(catalog: Catalog) -> str:
    """The catalog as a JSON string (stable key order)."""
    return json.dumps(catalog.to_dict(), indent=2, sort_keys=True)
