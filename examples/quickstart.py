"""Quickstart: explore learning paths on the bundled evaluation catalog.

Run with::

    python examples/quickstart.py

Walks the three exploration tasks of the paper on the 38-course synthetic
Brandeis catalog: all options for a couple of semesters ahead
(deadline-driven), all routes to the CS major (goal-driven, counted), and
the top-5 fastest routes (ranked).
"""

from repro import CourseNavigator, Term
from repro.data import brandeis_catalog, brandeis_major_goal
from repro.system import render_path, render_path_table


def main() -> None:
    navigator = CourseNavigator(brandeis_catalog())
    goal = brandeis_major_goal()

    # A first-semester student: nothing completed, starting Fall 2014.
    start = Term(2014, "Fall")
    graduation = Term(2015, "Fall")

    print("=" * 72)
    print("1. Deadline-driven: every course-selection option through", graduation)
    print("=" * 72)
    result = navigator.explore_deadline(start, graduation, max_courses_per_term=2)
    print(f"{result.path_count} possible learning paths "
          f"({result.graph.num_nodes} statuses explored, "
          f"{result.stats.elapsed_seconds:.2f}s)\n")
    print(render_path_table(result.paths(), navigator.catalog, limit=8))

    # Goal exploration needs more runway; count the full set for a
    # four-semester horizon ending Fall 2015.
    print()
    print("=" * 72)
    print("2. Goal-driven: paths to the CS major (7 core + 5 electives)")
    print("=" * 72)
    start = Term(2013, "Fall")
    count = navigator.count_goal(start, goal, graduation)
    print(f"{count:,} distinct ways to complete the major between "
          f"{start} and {graduation} (max 3 courses/semester)")

    print()
    print("=" * 72)
    print("3. Ranked: the top-5 fastest routes to the major")
    print("=" * 72)
    ranked = navigator.explore_ranked(start, goal, graduation, k=5, ranking="time")
    for rank, (cost, path) in enumerate(ranked.ranked(), start=1):
        print(f"\n#{rank} — {int(cost)} semesters")
        print(render_path(path, catalog=navigator.catalog, indent="  "))


if __name__ == "__main__":
    main()
