"""Observability walkthrough: trace, meter, and profile an exploration.

Run with::

    python examples/traced_exploration.py

Performs a goal-driven run and a ranked run over a four-semester horizon
with the full observability stack attached, then shows the three outputs:
the span trace (written to ``traced_exploration.jsonl``), the per-phase
time breakdown, and the Prometheus metrics exposition.
"""

import json
import os
import tempfile

from repro import CourseNavigator, MetricsRegistry, Term, Tracer
from repro.obs import JsonlSink
from repro.data import brandeis_catalog, brandeis_major_goal


def main() -> None:
    trace_path = os.path.join(tempfile.gettempdir(), "traced_exploration.jsonl")
    tracer = Tracer(sinks=[JsonlSink(trace_path)])
    metrics = MetricsRegistry()
    navigator = CourseNavigator(
        brandeis_catalog(), tracer=tracer, metrics=metrics, capture_memory=True
    )
    goal = brandeis_major_goal()
    start, end = Term(2013, "Fall"), Term(2015, "Fall")

    print("=" * 72)
    print("Instrumented exploration:", goal.describe())
    print("=" * 72)

    result = navigator.explore_goal(start, goal, end)
    print(f"goal-driven: {result.path_count:,} goal paths, "
          f"{result.stats.nodes_created:,} nodes "
          f"({result.stats.elapsed_seconds:.2f}s)")

    ranked = navigator.explore_ranked(start, goal, end, k=3, ranking="time")
    print(f"ranked:      top-{len(ranked.paths)} in "
          f"{ranked.stats.elapsed_seconds:.2f}s")
    tracer.close()

    obs = navigator.observability
    print()
    print("Per-phase time breakdown (inclusive, both runs):")
    print(obs.phases.render(indent="  "))
    if obs.last_memory is not None:
        print(f"  peak memory (last run): {obs.last_memory.peak_kib:,.0f} KiB")

    print()
    print(f"Span trace written to {trace_path}:")
    with open(trace_path, "r", encoding="utf-8") as handle:
        records = [json.loads(line) for line in handle]
    roots = [r for r in records if r["parent_id"] is None]
    print(f"  {len(records):,} spans, roots: {[r['name'] for r in roots]}")
    slowest = max(records, key=lambda r: r["duration"])
    print(f"  slowest span: {slowest['name']} ({slowest['duration']:.3f}s)")
    by_name = {}
    for record in records:
        by_name.setdefault(record["name"], []).append(record["duration"])
    for name in sorted(by_name, key=lambda n: -sum(by_name[n]))[:6]:
        durations = by_name[name]
        print(f"    {name:22} x{len(durations):<6,} {sum(durations):8.3f}s total")

    print()
    print("Prometheus exposition (counters only, histograms omitted):")
    for line in metrics.render_prometheus().splitlines():
        if line.startswith("repro_") and "_bucket" not in line \
                and "duration_seconds" not in line:
            print("  " + line)


if __name__ == "__main__":
    main()
