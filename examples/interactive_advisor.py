"""Interactive advising session — the paper's introduction as a program.

Run with::

    python examples/interactive_advisor.py

The paper opens with the questions students actually ask: *"which course
selections increase my future course options and number of possible paths
to a CS major?"*.  This example drives a :class:`PlanningSession` the way
an advising tool would:

* each semester, preview every legal selection and report how many routes
  to the major each one keeps alive,
* commit to the most door-keeping choice under real-life constraints
  (a 36-hour weekly workload cap, never pairing the two heaviest
  theory courses),
* audit progress after every term, and
* when the goal comes within reach, hand over to the ranked generator
  for the endgame.
"""

from repro import CourseNavigator, ExplorationConfig, Term
from repro.core import ForbiddenCombination, MaxWorkloadPerTerm
from repro.data import brandeis_catalog, brandeis_major_goal
from repro.system import PlanningSession
from repro.system.visualizer import render_path


def main() -> None:
    catalog = brandeis_catalog()
    navigator = CourseNavigator(catalog)
    config = ExplorationConfig(
        constraints=(
            MaxWorkloadPerTerm(catalog, 36.0),
            ForbiddenCombination({"COSI 30a", "COSI 101a"}),
        ),
    )
    session = PlanningSession(
        navigator,
        brandeis_major_goal(),
        start_term=Term(2013, "Fall"),
        deadline=Term(2015, "Fall"),
        config=config,
    )

    print("constraints in force:")
    for constraint in config.constraints:
        print(f"  - {constraint.describe()}")

    term_number = 0
    while not session.goal_satisfied() and session.semesters_left > 0:
        term_number += 1
        print()
        print("=" * 72)
        print(f"Semester {term_number}: {session.term}  "
              f"({session.semesters_left} terms to the deadline)")
        print("=" * 72)
        print(f"options: {', '.join(sorted(session.options())) or '(none)'}")

        previews = session.preview_all()
        print("\ntop selections by routes kept open:")
        for preview in previews[:4]:
            print(f"  {preview.describe()}")

        choice = previews[0]
        if choice.goal_satisfied or (
            len(previews) > 1 and choice.routes_remaining == 0
        ):
            choice = previews[0]
        print(f"\nadvisor picks: {', '.join(sorted(choice.selection)) or '(skip)'}")
        session.take(*choice.selection)
        audit = session.audit()
        print(audit.describe())

        if not session.goal_satisfied() and session.routes_remaining() <= 50:
            print("\nfew routes left — switching to the ranked endgame:")
            plan = session.best_plans(k=1, ranking="workload")
            cost, path = plan.ranked()[0]
            print(render_path(path, catalog=catalog, indent="  "))
            for _term, selection in path:
                session.take(*selection)
            break

    print()
    print("=" * 72)
    if session.goal_satisfied():
        print(f"Major complete at {session.term}!  The transcript:")
        print(render_path(session.path_so_far(), catalog=catalog, indent="  "))
        ok, reason = navigator.check_transcript(
            session.path_so_far(), session.goal, session.deadline, config=config
        )
        print(f"\ncontainment self-check: {'contained' if ok else reason}")
    else:
        print("Deadline reached without completing the major.")


if __name__ == "__main__":
    main()
