"""Transcript auditing and the §5.2 containment experiment in miniature.

Run with::

    python examples/transcript_audit.py

Two uses of the same machinery:

1. **Research reproduction** — simulate a cohort of students (the paper's
   83 anonymized transcripts are private) and verify every graduate's
   path is contained in the goal-driven output, exactly as §5.2 reports.
2. **Advising tool** — audit a hand-written plan: the checker replays it
   against the catalog rules and pinpoints the first violation (missing
   prerequisite, course not offered that term, overloaded semester …).
"""

from repro import CourseNavigator, EnrollmentStatus, LearningPath, Term
from repro.data import (
    brandeis_catalog,
    brandeis_major_goal,
    simulate_transcripts,
    start_term_for_semesters,
)
from repro.data.brandeis import EVALUATION_END_TERM


def build_plan(catalog, start, steps):
    """Assemble a LearningPath from (term, courses) steps."""
    completed = frozenset()
    statuses = [EnrollmentStatus(start, completed)]
    selections = []
    term = start
    for courses in steps:
        selections.append(frozenset(courses))
        completed = completed | frozenset(courses)
        term = term + 1
        statuses.append(EnrollmentStatus(term, completed))
    return LearningPath(statuses, selections)


def main() -> None:
    navigator = CourseNavigator(brandeis_catalog())
    goal = brandeis_major_goal()
    start = start_term_for_semesters(5)  # Spring 2013 cohort

    print("=" * 72)
    print("1. Cohort simulation + containment (paper §5.2)")
    print("=" * 72)
    body = simulate_transcripts(
        navigator.catalog, goal, start, EVALUATION_END_TERM, count=25, seed=5
    )
    print(f"simulated {body.attempts} students; {body.successes} completed the "
          f"major by {EVALUATION_END_TERM} ({body.success_rate:.0%})")
    report = navigator.check_transcripts(body.paths, goal, EVALUATION_END_TERM)
    print(f"containment: {report.summary()} — every feasible transcript is in "
          f"the generated goal-driven set (paper: 83/83)")

    print()
    print("=" * 72)
    print("2. Auditing a hand-written plan")
    print("=" * 72)
    # This plan looks plausible but takes COSI 30a one semester too early:
    # its prerequisite COSI 21a is only *being taken* that same Fall.
    broken = build_plan(
        navigator.catalog,
        Term(2013, "Fall"),
        [
            ("COSI 11a", "COSI 29a", "COSI 65a"),
            ("COSI 12b", "COSI 21a", "COSI 125a"),
            ("COSI 30a", "COSI 121b", "COSI 127b"),
        ],
    )
    # Break it: swap 30a into the second semester.
    really_broken = build_plan(
        navigator.catalog,
        Term(2013, "Fall"),
        [
            ("COSI 11a", "COSI 29a", "COSI 65a"),
            ("COSI 30a", "COSI 12b", "COSI 21a"),
        ],
    )
    for label, plan in (("three-semester prefix", broken), ("premature COSI 30a", really_broken)):
        verdict, reason = navigator.check_transcript(plan, goal, EVALUATION_END_TERM)
        print(f"\n  plan [{label}]: {'OK' if verdict else 'REJECTED'}")
        print(f"    -> {reason}")


if __name__ == "__main__":
    main()
