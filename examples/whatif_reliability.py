"""What-if planning under schedule uncertainty (reliability ranking).

Run with::

    python examples/whatif_reliability.py

Universities publish final class schedules only one or two semesters
ahead (§4.3.1).  Planning further out means betting on offerings that are
only *probably* there — a yearly course is a safe bet, an
alternate-years seminar is a coin flip.  This example:

1. builds the historical offering model (released schedule certain
   through Spring '12; historical frequencies beyond);
2. projects a probabilistic schedule for the following three years;
3. generates the fastest plans and the most *reliable* plans to the
   major, and compares what the speed-optimal plan risks.
"""

from repro import CourseNavigator, ExplorationConfig, Term
from repro.core import ReliabilityRanking, TimeRanking, generate_ranked
from repro.data import brandeis_catalog, brandeis_major_goal, brandeis_offering_model
from repro.system import render_path


def main() -> None:
    catalog = brandeis_catalog()
    goal = brandeis_major_goal()
    # It is Fall 2013; the registrar has released schedules through
    # Spring 2014.  Fall 2014 onward is a bet on history.
    release_horizon = Term(2014, "Spring")
    model = brandeis_offering_model(release_horizon_end=release_horizon)

    start = Term(2013, "Fall")
    graduation = Term(2015, "Fall")

    # Plan over the *projected* schedule: every term where the offering
    # probability is positive is a candidate slot; reliability ranking
    # discounts the uncertain ones.
    projected = model.projected_schedule(
        catalog.course_ids(), start, graduation, threshold=0.0
    )
    config = ExplorationConfig(schedule=projected)

    print("=" * 72)
    print(f"Schedule certainty ends at {release_horizon}; beyond that we "
          f"plan on historical odds")
    print("=" * 72)
    for course_id in ("COSI 29a", "COSI 45b", "COSI 104a"):
        probabilities = [
            (term, model.probability(course_id, term))
            for term in (Term(2013, "Fall"), Term(2014, "Spring"), Term(2014, "Fall"))
        ]
        rendered = ", ".join(f"{t.short}: {p:.2f}" for t, p in probabilities)
        print(f"  {course_id:12} {rendered}")

    print()
    print("=" * 72)
    print("Fastest plan (time ranking) — and how risky it is")
    print("=" * 72)
    fastest = generate_ranked(
        catalog, start, goal, graduation, 1, TimeRanking(), config=config
    )
    cost, path = fastest.ranked()[0]
    print(f"{int(cost)} semesters; probability every planned offering "
          f"materializes: {path.reliability(model):.3f}")
    print(render_path(path, catalog=catalog, offering_model=model, indent="  "))

    print()
    print("=" * 72)
    print("Most reliable plans (reliability ranking)")
    print("=" * 72)
    ranking = ReliabilityRanking(model)
    reliable = generate_ranked(
        catalog, start, goal, graduation, 3, ranking, config=config
    )
    for rank, (cost, path) in enumerate(reliable.ranked(), start=1):
        print(f"\n#{rank} — reliability {ranking.score(cost):.3f}, "
              f"{len(path)} semesters")
        print(render_path(path, catalog=catalog, offering_model=model, indent="  "))

    best_reliability = ranking.score(reliable.costs[0])
    print()
    print(f"Speed costs certainty: the fastest plan materializes with "
          f"probability {path_reliability(fastest, model):.3f}, the safest "
          f"with {best_reliability:.3f}.")

    print()
    print("=" * 72)
    print("Risk report for the fastest plan (and a Monte Carlo check)")
    print("=" * 72)
    from repro.analysis import assess_plan, monte_carlo_survival, replan

    fast_path = fastest.paths[0]
    risk = assess_plan(fast_path, model)
    print(risk.describe())
    empirical = monte_carlo_survival(fast_path, model, trials=5000, seed=42)
    print(f"Monte Carlo over 5,000 sampled schedules: {empirical:.3f} "
          f"survival (analytic {risk.reliability:.3f})")

    print()
    print("=" * 72)
    print("And if the weakest bet falls through?  Re-planning")
    print("=" * 72)
    weakest = risk.weakest(1)[0]
    print(f"Suppose {weakest.course_id} is cancelled in {weakest.term}.")
    result = replan(
        catalog, goal, fast_path,
        disrupted_term=weakest.term,
        deadline=graduation,
        dropped_courses={weakest.course_id},
        config=config,
    )
    print(result.describe())
    if result.recoverable:
        print(render_path(result.repaired, catalog=catalog, indent="  "))
    else:
        print("(the weakest bet sits in the plan's final semester — with no "
              "slack term left, a cancellation there is fatal; this is "
              "exactly why the safest plan above front-loads its risk)")


def path_reliability(result, model) -> float:
    """Reliability of a ranked result's best path."""
    return result.paths[0].reliability(model)


if __name__ == "__main__":
    main()
