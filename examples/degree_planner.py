"""Degree planner: a mid-degree student planning the rest of the major.

Run with::

    python examples/degree_planner.py

The scenario the paper's introduction motivates: a student halfway
through the program wants to know (a) where they stand against the degree
requirement, (b) whether graduation by a deadline is still possible, and
(c) the best remaining plans under different preferences — fastest vs.
lightest workload — while refusing to take a specific course.
"""

from repro import CourseNavigator, Term
from repro.data import brandeis_catalog, brandeis_major_goal
from repro.graph.export import graph_to_dot
from repro.system import render_path


COMPLETED = frozenset({
    "COSI 11a",   # intro programming
    "COSI 29a",   # discrete structures
    "COSI 12b",   # advanced programming
    "COSI 21a",   # data structures
    "COSI 65a",   # one elective so far
})


def main() -> None:
    navigator = CourseNavigator(brandeis_catalog())
    goal = brandeis_major_goal()
    now = Term(2014, "Spring")
    deadline = Term(2015, "Fall")

    print("=" * 72)
    print("Degree audit")
    print("=" * 72)
    assignment = goal.assignment(COMPLETED)
    for course, group in sorted(assignment.items()):
        print(f"  {course:12} -> counts toward {group}")
    left = goal.remaining_courses(COMPLETED)
    print(f"\n{int(left)} more courses needed for: {goal.describe()}")

    print()
    print("=" * 72)
    print(f"Can I still graduate by {deadline}?")
    print("=" * 72)
    count = navigator.count_goal(now, goal, deadline, completed=COMPLETED)
    print(f"Yes — {count:,} distinct completion plans exist "
          f"(3 courses/semester max).")

    print()
    print("=" * 72)
    print("Fastest plan vs. lightest plan (avoiding COSI 101a)")
    print("=" * 72)
    for ranking, label in (("time", "fastest"), ("workload", "lightest workload")):
        result = navigator.explore_ranked(
            now, goal, deadline,
            k=1,
            ranking=ranking,
            completed=COMPLETED,
            avoid_courses={"COSI 101a"},
        )
        if not result.paths:
            print(f"\nNo plan avoids COSI 101a under the {label} ranking.")
            continue
        cost, path = result.ranked()[0]
        print(f"\nBest {label} plan (cost {cost:g}):")
        print(render_path(path, catalog=navigator.catalog, indent="  "))

    print()
    print("=" * 72)
    print("Exporting the remaining-plan graph for the visualizer")
    print("=" * 72)
    graph = navigator.explore_goal(now, goal, deadline, completed=COMPLETED).graph
    dot = graph_to_dot(graph, max_nodes=40)
    print(f"learning graph: {graph.num_nodes} nodes; DOT preview "
          f"({len(dot.splitlines())} lines):")
    print("\n".join(dot.splitlines()[:6]))
    print("  ...")


if __name__ == "__main__":
    main()
