"""Live telemetry walkthrough: watch, scrape, and reap an exploration.

Run with::

    python examples/live_progress.py

Three acts:

1. A goal-driven run with a ``ProgressTracker`` attached and a
   ``MetricsServer`` scraping it over localhost HTTP while it runs —
   the same ``/metrics`` + ``/progress`` endpoints a Prometheus
   scraper (or plain ``curl``) would hit.
2. A node budget killing an otherwise-exhaustive deadline run, showing
   the partial progress snapshot carried by the ``BudgetExceededError``.
3. A ``Watchdog`` cancelling a runaway run from another thread.
"""

import json
import threading
import urllib.request

from repro.data import brandeis_catalog, brandeis_major_goal
from repro.errors import BudgetExceededError, RunCancelledError
from repro.obs import (
    ExplorationBudget,
    MetricsRegistry,
    MetricsServer,
    ProgressTracker,
    Watchdog,
)
from repro.semester import Term
from repro.system.navigator import CourseNavigator

START, END = Term(2013, "Fall"), Term(2015, "Fall")
LONG_START = Term(2012, "Fall")  # exhaustive over this horizon = minutes


def act_one_scrape_a_live_run() -> None:
    print("=" * 72)
    print("1. Scraping a live run over HTTP")
    print("=" * 72)
    registry = MetricsRegistry()
    tracker = ProgressTracker()
    navigator = CourseNavigator(
        brandeis_catalog(), metrics=registry, progress=tracker
    )

    samples = []
    stop = threading.Event()

    def scraper(url: str) -> None:
        while not stop.is_set():
            with urllib.request.urlopen(url + "/progress", timeout=5) as response:
                samples.append(json.loads(response.read()))

    with MetricsServer(registry=registry, progress=tracker) as server:
        print(f"serving {server.url}/metrics and {server.url}/progress")
        thread = threading.Thread(target=scraper, args=(server.url,), daemon=True)
        thread.start()
        result = navigator.explore_goal(START, brandeis_major_goal(), END)
        stop.set()
        thread.join()

    print(f"run finished: {result.path_count:,} goal paths")
    print(f"scraped {len(samples)} snapshots while it ran; nodes_seen went "
          f"{samples[0]['nodes_seen']} -> {samples[-1]['nodes_seen']}")
    final = tracker.snapshot()
    print("final progress line:", final.render_line())


def act_two_node_budget() -> None:
    print()
    print("=" * 72)
    print("2. A node budget reaping an exhaustive deadline run")
    print("=" * 72)
    budget = ExplorationBudget(max_nodes=5_000)
    navigator = CourseNavigator(brandeis_catalog(), budget=budget)
    try:
        navigator.explore_deadline(LONG_START, END)
    except BudgetExceededError as exc:
        print(f"reaped: {exc}")
        snapshot = exc.progress
        print("partial progress:", snapshot.render_line())
        print(f"  deepest semester reached: {snapshot.depth}/{snapshot.horizon}")
        print(f"  budget state: {snapshot.budget}")


def act_three_watchdog() -> None:
    print()
    print("=" * 72)
    print("3. A watchdog cancelling a runaway run from another thread")
    print("=" * 72)
    budget = ExplorationBudget()  # no limits of its own
    navigator = CourseNavigator(brandeis_catalog(), budget=budget)
    try:
        with Watchdog(budget, timeout=0.25):
            navigator.explore_deadline(LONG_START, END)
    except RunCancelledError as exc:
        print(f"cancelled: {exc}")
        print("partial progress:", exc.progress.render_line())


def main() -> None:
    act_one_scrape_a_live_run()
    act_two_node_budget()
    act_three_watchdog()


if __name__ == "__main__":
    main()
