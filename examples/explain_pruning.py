"""EXPLAIN walkthrough: audit every pruning decision of one exploration.

Run with::

    python examples/explain_pruning.py

Performs a goal-driven run over a four-semester horizon with a
``DecisionRecorder`` attached, streams the decision audit to
``explain_pruning.jsonl``, and then answers the questions the aggregate
counters cannot: which bound cut each subtree (with the actual ``left_i``
/ ``min_i`` / ``m`` values), which cuts were one semester from surviving,
and why a specific course never appeared in a returned path.
"""

import os
import tempfile

from repro import CourseNavigator, DecisionRecorder, ExplainReport, Term
from repro.obs import JsonlSink, describe_verdict
from repro.data import brandeis_catalog, brandeis_major_goal


def main() -> None:
    audit_path = os.path.join(tempfile.gettempdir(), "explain_pruning.jsonl")
    recorder = DecisionRecorder(sinks=[JsonlSink(audit_path)])
    navigator = CourseNavigator(brandeis_catalog(), decisions=recorder)
    goal = brandeis_major_goal()
    start, end = Term(2013, "Fall"), Term(2015, "Fall")

    print("=" * 72)
    print("Audited exploration:", goal.describe())
    print("=" * 72)

    result = navigator.explore_goal(start, goal, end)
    recorder.close()
    print(f"{result.path_count:,} goal paths, "
          f"{result.pruning_stats.total:,} subtrees pruned, "
          f"{len(recorder):,} decisions recorded -> {audit_path}")

    report = recorder.report()

    print()
    print("Decision census:")
    for kind, count in sorted(report.counts_by_kind().items()):
        print(f"  {kind:12} {count:8,}")

    print()
    print("Strategy attribution, recomputed from events (Table 1 split):")
    attribution = report.attribution()
    total = sum(attribution.values())
    for strategy, count in sorted(attribution.items(), key=lambda kv: -kv[1]):
        print(f"  {strategy:14} {count:8,}  {count / total:6.1%}")
    assert attribution == result.pruning_stats.as_dict()
    print("  (matches the run's aggregate PruningStats exactly)")

    print()
    print("One pruned decision, with its evidence and lineage:")
    event = report.pruned()[0]
    for step in report.lineage(event.node_id):
        selection = ", ".join(step.selection) or "(start)"
        print(f"  {step.kind:8} node {step.node_id} [{step.term}] {{{selection}}}")
    for verdict in event.verdicts:
        print(f"    {describe_verdict(verdict)}")

    print()
    print("Near misses (cuts within 1 of surviving the bound):")
    for miss in report.near_misses(max_slack=1.0, limit=3):
        print(f"  node {miss.node_id} [{miss.term}] by {miss.strategy}: "
              f"{describe_verdict(miss.firing_verdict)}")

    print()
    course = "COSI 118a"
    print(f"Why-not query for {course}:")
    print(report.why_not(course).render(limit=3))

    # the JSONL audit rebuilds the identical report offline
    offline = ExplainReport.from_jsonl(audit_path)
    assert offline.attribution() == report.attribution()
    print()
    print(f"offline reload of {audit_path}: "
          f"{len(offline.events):,} events, attribution matches")


if __name__ == "__main__":
    main()
