"""The full registrar back-end pipeline on raw text (paper Fig. 2).

Run with::

    python examples/registrar_pipeline.py

Takes the two artifacts a registrar actually publishes — prerequisite
prose in course descriptions and a schedule table — and runs them through
the Prerequisite Parser and Schedule Parser into a validated catalog,
saves it to JSON (what a deployment would cache), reloads it, and
explores it.  Use this as the template for plugging in your own
university's data.
"""

import json
import tempfile
from pathlib import Path

from repro import CourseNavigator, CourseSetGoal, Term
from repro.parsing import build_catalog_from_registrar, load_catalog, save_catalog
from repro.system import render_path_table

COURSE_DESCRIPTIONS = {
    "MATH 101": "",
    "CS 100": "none",
    "CS 110": "Prerequisite: CS 100.",
    "CS 120": "Prerequisites: CS 100 and MATH 101",
    "CS 210": "CS 110 and CS 120, or permission of the instructor",
    "CS 230": "CS 110 OR CS 120",
    "CS 300": "2 OF [CS 210, CS 230, MATH 101]",
}

SCHEDULE_TEXT = """
# registrar schedule export, AY 2020-2022
MATH 101: Fall 2020, Spring 2021, Fall 2021, Spring 2022
CS 100:   Fall 2020, Spring 2021, Fall 2021, Spring 2022
CS 110:   Spring 2021, Spring 2022
CS 120:   Spring 2021, Fall 2021
CS 210:   Fall 2021, Spring 2022
CS 230:   Fall 2021, Spring 2022
CS 300:   Spring 2022
"""

WORKLOADS = {"CS 100": 8, "CS 110": 10, "CS 120": 12, "CS 210": 14, "CS 230": 10, "CS 300": 16}


def main() -> None:
    print("=" * 72)
    print("Parsing registrar text")
    print("=" * 72)
    catalog = build_catalog_from_registrar(
        COURSE_DESCRIPTIONS, SCHEDULE_TEXT, workloads=WORKLOADS
    )
    for course_id in catalog.topological_order():
        course = catalog[course_id]
        print(f"  {course_id:10} prereq: {course.prereq.to_string()}")

    print()
    print("=" * 72)
    print("Round-tripping through JSON (the deployment cache)")
    print("=" * 72)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "catalog.json"
        save_catalog(catalog, path)
        size = path.stat().st_size
        reloaded = load_catalog(path)
        with open(path) as handle:
            keys = sorted(json.load(handle))
        print(f"  wrote {size} bytes ({keys}), reloaded {len(reloaded)} courses")
        catalog = reloaded

    print()
    print("=" * 72)
    print("Exploring the parsed catalog")
    print("=" * 72)
    navigator = CourseNavigator(catalog)
    goal = CourseSetGoal({"CS 300"})
    # CS 300 is offered in Spring 2022; a course taken in Spring '22 is
    # complete by the Fall '22 status, so that is the goal deadline.
    start, end = Term(2020, "Fall"), Term(2022, "Fall")

    count = navigator.count_goal(start, goal, end)
    print(f"  {count} paths complete CS 300 by {end}\n")

    result = navigator.explore_ranked(start, goal, end, k=3, ranking="workload")
    print("  three lightest plans:")
    print(render_path_table((p for _c, p in result.ranked()), catalog, limit=3))


if __name__ == "__main__":
    main()
