"""Tests for run statistics containers."""

import json
from unittest import mock

from repro.core import ExplorationStats
from repro.core.pruning import PruningStats, suppressed_selection_count


class TestExplorationStats:
    def test_counters(self):
        stats = ExplorationStats()
        stats.record_node()
        stats.record_node()
        stats.record_edge()
        stats.record_terminal("goal")
        stats.record_terminal("goal")
        stats.record_terminal("deadline")
        stats.record_prune("time")
        stats.record_prune("time", 4)
        stats.record_prune("availability")
        stats.record_merge()
        assert stats.nodes_created == 2
        assert stats.edges_created == 1
        assert stats.terminal_count("goal") == 2
        assert stats.terminal_count("deadline") == 1
        assert stats.terminal_count("dead_end") == 0
        assert stats.total_prunes == 6
        assert stats.prune_share("time") == 5 / 6
        assert stats.merged_hits == 1

    def test_prune_share_empty(self):
        assert ExplorationStats().prune_share("time") == 0.0

    def test_timer(self):
        stats = ExplorationStats()
        stats.start_timer()
        stats.stop_timer()
        assert stats.elapsed_seconds >= 0.0

    def test_stop_without_start_is_noop(self):
        stats = ExplorationStats()
        stats.stop_timer()
        assert stats.elapsed_seconds == 0.0

    def test_timer_accumulates_across_pairs(self):
        stats = ExplorationStats()
        with mock.patch("repro.core.stats.time.perf_counter",
                        side_effect=[10.0, 12.5, 100.0, 101.0]):
            stats.start_timer()
            stats.stop_timer()
            stats.start_timer()
            stats.stop_timer()
        assert stats.elapsed_seconds == 3.5

    def test_double_stop_does_not_double_count(self):
        stats = ExplorationStats()
        with mock.patch("repro.core.stats.time.perf_counter",
                        side_effect=[10.0, 12.0]):
            stats.start_timer()
            stats.stop_timer()
            stats.stop_timer()  # second stop: timer no longer running
        assert stats.elapsed_seconds == 2.0

    def test_timer_counts_epoch_zero_start(self):
        # perf_counter may legitimately be 0.0; a falsy check would
        # silently drop the interval.
        stats = ExplorationStats()
        with mock.patch("repro.core.stats.time.perf_counter",
                        side_effect=[0.0, 1.25]):
            stats.start_timer()
            stats.stop_timer()
        assert stats.elapsed_seconds == 1.25

    def test_merge_sums_all_counters(self):
        a = ExplorationStats()
        a.record_node()
        a.record_edge()
        a.record_terminal("goal")
        a.record_prune("time", 3)
        a.record_merge()
        a.elapsed_seconds = 1.5
        b = ExplorationStats()
        b.record_node()
        b.record_node()
        b.record_terminal("goal")
        b.record_terminal("deadline")
        b.record_prune("time")
        b.record_prune("availability", 2)
        b.elapsed_seconds = 0.5

        returned = a.merge(b)
        assert returned is a
        assert a.nodes_created == 3
        assert a.edges_created == 1
        assert a.terminals == {"goal": 2, "deadline": 1}
        assert a.prune_events == {"time": 4, "availability": 2}
        assert a.merged_hits == 1
        assert a.elapsed_seconds == 2.0
        # b untouched
        assert b.nodes_created == 2
        assert b.prune_events == {"time": 1, "availability": 2}

    def test_merge_with_empty_is_identity(self):
        a = ExplorationStats()
        a.record_node()
        a.record_terminal("goal")
        before = a.as_dict()
        a.merge(ExplorationStats())
        assert a.as_dict() == before

    def test_as_dict_round_trips_through_json(self):
        stats = ExplorationStats()
        stats.record_node()
        stats.record_edge()
        stats.record_terminal("goal")
        stats.record_prune("time", 2)
        stats.record_merge()
        stats.elapsed_seconds = 0.25
        parsed = json.loads(json.dumps(stats.as_dict()))
        assert parsed == stats.as_dict()
        assert parsed["prune_events"] == {"time": 2}
        assert parsed["elapsed_seconds"] == 0.25

    def test_as_dict_and_summary(self):
        stats = ExplorationStats()
        stats.record_node()
        stats.record_terminal("goal")
        data = stats.as_dict()
        assert data["nodes_created"] == 1
        assert data["terminals"] == {"goal": 1}
        assert "1 nodes" in stats.summary()
        assert "goal=1" in stats.summary()


class TestPruningStats:
    def test_record_and_share(self):
        stats = PruningStats()
        stats.record("time", 8)
        stats.record("availability", 2)
        assert stats.total == 10
        assert stats.share("time") == 0.8
        assert stats.share("availability") == 0.2
        assert stats.as_dict() == {"time": 8, "availability": 2}

    def test_share_empty(self):
        assert PruningStats().share("time") == 0.0


class TestSuppressedSelectionCount:
    def test_no_floor_no_suppression(self):
        assert suppressed_selection_count(5, 0) == 0
        assert suppressed_selection_count(5, 1) == 0

    def test_floor_two_counts_singletons(self):
        assert suppressed_selection_count(5, 2) == 5

    def test_floor_three_counts_singletons_and_pairs(self):
        assert suppressed_selection_count(4, 3) == 4 + 6

    def test_floor_beyond_options_counts_everything_below(self):
        assert suppressed_selection_count(2, 5) == 2 + 1

    def test_empty_options(self):
        assert suppressed_selection_count(0, 3) == 0
