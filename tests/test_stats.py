"""Tests for run statistics containers."""

from repro.core import ExplorationStats
from repro.core.pruning import PruningStats, suppressed_selection_count


class TestExplorationStats:
    def test_counters(self):
        stats = ExplorationStats()
        stats.record_node()
        stats.record_node()
        stats.record_edge()
        stats.record_terminal("goal")
        stats.record_terminal("goal")
        stats.record_terminal("deadline")
        stats.record_prune("time")
        stats.record_prune("time", 4)
        stats.record_prune("availability")
        stats.record_merge()
        assert stats.nodes_created == 2
        assert stats.edges_created == 1
        assert stats.terminal_count("goal") == 2
        assert stats.terminal_count("deadline") == 1
        assert stats.terminal_count("dead_end") == 0
        assert stats.total_prunes == 6
        assert stats.prune_share("time") == 5 / 6
        assert stats.merged_hits == 1

    def test_prune_share_empty(self):
        assert ExplorationStats().prune_share("time") == 0.0

    def test_timer(self):
        stats = ExplorationStats()
        stats.start_timer()
        stats.stop_timer()
        assert stats.elapsed_seconds >= 0.0

    def test_stop_without_start_is_noop(self):
        stats = ExplorationStats()
        stats.stop_timer()
        assert stats.elapsed_seconds == 0.0

    def test_as_dict_and_summary(self):
        stats = ExplorationStats()
        stats.record_node()
        stats.record_terminal("goal")
        data = stats.as_dict()
        assert data["nodes_created"] == 1
        assert data["terminals"] == {"goal": 1}
        assert "1 nodes" in stats.summary()
        assert "goal=1" in stats.summary()


class TestPruningStats:
    def test_record_and_share(self):
        stats = PruningStats()
        stats.record("time", 8)
        stats.record("availability", 2)
        assert stats.total == 10
        assert stats.share("time") == 0.8
        assert stats.share("availability") == 0.2
        assert stats.as_dict() == {"time": 8, "availability": 2}

    def test_share_empty(self):
        assert PruningStats().share("time") == 0.0


class TestSuppressedSelectionCount:
    def test_no_floor_no_suppression(self):
        assert suppressed_selection_count(5, 0) == 0
        assert suppressed_selection_count(5, 1) == 0

    def test_floor_two_counts_singletons(self):
        assert suppressed_selection_count(5, 2) == 5

    def test_floor_three_counts_singletons_and_pairs(self):
        assert suppressed_selection_count(4, 3) == 4 + 6

    def test_floor_beyond_options_counts_everything_below(self):
        assert suppressed_selection_count(2, 5) == 2 + 1

    def test_empty_options(self):
        assert suppressed_selection_count(0, 3) == 0
