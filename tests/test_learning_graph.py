"""Tests for the tree LearningGraph and the MergedStatusDag."""

import pytest

from repro.graph import EnrollmentStatus, LearningGraph, MergedStatusDag
from repro.semester import Term

F11, S12, F12 = Term(2011, "Fall"), Term(2012, "Spring"), Term(2012, "Fall")


def _root():
    return EnrollmentStatus(F11, frozenset(), {"A", "B"})


class TestLearningGraphStructure:
    def test_root(self):
        graph = LearningGraph(_root())
        assert graph.root_id == 0
        assert graph.num_nodes == 1
        assert graph.num_edges == 0
        assert graph.parent(0) is None
        assert graph.selection_into(0) == frozenset()

    def test_non_status_root_rejected(self):
        with pytest.raises(TypeError):
            LearningGraph("root")

    def test_add_child(self):
        graph = LearningGraph(_root())
        child = EnrollmentStatus(S12, {"A"})
        child_id = graph.add_child(0, frozenset({"A"}), child)
        assert child_id == 1
        assert graph.children(0) == (1,)
        assert graph.parent(1) == 0
        assert graph.selection_into(1) == {"A"}
        assert graph.out_degree(0) == 1
        assert graph.depth(1) == 1

    def test_bad_node_id(self):
        graph = LearningGraph(_root())
        with pytest.raises(IndexError):
            graph.status(5)
        with pytest.raises(IndexError):
            graph.add_child(5, frozenset(), _root())

    def test_leaf_ids(self):
        graph = LearningGraph(_root())
        graph.add_child(0, frozenset({"A"}), EnrollmentStatus(S12, {"A"}))
        graph.add_child(0, frozenset({"B"}), EnrollmentStatus(S12, {"B"}))
        assert list(graph.leaf_ids()) == [1, 2]


class TestTerminalsAndPaths:
    @pytest.fixture
    def graph(self):
        graph = LearningGraph(_root())
        a = graph.add_child(0, frozenset({"A"}), EnrollmentStatus(S12, {"A"}))
        b = graph.add_child(0, frozenset({"B"}), EnrollmentStatus(S12, {"B"}))
        ab = graph.add_child(a, frozenset({"B"}), EnrollmentStatus(F12, {"A", "B"}))
        graph.mark_terminal(ab, "goal")
        graph.mark_terminal(b, "dead_end")
        return graph

    def test_terminal_kinds(self, graph):
        assert graph.terminal_kind(3) == "goal"
        assert graph.terminal_kind(2) == "dead_end"
        assert graph.terminal_kind(0) is None

    def test_unknown_kind_rejected(self, graph):
        with pytest.raises(ValueError, match="unknown terminal kind"):
            graph.mark_terminal(0, "mystery")

    def test_path_to(self, graph):
        path = graph.path_to(3)
        assert len(path) == 2
        assert path.selections == (frozenset({"A"}), frozenset({"B"}))
        assert path.end.completed == {"A", "B"}

    def test_paths_default_excludes_pruned(self, graph):
        graph.mark_terminal(1, "pruned")
        kinds = [p.end.completed for p in graph.paths()]
        assert frozenset({"A"}) not in kinds  # wait: node 1 is interior with child
        assert len(list(graph.paths())) == 2

    def test_paths_filtered_by_kind(self, graph):
        assert len(list(graph.paths("goal"))) == 1
        assert len(list(graph.paths("dead_end"))) == 1
        assert len(list(graph.paths("deadline"))) == 0

    def test_count_paths(self, graph):
        assert graph.count_paths() == 2
        assert graph.count_paths("goal") == 1


class TestMergedStatusDag:
    def test_merging_by_key(self):
        root = _root()
        dag = MergedStatusDag(root)
        # Two orders of taking A then B / B then A converge at {A, B}.
        a, created_a = dag.ensure_node(EnrollmentStatus(S12, {"A"}))
        b, created_b = dag.ensure_node(EnrollmentStatus(S12, {"B"}))
        assert created_a and created_b
        ab1, created1 = dag.ensure_node(EnrollmentStatus(F12, {"A", "B"}))
        ab2, created2 = dag.ensure_node(EnrollmentStatus(F12, {"A", "B"}))
        assert created1 and not created2
        assert ab1 == ab2
        dag.add_edge(root.key, frozenset({"A"}), a)
        dag.add_edge(root.key, frozenset({"B"}), b)
        dag.add_edge(a, frozenset({"B"}), ab1)
        dag.add_edge(b, frozenset({"A"}), ab1)
        dag.mark_terminal(ab1, "goal")
        assert dag.num_nodes == 4
        assert dag.num_edges == 4
        assert dag.count_paths("goal") == 2  # two distinct selection sequences

    def test_edge_consistency_enforced(self):
        root = _root()
        dag = MergedStatusDag(root)
        a, _created = dag.ensure_node(EnrollmentStatus(S12, {"A"}))
        with pytest.raises(ValueError, match="inconsistent"):
            dag.add_edge(root.key, frozenset({"B"}), a)

    def test_edge_unknown_nodes_rejected(self):
        dag = MergedStatusDag(_root())
        with pytest.raises(KeyError):
            dag.add_edge((S12, frozenset()), frozenset(), dag.root_key)
        with pytest.raises(KeyError):
            dag.add_edge(dag.root_key, frozenset(), (S12, frozenset({"A"})))

    def test_mark_terminal_unknown_node(self):
        dag = MergedStatusDag(_root())
        with pytest.raises(KeyError):
            dag.mark_terminal((F12, frozenset({"Z"})), "goal")

    def test_count_paths_kind_filter(self):
        root = _root()
        dag = MergedStatusDag(root)
        a, _ = dag.ensure_node(EnrollmentStatus(S12, {"A"}))
        dag.add_edge(root.key, frozenset({"A"}), a)
        dag.mark_terminal(a, "deadline")
        assert dag.count_paths("goal") == 0
        assert dag.count_paths("deadline") == 1
        assert dag.count_paths() == 1

    def test_count_nodes_by_term(self):
        root = _root()
        dag = MergedStatusDag(root)
        a, _ = dag.ensure_node(EnrollmentStatus(S12, {"A"}))
        b, _ = dag.ensure_node(EnrollmentStatus(S12, {"B"}))
        histogram = dag.count_nodes_by_term()
        assert histogram[F11] == 1
        assert histogram[S12] == 2

    def test_sample_paths(self):
        root = _root()
        dag = MergedStatusDag(root)
        a, _ = dag.ensure_node(EnrollmentStatus(S12, {"A"}))
        b, _ = dag.ensure_node(EnrollmentStatus(S12, {"B"}))
        dag.add_edge(root.key, frozenset({"A"}), a)
        dag.add_edge(root.key, frozenset({"B"}), b)
        dag.mark_terminal(a, "goal")
        dag.mark_terminal(b, "goal")
        samples = dag.sample_paths(1, "goal")
        assert len(samples) == 1
        assert samples[0][0] == root.key
        assert len(dag.sample_paths(10, "goal")) == 2
