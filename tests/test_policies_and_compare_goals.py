"""Tests for student policies and multi-goal comparison."""

import random

import pytest

from repro.core import ExplorationConfig
from repro.data import (
    HeaviestLoadPolicy,
    LightLoadPolicy,
    RequirementsSeekingPolicy,
    UniformRandomPolicy,
    simulate_transcripts,
)
from repro.analysis import check_containment
from repro.graph import EnrollmentStatus
from repro.requirements import CourseSetGoal, DegreeGoal, RequirementGroup
from repro.system import compare_goals

from .conftest import F11, F12, S12, S13

GOAL = CourseSetGoal({"11A", "29A", "21A"})


def _status(options, completed=frozenset()):
    return EnrollmentStatus(F11, frozenset(completed), frozenset(options))


class TestPolicies:
    @pytest.mark.parametrize(
        "policy",
        [
            RequirementsSeekingPolicy(),
            UniformRandomPolicy(),
            HeaviestLoadPolicy(),
            LightLoadPolicy(),
        ],
    )
    def test_choices_are_legal_subsets(self, policy):
        rng = random.Random(1)
        status = _status({"A", "B", "C", "D"})
        goal = CourseSetGoal({"A", "B"})
        for _ in range(50):
            chosen = policy.choose(rng, status, goal, 3)
            assert 1 <= len(chosen) <= 3
            assert set(chosen) <= status.options
            assert len(set(chosen)) == len(chosen)

    def test_heaviest_takes_full_load(self):
        rng = random.Random(2)
        status = _status({"A", "B", "C", "D"})
        chosen = HeaviestLoadPolicy().choose(rng, status, CourseSetGoal({"A"}), 3)
        assert len(chosen) == 3

    def test_light_load_never_exceeds_two(self):
        rng = random.Random(3)
        status = _status({"A", "B", "C", "D"})
        for _ in range(30):
            chosen = LightLoadPolicy().choose(rng, status, CourseSetGoal({"A"}), 3)
            assert len(chosen) <= 2

    def test_requirements_seeking_prefers_goal_courses(self):
        rng = random.Random(4)
        status = _status({"A", "X", "Y", "Z"})
        goal = CourseSetGoal({"A"})
        hits = sum(
            "A" in RequirementsSeekingPolicy().choose(rng, status, goal, 1)
            for _ in range(200)
        )
        assert hits > 120  # weighted 8:1 over three distractors

    def test_degree_goal_weighting_uses_groups(self):
        rng = random.Random(5)
        goal = DegreeGoal(
            (
                RequirementGroup("core", {"CORE"}, 1),
                RequirementGroup("open", {"E1", "E2", "E3"}, 1),
            )
        )
        status = _status({"CORE", "E1", "E2", "E3"})
        hits = sum(
            "CORE" in RequirementsSeekingPolicy().choose(rng, status, goal, 1)
            for _ in range(200)
        )
        # Weight 10 vs three 5s -> expected 0.4 * 200 = 80 hits; uniform
        # choice would give 50.  Assert clearly above uniform.
        assert hits > 62


class TestPoliciesInSimulation:
    @pytest.mark.parametrize(
        "policy",
        [UniformRandomPolicy(), HeaviestLoadPolicy(), LightLoadPolicy()],
    )
    def test_all_archetypes_produce_contained_paths(self, fig3_catalog, policy):
        body = simulate_transcripts(
            fig3_catalog, GOAL, F11, S13, count=8, seed=6, policy=policy
        )
        report = check_containment(fig3_catalog, GOAL, body.paths, S13)
        assert report.all_contained, report.failures

    def test_heavier_policy_graduates_faster(self, fig3_catalog):
        heavy = simulate_transcripts(
            fig3_catalog, CourseSetGoal({"11A", "29A"}), F11, S13,
            count=10, seed=7, policy=HeaviestLoadPolicy(),
        )
        light = simulate_transcripts(
            fig3_catalog, CourseSetGoal({"11A", "29A"}), F11, S13,
            count=10, seed=7, policy=LightLoadPolicy(),
        )
        mean_heavy = sum(len(p) for p in heavy.paths) / len(heavy.paths)
        mean_light = sum(len(p) for p in light.paths) / len(light.paths)
        assert mean_heavy <= mean_light


class TestCompareGoals:
    def test_rows_cover_all_goals(self, fig3_catalog):
        goals = [
            CourseSetGoal({"11A"}),
            GOAL,
            CourseSetGoal({"21A"}),
        ]
        rows = compare_goals(fig3_catalog, goals, F11, S13)
        assert len(rows) == 3
        assert {row.goal.describe() for row in rows} == {
            g.describe() for g in goals
        }

    def test_most_achievable_first(self, fig3_catalog):
        rows = compare_goals(
            fig3_catalog, [GOAL, CourseSetGoal({"11A"})], F11, S13
        )
        assert rows[0].goal.describe() == CourseSetGoal({"11A"}).describe()
        assert rows[0].remaining_courses == 1

    def test_unreachable_goal_reported(self, fig3_catalog):
        rows = compare_goals(
            fig3_catalog, [CourseSetGoal({"21A"})], F11, S12
        )
        row = rows[0]
        assert not row.reachable
        assert row.route_count == 0
        assert row.fastest_semesters is None
        assert "unreachable" in row.describe()

    def test_counts_and_fastest(self, fig3_catalog):
        rows = compare_goals(fig3_catalog, [GOAL], F11, S13)
        row = rows[0]
        assert row.reachable
        assert row.route_count == 2
        assert row.fastest_semesters == 2
        assert "2 routes" in row.describe()

    def test_budget_exhaustion_reported_as_none(self):
        from repro.data import brandeis_catalog, brandeis_major_goal, start_term_for_semesters
        from repro.data.brandeis import EVALUATION_END_TERM

        rows = compare_goals(
            brandeis_catalog(),
            [brandeis_major_goal()],
            start_term_for_semesters(4),
            EVALUATION_END_TERM,
            count_budget=10,
        )
        row = rows[0]
        assert row.reachable
        assert row.route_count is None
        assert "counting budget" in row.describe()

    def test_completed_courses_considered(self, fig3_catalog):
        rows = compare_goals(
            fig3_catalog, [GOAL], F11, S13, completed={"11A", "29A"}
        )
        assert rows[0].remaining_courses == 1
