"""Tests for goal-driven generation and its pruning strategies — including
the paper's §4.2.3 worked example."""

import pytest

from repro.core import ExplorationConfig, generate_goal_driven
from repro.core.pruning import (
    AvailabilityPruner,
    PruningContext,
    TimeBasedPruner,
    default_pruners,
)
from repro.errors import BudgetExceededError, ExplorationError
from repro.graph import EnrollmentStatus
from repro.requirements import CourseSetGoal
from repro.semester import Term

from .conftest import F11, F12, S12, S13

GOAL = CourseSetGoal({"11A", "29A", "21A"})


class TestPaperWorkedExample:
    """§4.2.3: goal = take all three courses, end semester = Fall '12.

    The paper walks through this on Fig. 3's catalog: n4 is pruned by the
    availability strategy, n5 stops at the deadline, and the only output
    path is n1 --{11A,29A}--> n3 --{21A}--> n6.
    """

    @pytest.fixture
    def result(self, fig3_catalog):
        return generate_goal_driven(fig3_catalog, F11, GOAL, F12)

    def test_single_goal_path(self, result):
        assert result.path_count == 1
        path = next(result.paths())
        assert path.selections == (frozenset({"11A", "29A"}), frozenset({"21A"}))
        assert path.end.term == F12

    def test_pruning_happened(self, result):
        # n4 (X={29A}) and n2 (X={11A}) both fail the availability check.
        assert result.pruning_stats.events.get("availability", 0) >= 1

    def test_no_pruning_baseline_same_output(self, fig3_catalog):
        unpruned = generate_goal_driven(fig3_catalog, F11, GOAL, F12, pruners=[])
        assert unpruned.path_count == 1
        assert {p.selections for p in unpruned.paths()} == {
            (frozenset({"11A", "29A"}), frozenset({"21A"})),
        }

    def test_pruned_graph_is_smaller(self, fig3_catalog):
        pruned = generate_goal_driven(fig3_catalog, F11, GOAL, F12)
        unpruned = generate_goal_driven(fig3_catalog, F11, GOAL, F12, pruners=[])
        assert pruned.graph.num_nodes <= unpruned.graph.num_nodes


class TestGoalSemantics:
    def test_paths_end_at_first_goal_status(self, fig3_catalog):
        # Horizon extends past the goal; paths must stop when satisfied.
        result = generate_goal_driven(fig3_catalog, F11, GOAL, S13)
        for path in result.paths():
            assert GOAL.is_satisfied(path.end.completed)
            if len(path) > 0:
                assert not GOAL.is_satisfied(path.statuses[-2].completed)

    def test_goal_satisfied_at_start(self, fig3_catalog):
        result = generate_goal_driven(
            fig3_catalog, F11, CourseSetGoal({"11A"}), S13, completed={"11A"}
        )
        assert result.path_count == 1
        assert len(next(result.paths())) == 0

    def test_unreachable_goal_yields_no_paths(self, fig3_catalog):
        # 21A requires 11A which is only offered in Fall; 1-semester horizon.
        result = generate_goal_driven(fig3_catalog, F11, CourseSetGoal({"21A"}), S12)
        assert result.path_count == 0

    def test_end_before_start_rejected(self, fig3_catalog):
        with pytest.raises(ExplorationError):
            generate_goal_driven(fig3_catalog, S12, GOAL, F11)

    def test_unknown_completed_rejected(self, fig3_catalog):
        with pytest.raises(ExplorationError):
            generate_goal_driven(fig3_catalog, F11, GOAL, F12, completed={"99Z"})

    def test_budget_exceeded(self, fig3_catalog):
        with pytest.raises(BudgetExceededError):
            generate_goal_driven(
                fig3_catalog, F11, GOAL, S13, config=ExplorationConfig(max_nodes=2)
            )

    def test_min_selection_toggle_preserves_output(self, fig3_catalog):
        with_floor = generate_goal_driven(
            fig3_catalog, F11, GOAL, F12,
            config=ExplorationConfig(enforce_min_selection=True),
        )
        without_floor = generate_goal_driven(
            fig3_catalog, F11, GOAL, F12,
            config=ExplorationConfig(enforce_min_selection=False),
        )
        assert {p.selections for p in with_floor.paths()} == {
            p.selections for p in without_floor.paths()
        }

    def test_every_output_path_is_valid(self, fig3_catalog):
        result = generate_goal_driven(fig3_catalog, F11, GOAL, S13)
        for path in result.paths():
            completed = set()
            for term, selection in path:
                assert len(selection) <= 3
                for course_id in selection:
                    assert fig3_catalog.schedule.is_offered(course_id, term)
                    assert fig3_catalog[course_id].prereq.evaluate(completed)
                completed |= selection


class TestTimeBasedPruner:
    @pytest.fixture
    def context(self, fig3_catalog):
        return PruningContext(
            catalog=fig3_catalog,
            goal=GOAL,
            end_term=F12,
            config=ExplorationConfig(max_courses_per_term=1),
        )

    def test_min_required_formula(self, context):
        # m=1, d=Fall'12. At Fall '11 with nothing done: left=3,
        # semesters after this = 1, min_i = 3 - 1 = 2 > m -> prune.
        pruner = TimeBasedPruner(context)
        status = EnrollmentStatus(F11, frozenset())
        assert pruner.min_required_this_term(status) == 2
        assert pruner.should_prune(status)

    def test_not_pruned_when_feasible(self, fig3_catalog):
        context = PruningContext(
            catalog=fig3_catalog, goal=GOAL, end_term=F12,
            config=ExplorationConfig(max_courses_per_term=3),
        )
        pruner = TimeBasedPruner(context)
        status = EnrollmentStatus(F11, frozenset())
        # left=3, after-this=1 -> min_i = 0 <= 3.
        assert pruner.min_required_this_term(status) == 0
        assert not pruner.should_prune(status)

    def test_unsatisfiable_goal_always_pruned(self, fig3_catalog):
        from repro.requirements import DegreeGoal, RequirementGroup

        impossible = DegreeGoal(
            (
                RequirementGroup("g1", {"11A"}, 1),
                RequirementGroup("g2", {"11A"}, 1),
            )
        )
        context = PruningContext(
            catalog=fig3_catalog, goal=impossible, end_term=S13,
            config=ExplorationConfig(),
        )
        pruner = TimeBasedPruner(context)
        assert pruner.should_prune(EnrollmentStatus(F11, frozenset()))


class TestAvailabilityPruner:
    @pytest.fixture
    def context(self, fig3_catalog):
        return PruningContext(
            catalog=fig3_catalog, goal=GOAL, end_term=F12,
            config=ExplorationConfig(),
        )

    def test_paper_n4_pruned(self, context):
        # n4: X={29A} at Spring '12; only 21A is offered before Fall '12,
        # so 11A can never complete -> prune.
        pruner = AvailabilityPruner(context)
        assert pruner.should_prune(EnrollmentStatus(S12, {"29A"}))

    def test_paper_n3_not_pruned(self, context):
        pruner = AvailabilityPruner(context)
        assert not pruner.should_prune(EnrollmentStatus(S12, {"11A", "29A"}))

    def test_cache_is_consistent(self, context):
        pruner = AvailabilityPruner(context)
        status = EnrollmentStatus(S12, {"29A"})
        assert pruner.should_prune(status) == pruner.should_prune(status)

    def test_avoided_courses_not_assumed_taken(self, fig3_catalog):
        context = PruningContext(
            catalog=fig3_catalog, goal=GOAL, end_term=S13,
            config=ExplorationConfig(avoid_courses=frozenset({"21A"})),
        )
        pruner = AvailabilityPruner(context)
        # 21A is avoided, so the goal can never complete.
        assert pruner.should_prune(EnrollmentStatus(F11, frozenset()))

    def test_default_pruners_order(self, context):
        pruners = default_pruners(context)
        assert [p.name for p in pruners] == ["time", "availability"]


class TestFirstStrategyWinsAttribution:
    """PruningStats credits a cut to the *first* strategy that fires.

    The default stack consults time before availability, which is what
    produces the paper's 82%/18% Table 1 split; a node where both
    strategies would fire must therefore be attributed to time.
    """

    @pytest.fixture
    def both_fire_catalog(self):
        """Four goal courses, all offered only in Fall '11.

        From Spring '12 with nothing completed, *both* strategies fire:
        time (left=4, min_i = 4 > m=1) and availability (no goal course
        is ever offered again).
        """
        from repro.catalog import Catalog, Course, Schedule

        courses = ["A1", "A2", "A3", "A4"]
        return Catalog(
            [Course(c) for c in courses],
            schedule=Schedule({c: {F11} for c in courses}),
        )

    @pytest.fixture
    def context(self, both_fire_catalog):
        return PruningContext(
            catalog=both_fire_catalog,
            goal=CourseSetGoal({"A1", "A2", "A3", "A4"}),
            end_term=F12,
            config=ExplorationConfig(max_courses_per_term=1),
        )

    def test_both_strategies_fire_independently(self, context):
        status = EnrollmentStatus(S12, frozenset())
        assert TimeBasedPruner(context).should_prune(status)
        assert AvailabilityPruner(context).should_prune(status)

    def test_first_firing_pruner_picks_time(self, context):
        from repro.core.pruning import first_firing_pruner

        status = EnrollmentStatus(S12, frozenset())
        firing = first_firing_pruner(default_pruners(context), status)
        assert firing is not None
        assert firing.name == "time"

    def test_examine_stops_at_first_firing(self, context):
        from repro.core.pruning import examine_pruners

        status = EnrollmentStatus(S12, frozenset())
        firing, verdicts = examine_pruners(default_pruners(context), status)
        assert firing.name == "time"
        # availability was never consulted: first-fires-wins
        assert [v.strategy for v in verdicts] == ["time"]

    def test_run_attributes_cut_to_time(self, both_fire_catalog, context):
        result = generate_goal_driven(
            both_fire_catalog,
            S12,
            context.goal,
            F12,
            config=context.config,
        )
        assert result.path_count == 0
        stats = result.pruning_stats.as_dict()
        assert stats.get("time", 0) >= 1
        assert stats.get("availability", 0) == 0

    def test_reversed_stack_attributes_to_availability(self, both_fire_catalog, context):
        pruners = list(reversed(default_pruners(context)))
        result = generate_goal_driven(
            both_fire_catalog,
            S12,
            context.goal,
            F12,
            config=context.config,
            pruners=pruners,
        )
        assert result.path_count == 0
        stats = result.pruning_stats.as_dict()
        assert stats.get("availability", 0) >= 1
        assert stats.get("time", 0) == 0
