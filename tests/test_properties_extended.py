"""Second wave of cross-cutting property tests (newer machinery)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CourseCountRanking,
    ExplorationConfig,
    MaxWorkloadPerTerm,
    frontier_count_deadline_paths,
    frontier_count_goal_paths,
    generate_deadline_driven,
    generate_goal_driven,
    generate_ranked,
)
from repro.analysis import diff_paths, is_generated_goal_path
from repro.data import GeneratorSettings, random_catalog, random_course_set_goal
from repro.errors import PrerequisiteParseError
from repro.parsing import parse_prerequisites
from repro.semester import Term

START = Term(2011, "Fall")

_SETTINGS = st.builds(
    GeneratorSettings,
    n_courses=st.integers(min_value=2, max_value=6),
    n_terms=st.just(4),
    prereq_probability=st.sampled_from([0.0, 0.5]),
    offer_probability=st.sampled_from([0.4, 0.7]),
)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 8000), settings_=_SETTINGS, horizon=st.integers(1, 4))
def test_frontier_terminal_census_matches_tree(seed, settings_, horizon):
    """The frontier DP's per-kind path counts equal the tree's leaf census."""
    catalog = random_catalog(seed, settings_)
    goal = random_course_set_goal(catalog, seed + 1, size=2)
    end = START + horizon
    config = ExplorationConfig(max_courses_per_term=2)

    tree = generate_goal_driven(catalog, START, goal, end, config=config)
    frontier = frontier_count_goal_paths(catalog, START, goal, end, config=config)
    tree_census = {
        kind: tree.graph.count_paths(kind)
        for kind in ("goal", "deadline", "dead_end", "pruned")
    }
    for kind, count in tree_census.items():
        assert frontier.terminal_path_counts.get(kind, 0) == count, kind


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 8000), settings_=_SETTINGS, horizon=st.integers(1, 4))
def test_frontier_deadline_census_matches_tree(seed, settings_, horizon):
    catalog = random_catalog(seed, settings_)
    end = START + horizon
    config = ExplorationConfig(max_courses_per_term=2)
    tree = generate_deadline_driven(catalog, START, end, config=config)
    frontier = frontier_count_deadline_paths(catalog, START, end, config=config)
    assert frontier.terminal_path_counts.get("deadline", 0) == tree.graph.count_paths(
        "deadline"
    )
    assert frontier.terminal_path_counts.get("dead_end", 0) == tree.graph.count_paths(
        "dead_end"
    )


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 8000), settings_=_SETTINGS)
def test_containment_checker_agrees_with_enumeration(seed, settings_):
    """A path is accepted by the replay checker iff the generator emits it."""
    catalog = random_catalog(seed, settings_)
    goal = random_course_set_goal(catalog, seed + 1, size=2)
    end = START + 3
    config = ExplorationConfig(max_courses_per_term=2)

    goal_result = generate_goal_driven(catalog, START, goal, end, config=config)
    generated = {p.selections for p in goal_result.paths()}
    for path in goal_result.paths():
        verdict, reason = is_generated_goal_path(catalog, goal, path, end, config)
        assert verdict, reason

    # Candidate paths from *deadline* exploration: contained iff generated.
    for path in generate_deadline_driven(catalog, START, end, config=config).paths():
        verdict, _reason = is_generated_goal_path(catalog, goal, path, end, config)
        assert verdict == (path.selections in generated)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 8000), settings_=_SETTINGS, k=st.integers(1, 5))
def test_course_count_topk_matches_bruteforce(seed, settings_, k):
    catalog = random_catalog(seed, settings_)
    goal = random_course_set_goal(catalog, seed + 1, size=2)
    end = START + 3
    config = ExplorationConfig(max_courses_per_term=2)
    ranking = CourseCountRanking()
    everything = generate_goal_driven(catalog, START, goal, end, config=config)
    brute = sorted(ranking.path_cost(p) for p in everything.paths())
    result = generate_ranked(catalog, START, goal, end, k, ranking, config=config)
    assert result.costs == brute[: len(result.costs)]
    assert len(result.costs) == min(k, len(brute))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 8000), cap=st.sampled_from([16.0, 20.0, 28.0]))
def test_workload_constraint_equals_post_filter(seed, cap):
    """Per-term workload caps enforced in-generation equal post-filtering.

    Caps are chosen at or above the generator's maximum single-course
    workload (16h) so at least one selection survives at every node; when
    a cap blocks *everything* the constrained engine legitimately adds
    wait moves post-filtering cannot produce (see the explicit test
    below).
    """
    catalog = random_catalog(
        seed, GeneratorSettings(n_courses=5, n_terms=3, offer_probability=0.6)
    )
    end = START + 3
    constrained = generate_deadline_driven(
        catalog,
        START,
        end,
        config=ExplorationConfig(
            max_courses_per_term=2,
            constraints=(MaxWorkloadPerTerm(catalog, cap),),
        ),
    )
    unconstrained = generate_deadline_driven(
        catalog, START, end, config=ExplorationConfig(max_courses_per_term=2)
    )

    def within_cap(path):
        return all(
            sum(catalog[c].workload_hours for c in sel) <= cap
            for _term, sel in path
        )

    filtered = {p.selections for p in unconstrained.paths() if within_cap(p)}
    generated = {p.selections for p in constrained.paths()}
    assert generated == filtered


def test_total_workload_block_enables_waiting():
    """When a cap blocks every selection in a term, the constrained engine
    inserts a wait move (like a blackout) instead of dead-ending — a
    deliberate divergence from naive post-filtering."""
    from repro.catalog import Catalog, Course, Schedule

    f11, s12 = Term(2011, "Fall"), Term(2012, "Spring")
    catalog = Catalog(
        [Course("HEAVY", workload_hours=30), Course("LIGHT", workload_hours=5)],
        schedule=Schedule({"HEAVY": {f11}, "LIGHT": {s12}}),
    )
    config = ExplorationConfig(constraints=(MaxWorkloadPerTerm(catalog, 10.0),))
    result = generate_deadline_driven(catalog, f11, s12 + 1, config=config)
    plans = {p.selections for p in result.paths()}
    # Fall '11 is unaffordable -> wait, then take the light course.
    assert plans == {(frozenset(), frozenset({"LIGHT"}))}


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 8000), settings_=_SETTINGS)
def test_diff_paths_properties(seed, settings_):
    """Self-diff is identical; exclusives are symmetric."""
    catalog = random_catalog(seed, settings_)
    end = START + 2
    paths = list(
        generate_deadline_driven(
            catalog, START, end, config=ExplorationConfig(max_courses_per_term=2)
        ).paths()
    )
    if not paths:
        return
    first = paths[0]
    assert diff_paths(first, first).identical
    if len(paths) > 1:
        second = paths[-1]
        forward = diff_paths(first, second)
        backward = diff_paths(second, first)
        assert forward.only_in_first == backward.only_in_second
        assert forward.only_in_second == backward.only_in_first
        assert forward.divergence_term == backward.divergence_term


_TEXT_ALPHABET = "COSI 12ab()[],AND or OF;&@#\n\t'"


@settings(max_examples=150, deadline=None)
@given(st.text(alphabet=_TEXT_ALPHABET, max_size=40))
def test_prereq_parser_total(text):
    """Arbitrary input either parses or raises PrerequisiteParseError —
    never any other exception."""
    try:
        expr = parse_prerequisites(text)
    except PrerequisiteParseError:
        return
    # Whatever parsed must be a well-behaved expression.
    assert expr.evaluate(expr.courses()) in (True, False)
    assert expr.to_dnf() is not None


@settings(max_examples=50, deadline=None)
@given(st.text(alphabet=_TEXT_ALPHABET, max_size=30))
def test_prereq_parser_roundtrips_whatever_it_accepts(text):
    try:
        expr = parse_prerequisites(text)
    except PrerequisiteParseError:
        return
    reparsed = parse_prerequisites(expr.to_string())
    assert reparsed.to_dnf() == expr.to_dnf()
