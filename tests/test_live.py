"""Tests for live telemetry (repro.obs.live + repro.obs.server).

Covers the progress tracker (counters, snapshots, the optimistic ETA
estimate), the exploration budget (node/wall/memory limits, cooperative
cancellation, the watchdog), the partial snapshots carried by
BudgetExceededError from each of the four generators, the thread handoff
via Observability.activate(), the metrics HTTP exporter (including a
scrape-while-exploring race test), and the progress printer.
"""

import io
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import (
    generate_deadline_driven,
    generate_goal_driven,
    generate_ranked,
)
from repro.core.frontier import frontier_count_goal_paths
from repro.core.ranking import TimeRanking
from repro.data import brandeis_catalog, brandeis_major_goal
from repro.errors import BudgetExceededError, RunCancelledError
from repro.obs import (
    ExplorationBudget,
    MetricsRegistry,
    MetricsServer,
    Observability,
    ProgressPrinter,
    ProgressTracker,
    Watchdog,
    current_observability,
)
from repro.semester import Term

START = Term(2013, "Fall")
END = Term(2015, "Fall")
LONG_START = Term(2012, "Fall")  # unbudgeted horizon too large to finish fast


class FakeClock:
    """A manually advanced clock for deterministic wall/ETA tests."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# ---------------------------------------------------------------------------
# ProgressTracker


class TestProgressTracker:
    def test_counters_accumulate(self):
        tracker = ProgressTracker()
        tracker.begin_run("unit", horizon=3)
        tracker.record_expanded(0, 2)
        tracker.record_expanded(1, 3)
        tracker.record_pruned(1)
        tracker.record_terminal("goal", 2)
        tracker.record_terminal("goal", 2)
        tracker.record_emit(2)
        tracker.set_frontier(7)
        snap = tracker.snapshot()
        assert snap.run == "unit"
        assert snap.horizon == 3
        assert snap.nodes_expanded == 2
        assert snap.nodes_pruned == 1
        assert snap.terminals == {"goal": 2}
        assert snap.nodes_seen == 2 + 1 + 2
        assert snap.paths_emitted == 2
        assert snap.frontier_size == 7
        assert snap.depth == 2
        assert tracker.nodes_seen == snap.nodes_seen

    def test_generation_strictly_increases_per_mutation(self):
        tracker = ProgressTracker()
        tracker.begin_run("unit")
        mutators = [
            lambda: tracker.record_expanded(0, 2),
            lambda: tracker.record_pruned(0),
            lambda: tracker.record_terminal("goal", 1),
            lambda: tracker.record_emit(),
            lambda: tracker.set_frontier(3),
            tracker.finish_run,
        ]
        last = tracker.generation
        for mutate in mutators:
            mutate()
            assert tracker.generation == last + 1
            last = tracker.generation

    def test_begin_run_resets_counters(self):
        tracker = ProgressTracker()
        tracker.begin_run("first", horizon=2)
        tracker.record_expanded(0, 4)
        tracker.record_emit(5)
        tracker.begin_run("second", horizon=1)
        snap = tracker.snapshot()
        assert snap.run == "second"
        assert snap.nodes_seen == 0
        assert snap.paths_emitted == 0
        assert snap.generation == 0

    def test_estimate_none_without_horizon_or_observations(self):
        tracker = ProgressTracker()
        tracker.begin_run("no-horizon")  # horizon=None
        tracker.record_expanded(0, 2)
        assert tracker.snapshot().estimated_total_nodes is None

        tracker.begin_run("no-expansion", horizon=3)
        tracker.record_terminal("goal", 0)
        snap = tracker.snapshot()
        assert snap.estimated_total_nodes is None
        assert snap.progress_fraction is None
        assert snap.eta_seconds is None

    def test_estimate_extrapolates_observed_branching(self):
        tracker = ProgressTracker()
        tracker.begin_run("unit", horizon=2)
        # One node at depth 0 expanded into 2 children, nothing pruned:
        # layer(0) = 2; depth 1 unobserved -> extrapolate branching 2:
        # layer(1) = 4; total = 1 + 2 + 4.
        tracker.record_expanded(0, 2)
        assert tracker.snapshot().estimated_total_nodes == pytest.approx(7.0)

    def test_estimate_tightened_by_prunes(self):
        tracker = ProgressTracker()
        tracker.begin_run("unit", horizon=2)
        tracker.record_expanded(0, 4)
        tracker.record_pruned(0)
        tracker.record_pruned(0)
        tracker.record_pruned(0)
        # branching 4, survival 1/4 -> layer 1.0; extrapolated again at
        # depth 1 -> total = 1 + 1 + 1.
        assert tracker.snapshot().estimated_total_nodes == pytest.approx(3.0)

    def test_eta_from_fraction_and_elapsed(self):
        clock = FakeClock()
        tracker = ProgressTracker(clock=clock)
        tracker.begin_run("unit", horizon=1)
        tracker.record_expanded(0, 2)  # estimate = 1 + 2 = 3, seen = 1
        clock.advance(6.0)
        snap = tracker.snapshot()
        assert snap.elapsed_seconds == pytest.approx(6.0)
        assert snap.progress_fraction == pytest.approx(1.0 / 3.0)
        # eta = elapsed * (1 - f) / f = 6 * 2 = 12
        assert snap.eta_seconds == pytest.approx(12.0)

    def test_finished_pins_fraction_and_eta(self):
        tracker = ProgressTracker()
        tracker.begin_run("unit", horizon=5)
        tracker.record_expanded(0, 3)
        tracker.finish_run()
        snap = tracker.snapshot()
        assert snap.finished
        assert snap.progress_fraction == 1.0
        assert snap.eta_seconds == 0.0

    def test_snapshot_as_dict_is_json_serializable(self):
        tracker = ProgressTracker()
        tracker.begin_run("unit", horizon=2)
        tracker.record_expanded(0, 2)
        tracker.record_pruned(1)
        budget = ExplorationBudget(max_nodes=10)
        payload = json.loads(json.dumps(tracker.snapshot(budget=budget).as_dict()))
        assert payload["run"] == "unit"
        assert payload["per_depth"]["0"]["expanded"] == 1
        assert payload["per_depth"]["1"]["pruned"] == 1
        assert payload["budget"]["max_nodes"] == 10

    def test_render_line_mentions_the_essentials(self):
        tracker = ProgressTracker()
        tracker.begin_run("unit", horizon=4)
        tracker.record_expanded(0, 2)
        tracker.record_emit(3)
        line = tracker.snapshot().render_line()
        assert "[unit]" in line
        assert "1 nodes" in line
        assert "paths 3" in line
        assert "depth 0/4" in line

    def test_mark_cancelled_shows_in_snapshot(self):
        tracker = ProgressTracker()
        tracker.begin_run("unit")
        tracker.mark_cancelled("operator said stop")
        snap = tracker.snapshot()
        assert snap.cancelled == "operator said stop"
        assert "cancelled: operator said stop" in snap.render_line()

    def test_publish_gauges(self):
        registry = MetricsRegistry()
        tracker = ProgressTracker()
        tracker.begin_run("unit", horizon=1)
        tracker.record_expanded(0, 2)
        tracker.set_frontier(2)
        tracker.publish_gauges(registry)
        text = registry.render_prometheus()
        assert "repro_progress_nodes_seen 1" in text
        assert "repro_progress_frontier_size 2" in text
        assert "repro_progress_fraction" in text

    def test_concurrent_snapshots_never_regress(self):
        tracker = ProgressTracker()
        tracker.begin_run("hammer", horizon=4)
        stop = threading.Event()
        regressions = []

        def reader():
            last = -1
            while not stop.is_set():
                snap = tracker.snapshot()
                total = (
                    snap.nodes_expanded
                    + snap.nodes_pruned
                    + sum(snap.terminals.values())
                )
                if snap.nodes_seen != total:
                    regressions.append("inconsistent snapshot")
                if snap.generation < last:
                    regressions.append("generation went backwards")
                last = snap.generation

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for index in range(3000):
            tracker.record_expanded(index % 4, 2)
            if index % 3 == 0:
                tracker.record_pruned(index % 4)
            if index % 5 == 0:
                tracker.record_terminal("goal", index % 4)
        stop.set()
        for thread in threads:
            thread.join()
        assert regressions == []


# ---------------------------------------------------------------------------
# ExplorationBudget


class TestExplorationBudget:
    def test_node_budget_counts_ticks_without_stats(self):
        budget = ExplorationBudget(max_nodes=5)
        for _ in range(5):
            budget.tick()
        with pytest.raises(BudgetExceededError) as info:
            budget.tick()
        assert info.value.kind == "nodes"
        assert info.value.observed == 6

    def test_wall_budget_uses_armed_clock(self):
        clock = FakeClock()
        budget = ExplorationBudget(wall_seconds=2.0, clock=clock).arm()
        budget.tick()
        clock.advance(2.5)
        with pytest.raises(BudgetExceededError) as info:
            budget.tick()
        assert info.value.kind == "wall seconds"

    def test_wall_budget_zero_is_honored(self):
        clock = FakeClock()
        budget = ExplorationBudget(wall_seconds=0.0, clock=clock).arm()
        clock.advance(0.001)
        with pytest.raises(BudgetExceededError):
            budget.tick()

    def test_memory_budget_fires_on_interval(self):
        # Any real process exceeds one byte; check_interval=1 probes on
        # the first tick.
        budget = ExplorationBudget(max_memory_bytes=1, check_interval=1).arm()
        with pytest.raises(BudgetExceededError) as info:
            budget.tick()
        assert info.value.kind == "memory bytes"

    def test_memory_probe_skipped_between_intervals(self):
        budget = ExplorationBudget(max_memory_bytes=1, check_interval=100).arm()
        for _ in range(99):
            budget.tick()  # ticks 1..99 never probe
        with pytest.raises(BudgetExceededError):
            budget.tick()  # tick 100 probes

    def test_check_probes_memory_unconditionally(self):
        budget = ExplorationBudget(max_memory_bytes=1, check_interval=10**6).arm()
        with pytest.raises(BudgetExceededError):
            budget.check()

    def test_cancel_from_another_thread(self):
        budget = ExplorationBudget()
        tracker = ProgressTracker()
        tracker.begin_run("unit")
        thread = threading.Thread(target=budget.cancel, args=("op stop",))
        thread.start()
        thread.join()
        with pytest.raises(RunCancelledError) as info:
            budget.tick(progress=tracker)
        assert isinstance(info.value, BudgetExceededError)
        assert info.value.reason == "op stop"
        assert info.value.progress.cancelled == "op stop"
        assert tracker.snapshot().cancelled == "op stop"

    def test_failure_carries_snapshot_and_budget_state(self):
        tracker = ProgressTracker()
        tracker.begin_run("unit", horizon=2)
        tracker.record_expanded(0, 2)
        budget = ExplorationBudget(max_nodes=1).arm()
        budget.tick(progress=tracker)
        with pytest.raises(BudgetExceededError) as info:
            budget.tick(progress=tracker)
        snap = info.value.progress
        assert snap is not None
        assert snap.nodes_seen == 1
        assert snap.budget["max_nodes"] == 1
        assert snap.budget["ticks"] == 2

    def test_enabled_property(self):
        assert not ExplorationBudget().enabled
        assert ExplorationBudget(wall_seconds=1.0).enabled
        assert ExplorationBudget(max_nodes=1).enabled
        assert ExplorationBudget(max_memory_bytes=1).enabled

    def test_check_interval_validated(self):
        with pytest.raises(ValueError):
            ExplorationBudget(check_interval=0)

    def test_as_dict(self):
        budget = ExplorationBudget(wall_seconds=3.0, max_nodes=10)
        state = budget.as_dict()
        assert state["wall_seconds"] == 3.0
        assert state["max_nodes"] == 10
        assert state["cancelled"] is None


# ---------------------------------------------------------------------------
# budgets on the four generators


class TestGeneratorBudgets:
    """A node budget reliably kills each generator mid-run, and the error
    carries a consistent, non-empty partial snapshot."""

    def _assert_partial(self, exc: BudgetExceededError, expect_stats=True):
        snap = exc.progress
        assert snap is not None
        assert snap.nodes_seen > 0
        assert snap.budget is not None
        assert not snap.finished
        if expect_stats:
            assert exc.partial_stats is not None
            assert exc.partial_stats.nodes_created > 0
            assert exc.partial_stats.elapsed_seconds >= 0.0

    def test_goal_driven(self):
        obs = Observability(budget=ExplorationBudget(max_nodes=150))
        with pytest.raises(BudgetExceededError) as info:
            generate_goal_driven(
                brandeis_catalog(), START, brandeis_major_goal(), END, obs=obs
            )
        self._assert_partial(info.value)
        assert info.value.progress.run == "goal_driven"

    def test_deadline_exhaustive_run_terminates(self):
        obs = Observability(budget=ExplorationBudget(max_nodes=400))
        with pytest.raises(BudgetExceededError) as info:
            generate_deadline_driven(brandeis_catalog(), START, END, obs=obs)
        self._assert_partial(info.value)
        assert info.value.progress.run == "deadline"

    def test_ranked(self):
        obs = Observability(budget=ExplorationBudget(max_nodes=80))
        with pytest.raises(BudgetExceededError) as info:
            generate_ranked(
                brandeis_catalog(),
                START,
                brandeis_major_goal(),
                END,
                k=10,
                ranking=TimeRanking(),
                obs=obs,
            )
        self._assert_partial(info.value)
        assert info.value.progress.run == "ranked"

    def test_frontier(self):
        # No ExplorationStats in the frontier DP: the tick count stands in.
        obs = Observability(budget=ExplorationBudget(max_nodes=20))
        with pytest.raises(BudgetExceededError) as info:
            frontier_count_goal_paths(
                brandeis_catalog(), START, brandeis_major_goal(), END, obs=obs
            )
        self._assert_partial(info.value, expect_stats=False)
        assert info.value.progress.run == "frontier_goal"

    def test_wall_budget_on_real_run(self):
        obs = Observability(budget=ExplorationBudget(wall_seconds=0.0))
        with pytest.raises(BudgetExceededError) as info:
            generate_deadline_driven(brandeis_catalog(), START, END, obs=obs)
        assert info.value.kind == "wall seconds"
        assert info.value.progress is not None

    def test_unbudgeted_observed_run_matches_plain_run(self):
        plain = generate_goal_driven(
            brandeis_catalog(), START, brandeis_major_goal(), END
        )
        obs = Observability(progress=ProgressTracker())
        observed = generate_goal_driven(
            brandeis_catalog(), START, brandeis_major_goal(), END, obs=obs
        )
        assert observed.path_count == plain.path_count
        snap = obs.progress.snapshot()
        assert snap.finished
        assert snap.paths_emitted == plain.path_count
        assert snap.progress_fraction == 1.0


# ---------------------------------------------------------------------------
# cancellation + watchdog


class TestCancellation:
    def test_cancel_mid_run_from_another_thread(self):
        budget = ExplorationBudget()
        obs = Observability(budget=budget)
        timer = threading.Timer(0.05, budget.cancel, args=("reaper",))
        timer.daemon = True
        timer.start()
        try:
            # Unbudgeted, this horizon runs for minutes; cancellation must
            # kill it within a tick of the timer firing.
            with pytest.raises(RunCancelledError) as info:
                generate_deadline_driven(brandeis_catalog(), LONG_START, END, obs=obs)
        finally:
            timer.cancel()
        assert info.value.reason == "reaper"
        assert info.value.progress.cancelled == "reaper"
        assert info.value.progress.nodes_seen > 0

    def test_watchdog_reaps_a_runaway_run(self):
        budget = ExplorationBudget()
        obs = Observability(budget=budget)
        with Watchdog(budget, timeout=0.05):
            with pytest.raises(RunCancelledError) as info:
                generate_deadline_driven(brandeis_catalog(), LONG_START, END, obs=obs)
        assert "watchdog timeout" in info.value.reason

    def test_watchdog_close_disarms(self):
        budget = ExplorationBudget()
        watchdog = Watchdog(budget, timeout=0.01).start()
        watchdog.close()
        time.sleep(0.03)
        budget.tick()  # must not raise: the timer was cancelled
        assert budget.cancelled is None


# ---------------------------------------------------------------------------
# contextvar thread visibility + activate()


class TestThreadHandoff:
    def test_run_scope_not_visible_in_worker_thread(self):
        obs = Observability(metrics=MetricsRegistry())
        seen = {}

        def worker():
            seen["inside"] = current_observability()

        with obs.run("visibility"):
            assert current_observability() is obs
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["inside"] is None

    def test_activate_publishes_in_worker_thread(self):
        obs = Observability(metrics=MetricsRegistry())
        seen = {}

        def worker():
            with obs.activate() as active:
                seen["inside"] = current_observability()
                seen["yielded"] = active
            seen["after"] = current_observability()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["inside"] is obs
        assert seen["yielded"] is obs
        assert seen["after"] is None


# ---------------------------------------------------------------------------
# the HTTP exporter


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


class TestMetricsServer:
    def test_endpoints(self):
        registry = MetricsRegistry()
        registry.counter("unit_total", "test counter").inc(3)
        tracker = ProgressTracker()
        tracker.begin_run("served", horizon=2)
        tracker.record_expanded(0, 2)
        budget = ExplorationBudget(max_nodes=99)
        with MetricsServer(registry=registry, progress=tracker, budget=budget) as server:
            status, ctype, body = _get(server.url + "/metrics")
            assert status == 200
            assert ctype.startswith("text/plain")
            assert "version=0.0.4" in ctype
            text = body.decode()
            assert "unit_total 3" in text
            assert "repro_progress_nodes_seen 1" in text

            status, ctype, body = _get(server.url + "/progress")
            assert status == 200
            assert ctype == "application/json"
            payload = json.loads(body.decode())
            assert payload["run"] == "served"
            assert payload["nodes_seen"] == 1
            assert payload["budget"]["max_nodes"] == 99

            status, _ctype, body = _get(server.url + "/healthz")
            assert status == 200
            assert body == b"ok\n"

            with pytest.raises(urllib.error.HTTPError) as info:
                _get(server.url + "/nope")
            assert info.value.code == 404

    def test_missing_backends_answer_404(self):
        with MetricsServer() as server:
            with pytest.raises(urllib.error.HTTPError) as info:
                _get(server.url + "/metrics")
            assert info.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as info:
                _get(server.url + "/progress")
            assert info.value.code == 404

    def test_close_is_idempotent(self):
        server = MetricsServer(registry=MetricsRegistry()).start()
        server.close()
        server.close()

    def test_scrape_while_exploring(self):
        """Concurrent scrapes during a live run: every response is 200,
        nodes_seen is monotone, and no handler raises."""
        registry = MetricsRegistry()
        tracker = ProgressTracker()
        obs = Observability(metrics=registry, progress=tracker)
        errors = []
        samples = []
        stop = threading.Event()

        def scraper(server_url):
            while not stop.is_set():
                try:
                    status, _ctype, body = _get(server_url + "/progress")
                    assert status == 200
                    samples.append(json.loads(body.decode())["nodes_seen"])
                    status, _ctype, _body = _get(server_url + "/metrics")
                    assert status == 200
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(repr(exc))
                    return

        with MetricsServer(registry=registry, progress=tracker) as server:
            thread = threading.Thread(target=scraper, args=(server.url,))
            thread.start()
            result = generate_goal_driven(
                brandeis_catalog(), START, brandeis_major_goal(), END, obs=obs
            )
            stop.set()
            thread.join()
        assert errors == []
        assert result.path_count == 905
        assert samples, "scraper never got a response"
        run_samples = [s for s in samples if s > 0]
        assert run_samples == sorted(run_samples)


# ---------------------------------------------------------------------------
# registry / histogram thread safety


class TestMetricsThreadSafety:
    def test_get_or_create_race_returns_one_instrument(self):
        registry = MetricsRegistry()
        instruments = []
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            instruments.append(registry.counter("raced_total", "racy"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(instrument) for instrument in instruments}) == 1
        assert len(registry) == 1

    def test_histogram_observe_hammer_is_exact(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("hammer_seconds", "hammered")
        per_thread, threads_n = 2000, 6

        def observe():
            for index in range(per_thread):
                histogram.observe(index % 7 * 0.001)

        threads = [threading.Thread(target=observe) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == per_thread * threads_n

    def test_render_while_observing_never_raises(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("busy_seconds", "busy")
        stop = threading.Event()
        errors = []

        def renderer():
            while not stop.is_set():
                try:
                    registry.render_prometheus()
                    registry.snapshot()
                    list(registry)
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(repr(exc))
                    return

        thread = threading.Thread(target=renderer)
        thread.start()
        for index in range(5000):
            histogram.observe(index * 1e-4)
            if index % 100 == 0:
                registry.counter(f"c{index}_total", "churn").inc()
        stop.set()
        thread.join()
        assert errors == []


# ---------------------------------------------------------------------------
# ProgressPrinter


class _FakeTty(io.StringIO):
    def isatty(self) -> bool:
        return True


class TestProgressPrinter:
    def test_plain_stream_gets_one_line_per_sample(self):
        tracker = ProgressTracker()
        tracker.begin_run("printed", horizon=1)
        tracker.record_expanded(0, 2)
        stream = io.StringIO()
        printer = ProgressPrinter(tracker, stream=stream, interval=0.01).start()
        time.sleep(0.05)
        printer.close()
        lines = stream.getvalue().splitlines()
        assert lines, "printer wrote nothing"
        assert all(line.startswith("[printed]") for line in lines)

    def test_tty_stream_rewrites_in_place(self):
        tracker = ProgressTracker()
        tracker.begin_run("tty")
        stream = _FakeTty()
        with ProgressPrinter(tracker, stream=stream, interval=0.01):
            time.sleep(0.03)
        output = stream.getvalue()
        assert "\r\x1b[2K" in output
        assert output.endswith("\n")  # close() terminates the line
