"""Tests for the decision-level EXPLAIN layer (repro.obs.explain).

Covers the typed events (validation, JSON/JSONL round-trip), the
structured pruner verdicts, the recorder (sinks, streaming mode), the
ExplainReport analyses (attribution vs the aggregate counters, lineage,
near-misses, why-not), the engine integration across all three
generators — including the acceptance criterion that recording changes
nothing about the returned path set — and the CLI surface
(``explain`` subcommand, ``--explain`` flag).
"""

import io
import json
import math

import pytest

from repro.core import (
    ExplorationConfig,
    generate_goal_driven,
    generate_ranked,
)
from repro.core.frontier import frontier_count_goal_paths
from repro.core.pruning import (
    AvailabilityPruner,
    PruneVerdict,
    PruningContext,
    TimeBasedPruner,
    examine_pruners,
)
from repro.core.ranking import TimeRanking
from repro.data import brandeis_catalog, brandeis_major_goal
from repro.graph import EnrollmentStatus
from repro.obs import (
    DECISION_KINDS,
    DecisionEvent,
    DecisionRecorder,
    ExplainReport,
    InMemorySink,
    JsonlSink,
    Observability,
    describe_verdict,
    load_decision_events,
)
from repro.requirements import CourseSetGoal
from repro.semester import Term
from repro.system.navigator import CourseNavigator

from .conftest import F11, F12, S12

GOAL = CourseSetGoal({"11A", "29A", "21A"})
START = Term(2013, "Fall")
END = Term(2015, "Fall")


# ---------------------------------------------------------------------------
# events and verdicts


class TestDecisionEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            DecisionEvent(kind="vibes", node_id=0, parent_id=None, term="Fall 2013")

    def test_round_trips_through_dict(self):
        event = DecisionEvent(
            kind="prune",
            node_id=7,
            parent_id=3,
            term="Spring 2014",
            selection=("11A", "29A"),
            completed=("11A",),
            strategy="time",
            verdicts=(
                {"strategy": "time", "fired": True, "detail": {"left_i": 2}},
            ),
            detail={"note": 1},
        )
        clone = DecisionEvent.from_dict(json.loads(json.dumps(event.as_dict())))
        assert clone == event

    def test_firing_verdict_picks_fired(self):
        event = DecisionEvent(
            kind="prune",
            node_id=1,
            parent_id=None,
            term="Fall 2013",
            strategy="availability",
            verdicts=(
                {"strategy": "time", "fired": False, "detail": {}},
                {"strategy": "availability", "fired": True, "detail": {}},
            ),
        )
        assert event.firing_verdict["strategy"] == "availability"
        expand = DecisionEvent(kind="expand", node_id=2, parent_id=1, term="Fall 2013")
        assert expand.firing_verdict is None

    def test_every_kind_constructible(self):
        for kind in DECISION_KINDS:
            DecisionEvent(kind=kind, node_id=0, parent_id=None, term="Fall 2013")


class TestPruneVerdict:
    @pytest.fixture
    def context(self, fig3_catalog):
        return PruningContext(
            catalog=fig3_catalog,
            goal=GOAL,
            end_term=F12,
            config=ExplorationConfig(max_courses_per_term=1),
        )

    def test_time_examine_matches_should_prune(self, context):
        pruner = TimeBasedPruner(context)
        status = EnrollmentStatus(F11, frozenset())
        verdict = pruner.examine(status)
        assert verdict.fired == pruner.should_prune(status)
        assert verdict.strategy == "time"
        # m=1, left=3, one semester after -> min_i = 2
        assert verdict.detail["left_i"] == 3
        assert verdict.detail["min_i"] == 2
        assert verdict.detail["m"] == 1
        assert verdict.detail["slack"] == 1
        assert verdict.detail["required_m"] == 2

    def test_availability_examine_names_shortfall(self, context):
        pruner = AvailabilityPruner(context)
        verdict = pruner.examine(EnrollmentStatus(S12, {"29A"}))
        assert verdict.fired
        assert verdict.detail["shortfall"] >= 1
        assert "11A" in verdict.detail["unavailable_goal_courses"]

    def test_verdict_round_trips_with_infinity(self):
        verdict = PruneVerdict(
            strategy="time", fired=True, detail={"slack": math.inf}
        )
        data = json.loads(json.dumps(verdict.as_dict()))
        assert data["detail"]["slack"] == "inf"
        assert PruneVerdict.from_dict(data).detail["slack"] == math.inf

    def test_examine_pruners_first_fires_wins(self, context):
        pruners = [TimeBasedPruner(context), AvailabilityPruner(context)]
        firing, verdicts = examine_pruners(
            pruners, EnrollmentStatus(F11, frozenset())
        )
        assert firing is pruners[0]
        # consultation stops at the firing strategy
        assert [v.strategy for v in verdicts] == ["time"]
        assert verdicts[-1].fired

    def test_describe_verdict_names_bound_values(self, context):
        verdict = TimeBasedPruner(context).examine(EnrollmentStatus(F11, frozenset()))
        text = describe_verdict(verdict.as_dict())
        assert "left_i=3" in text
        assert "min_i=2" in text
        assert "m=1" in text
        assert "min_i > m" in text

    def test_describe_verdict_unknown_strategy(self):
        text = describe_verdict(
            {"strategy": "custom", "fired": True, "detail": {"x": 1}}
        )
        assert text == "custom: fired (x=1)"


# ---------------------------------------------------------------------------
# the recorder


class TestDecisionRecorder:
    def _event(self, node_id=0, kind="expand"):
        return DecisionEvent(
            kind=kind, node_id=node_id, parent_id=None, term="Fall 2013"
        )

    def test_keeps_events_and_fans_out(self):
        sink = InMemorySink()
        recorder = DecisionRecorder(sinks=[sink])
        recorder.record(self._event())
        assert len(recorder) == 1
        assert sink.records[0]["kind"] == "expand"

    def test_streaming_mode_drops_memory(self):
        sink = InMemorySink()
        recorder = DecisionRecorder(sinks=[sink], keep_events=False)
        recorder.record(self._event())
        assert len(recorder) == 0
        assert len(sink.records) == 1

    def test_add_sink_sees_later_events_only(self):
        recorder = DecisionRecorder()
        recorder.record(self._event(0))
        sink = InMemorySink()
        recorder.add_sink(sink)
        recorder.record(self._event(1))
        assert [r["node"] for r in sink.records] == [1]

    def test_context_manager_closes_sinks(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with DecisionRecorder(sinks=[JsonlSink(str(path))]) as recorder:
            recorder.record(self._event())
        assert json.loads(path.read_text())["kind"] == "expand"

    def test_report_builds_from_events(self):
        recorder = DecisionRecorder()
        recorder.record(self._event(kind="prune"))
        assert recorder.report().counts_by_kind() == {"prune": 1}


class TestJsonlSinkErrorPaths:
    def test_unwritable_path_raises_at_construction(self, tmp_path):
        with pytest.raises(OSError):
            JsonlSink(str(tmp_path / "missing-dir" / "audit.jsonl"))

    def test_directory_target_rejected(self, tmp_path):
        with pytest.raises(OSError):
            JsonlSink(str(tmp_path))

    def test_flushes_on_exception(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        recorder = DecisionRecorder(sinks=[JsonlSink(str(path))])
        with pytest.raises(RuntimeError):
            with recorder:
                recorder.record(
                    DecisionEvent(
                        kind="prune", node_id=0, parent_id=None, term="Fall 2013"
                    )
                )
                raise RuntimeError("mid-run crash")
        # the context manager closed (and therefore flushed) the sink
        assert json.loads(path.read_text())["kind"] == "prune"

    def test_borrowed_handle_left_open(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.emit({"kind": "expand"})
        sink.close()
        assert not buffer.closed
        assert json.loads(buffer.getvalue())["kind"] == "expand"


# ---------------------------------------------------------------------------
# report analyses on a real run


@pytest.fixture(scope="module")
def catalog():
    return brandeis_catalog()


@pytest.fixture(scope="module")
def recorded(catalog):
    """One recorded goal-driven run over the evaluation workload."""
    recorder = DecisionRecorder()
    result = generate_goal_driven(
        catalog,
        START,
        brandeis_major_goal(),
        END,
        obs=Observability(decisions=recorder),
    )
    return result, recorder.report()


class TestExplainReport:
    def test_goal_decisions_match_path_count(self, recorded):
        result, report = recorded
        assert report.counts_by_kind()["goal"] == result.path_count

    def test_attribution_reproduces_counters(self, recorded):
        result, report = recorded
        assert report.attribution() == result.pruning_stats.as_dict()

    def test_attribution_shares_match_table1_shape(self, recorded):
        _result, report = recorded
        assert report.share("time") > report.share("availability") > 0.0
        assert report.share("time") + report.share("availability") == pytest.approx(1.0)

    def test_subtree_attribution_excludes_floor(self, recorded):
        _result, report = recorded
        subtree = report.attribution(include_selection_floor=False)
        full = report.attribution(include_selection_floor=True)
        assert subtree["time"] < full["time"]
        assert subtree["availability"] == full["availability"]

    def test_prune_events_carry_bound_values(self, recorded):
        _result, report = recorded
        fired = [e.firing_verdict for e in report.pruned()]
        assert all(v is not None for v in fired)
        time_verdicts = [v for v in fired if v["strategy"] == "time"]
        assert time_verdicts
        for verdict in time_verdicts:
            detail = verdict["detail"]
            assert detail["min_i"] > detail["m"]
            assert {"left_i", "min_i", "m", "semesters_after_this"} <= set(detail)

    def test_near_misses_sorted_by_slack(self, recorded):
        _result, report = recorded
        near = report.near_misses(max_slack=1.0)
        assert near
        slacks = [
            e.firing_verdict["detail"].get(
                "slack", e.firing_verdict["detail"].get("shortfall")
            )
            for e in near
        ]
        assert slacks == sorted(slacks)
        assert all(s <= 1.0 for s in slacks)

    def test_lineage_walks_to_root(self, recorded):
        _result, report = recorded
        event = report.pruned()[0]
        chain = report.lineage(event.node_id)
        assert chain[-1] is event
        assert chain[0].parent_id is None
        for parent, child in zip(chain, chain[1:]):
            assert child.parent_id == parent.node_id

    def test_why_not_returned_course(self, recorded, catalog):
        _result, report = recorded
        answer = report.why_not("COSI 11a")  # core course: in every path
        assert answer.was_returned
        assert answer.returned_in > 0
        assert "returned in" in answer.render()

    def test_why_not_pruned_course(self, recorded):
        _result, report = recorded
        # find a course no goal event completed
        returned = set()
        for event in report.events:
            if event.kind == "goal":
                returned |= set(event.completed)
        candidates = set()
        for event in report.pruned():
            candidates |= set(
                event.firing_verdict["detail"].get("unavailable_goal_courses", [])
            )
        missing = sorted(candidates - returned)
        assert missing, "expected at least one never-returned course"
        answer = report.why_not(missing[0])
        assert not answer.was_returned
        assert answer.blockers
        rendered = answer.render(limit=2)
        assert "never returned" in rendered
        assert missing[0] in rendered

    def test_as_dict_is_json_serializable(self, recorded):
        _result, report = recorded
        data = json.loads(json.dumps(report.as_dict(max_pruned=3)))
        assert data["decisions"]["total"] == len(report.events)
        assert len(data["pruned"]) == 3
        assert data["attribution"]["with_selection_floor"] == report.attribution()


class TestJsonlRoundTrip:
    def test_file_report_matches_in_memory(self, catalog, tmp_path):
        path = tmp_path / "audit.jsonl"
        recorder = DecisionRecorder(sinks=[JsonlSink(str(path))])
        generate_goal_driven(
            catalog,
            START,
            brandeis_major_goal(),
            END,
            obs=Observability(decisions=recorder),
        )
        recorder.close()
        loaded = load_decision_events(str(path))
        assert loaded == recorder.events
        from_file = ExplainReport.from_jsonl(str(path))
        in_memory = recorder.report()
        assert from_file.counts_by_kind() == in_memory.counts_by_kind()
        assert from_file.attribution() == in_memory.attribution()

    def test_loader_skips_foreign_lines(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        event = DecisionEvent(kind="goal", node_id=1, parent_id=None, term="Fall 2013")
        path.write_text(
            json.dumps({"name": "span", "duration": 0.1}) + "\n"
            + "\n"
            + json.dumps(event.as_dict()) + "\n"
        )
        assert load_decision_events(str(path)) == [event]


# ---------------------------------------------------------------------------
# engine integration: recording must not change results


class TestRecordingEquivalence:
    def test_goal_driven_paths_unchanged(self, fig3_catalog):
        plain = generate_goal_driven(fig3_catalog, F11, GOAL, F12)
        recorder = DecisionRecorder()
        recorded = generate_goal_driven(
            fig3_catalog, F11, GOAL, F12, obs=Observability(decisions=recorder)
        )
        assert {p.selections for p in plain.paths()} == {
            p.selections for p in recorded.paths()
        }
        assert plain.pruning_stats.as_dict() == recorded.pruning_stats.as_dict()
        assert len(recorder) > 0

    def test_goal_driven_brandeis_paths_unchanged(self, catalog):
        goal = brandeis_major_goal()
        plain = generate_goal_driven(catalog, START, goal, END)
        recorder = DecisionRecorder()
        recorded = generate_goal_driven(
            catalog, START, goal, END, obs=Observability(decisions=recorder)
        )
        assert plain.path_count == recorded.path_count
        assert {p.selections for p in plain.paths()} == {
            p.selections for p in recorded.paths()
        }

    def test_ranked_paths_unchanged(self, catalog):
        goal = brandeis_major_goal()
        plain = generate_ranked(catalog, START, goal, END, k=3, ranking=TimeRanking())
        recorder = DecisionRecorder()
        recorded = generate_ranked(
            catalog, START, goal, END, k=3, ranking=TimeRanking(),
            obs=Observability(decisions=recorder),
        )
        assert [p.selections for p in plain.paths] == [
            p.selections for p in recorded.paths
        ]
        report = recorder.report()
        assert report.counts_by_kind()["goal"] >= 3
        # ranked search assigns explain-only ids with intact parent linkage
        for event in report.pruned():
            assert report.lineage(event.node_id)[0].parent_id is None

    def test_frontier_counts_unchanged(self, catalog):
        goal = brandeis_major_goal()
        plain = frontier_count_goal_paths(catalog, START, goal, END)
        recorder = DecisionRecorder()
        recorded = frontier_count_goal_paths(
            catalog, START, goal, END, obs=Observability(decisions=recorder)
        )
        assert plain.path_count == recorded.path_count
        report = recorder.report()
        # merged-DP events carry state multiplicity instead of parentage
        assert report.counts_by_kind()["goal"] >= 1
        for event in report.events:
            assert event.parent_id is None
            assert "multiplicity" in event.detail

    def test_navigator_threads_recorder(self, catalog):
        recorder = DecisionRecorder()
        navigator = CourseNavigator(catalog, decisions=recorder)
        assert navigator.observability is not None
        result = navigator.explore_goal(START, brandeis_major_goal(), END)
        assert recorder.report().counts_by_kind()["goal"] == result.path_count


# ---------------------------------------------------------------------------
# CLI surface


class TestExplainCli:
    def _fig3_args(self, tmp_path, fig3_catalog):
        from repro.parsing import save_catalog

        path = tmp_path / "cat.json"
        save_catalog(fig3_catalog, path)
        return [
            "--catalog", str(path),
            "--start", "Fall 2011",
            "--end", "Fall 2012",
            "--goal-courses", "11A", "29A", "21A",
        ]

    def test_explain_subcommand_names_bounds(self, capsys, tmp_path, fig3_catalog):
        from repro.system.cli import main

        code = main(["explain", *self._fig3_args(tmp_path, fig3_catalog), "-m", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Strategy attribution" in out
        assert "pruned by" in out
        assert "left_i=" in out and "min_i=" in out and "m=" in out

    def test_explain_subcommand_json_and_out(self, capsys, tmp_path, fig3_catalog):
        from repro.system.cli import main

        audit = tmp_path / "audit.jsonl"
        code = main([
            "explain", *self._fig3_args(tmp_path, fig3_catalog),
            "--json", "--out", str(audit), "--why", "21A",
        ])
        captured = capsys.readouterr()
        assert code == 0
        data = json.loads(captured.out)
        assert data["decisions"]["total"] == len(load_decision_events(str(audit)))
        assert data["why_not"]["course"] == "21A"
        assert "decision audit written to" in captured.err

    def test_goal_explain_flag_writes_jsonl(self, capsys, tmp_path, fig3_catalog):
        from repro.system.cli import main

        audit = tmp_path / "audit.jsonl"
        code = main([
            "goal", *self._fig3_args(tmp_path, fig3_catalog),
            "--explain", str(audit),
        ])
        captured = capsys.readouterr()
        assert code == 0
        report = ExplainReport.from_jsonl(str(audit))
        assert report.counts_by_kind()["goal"] >= 1
        assert f"decision audit written to {audit}" in captured.err

    def test_ranked_explain_flag_writes_jsonl(self, capsys, tmp_path, fig3_catalog):
        from repro.system.cli import main

        audit = tmp_path / "audit.jsonl"
        code = main([
            "ranked", *self._fig3_args(tmp_path, fig3_catalog),
            "-k", "1", "--explain", str(audit),
        ])
        assert code == 0
        capsys.readouterr()
        assert load_decision_events(str(audit))
