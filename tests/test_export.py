"""Tests for graph DOT / JSON export."""

import json

import pytest

from repro.core import build_deadline_dag, generate_deadline_driven
from repro.graph.export import graph_to_dot, graph_to_json, write_dot, write_json

from .conftest import F11, S13


@pytest.fixture
def tree(fig3_catalog):
    return generate_deadline_driven(fig3_catalog, F11, S13).graph


@pytest.fixture
def dag(fig3_catalog):
    return build_deadline_dag(fig3_catalog, F11, S13).dag


class TestDot:
    def test_tree_dot_structure(self, tree):
        dot = graph_to_dot(tree)
        assert dot.startswith("digraph learning_graph {")
        assert dot.rstrip().endswith("}")
        assert dot.count(" -> ") == tree.num_edges
        assert "n0" in dot

    def test_tree_dot_labels_selections(self, tree):
        dot = graph_to_dot(tree)
        assert "{11A, 29A}" in dot

    def test_tree_dot_colors_terminals(self, tree):
        dot = graph_to_dot(tree)
        assert "lightblue" in dot  # deadline leaves
        assert "lightgray" in dot  # the dead end (Fig. 3's n6)

    def test_tree_truncation(self, tree):
        dot = graph_to_dot(tree, max_nodes=3)
        assert "more nodes" in dot

    def test_dag_dot(self, dag):
        dot = graph_to_dot(dag)
        assert dot.startswith("digraph learning_dag {")
        assert dot.count(" -> ") == dag.num_edges

    def test_dag_truncation(self, dag):
        assert "more nodes" in graph_to_dot(dag, max_nodes=2)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            graph_to_dot("graph")

    def test_write_dot(self, tree, tmp_path):
        path = tmp_path / "graph.dot"
        write_dot(tree, str(path))
        assert path.read_text().startswith("digraph")


class TestJson:
    def test_tree_json(self, tree):
        data = graph_to_json(tree)
        assert data["kind"] == "tree"
        assert len(data["nodes"]) == tree.num_nodes
        assert len(data["edges"]) == tree.num_edges
        root = data["nodes"][0]
        assert root["term"] == "Fall 2011"
        assert root["completed"] == []
        assert sorted(root["options"]) == ["11A", "29A"]

    def test_tree_json_terminals(self, tree):
        data = graph_to_json(tree)
        kinds = {node["terminal"] for node in data["nodes"]}
        assert "deadline" in kinds and "dead_end" in kinds

    def test_dag_json(self, dag):
        data = graph_to_json(dag)
        assert data["kind"] == "dag"
        assert len(data["nodes"]) == dag.num_nodes
        assert len(data["edges"]) == dag.num_edges

    def test_json_serializable(self, tree, dag):
        json.dumps(graph_to_json(tree))
        json.dumps(graph_to_json(dag))

    def test_write_json(self, dag, tmp_path):
        path = tmp_path / "graph.json"
        write_json(dag, str(path))
        with open(path) as handle:
            assert json.load(handle)["kind"] == "dag"

    def test_bad_type(self):
        with pytest.raises(TypeError):
            graph_to_json(42)
