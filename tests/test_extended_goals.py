"""Tests for CreditGoal, TagCountGoal, and progress reporting."""

import itertools
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GoalError
from repro.requirements import (
    CourseSetGoal,
    CreditGoal,
    DegreeGoal,
    RequirementGroup,
    TagCountGoal,
    progress_report,
)


class TestCreditGoal:
    @pytest.fixture
    def goal(self):
        return CreditGoal({"A": 4, "B": 4, "C": 2, "D": 2}, min_credits=8)

    def test_satisfaction(self, goal):
        assert goal.is_satisfied({"A", "B"})
        assert goal.is_satisfied({"A", "C", "D"})
        assert not goal.is_satisfied({"A", "C"})

    def test_irrelevant_courses_ignored(self, goal):
        assert goal.earned({"A", "X"}) == 4
        assert not goal.is_satisfied({"X", "Y", "Z"})

    def test_remaining_uses_best_case(self, goal):
        # 8 credits missing; two 4-credit courses suffice.
        assert goal.remaining_courses(frozenset()) == 2
        # 4 missing; one 4-credit course.
        assert goal.remaining_courses({"A"}) == 1
        # 2+2 completed: 4 missing, best pending is 4 -> 1 course.
        assert goal.remaining_courses({"C", "D"}) == 1
        assert goal.remaining_courses({"A", "B"}) == 0

    def test_remaining_never_overestimates(self, goal):
        """Exactness check against brute force (pruning soundness)."""
        universe = ["A", "B", "C", "D"]
        for r in range(len(universe) + 1):
            for completed in itertools.combinations(universe, r):
                completed = frozenset(completed)
                claimed = goal.remaining_courses(completed)
                pool = [c for c in universe if c not in completed]
                best = math.inf
                for size in range(len(pool) + 1):
                    if any(
                        goal.is_satisfied(completed | set(combo))
                        for combo in itertools.combinations(pool, size)
                    ):
                        best = size
                        break
                assert claimed == best

    def test_unreachable_target(self):
        goal = CreditGoal({"A": 4}, min_credits=8)
        assert goal.remaining_courses(frozenset()) == math.inf
        assert not goal.is_satisfied({"A"})

    def test_zero_target_always_satisfied(self):
        goal = CreditGoal({"A": 4}, min_credits=0)
        assert goal.is_satisfied(frozenset())
        assert goal.remaining_courses(frozenset()) == 0

    def test_validation(self):
        with pytest.raises(GoalError):
            CreditGoal({"A": 4}, min_credits=-1)
        with pytest.raises(GoalError):
            CreditGoal({"A": -4}, min_credits=1)

    def test_zero_credit_courses_dropped(self):
        goal = CreditGoal({"A": 0, "B": 4}, min_credits=4)
        assert goal.courses() == {"B"}

    def test_monotone(self):
        """Adding courses never unsatisfies (required by the algorithms)."""
        goal = CreditGoal({"A": 4, "B": 2}, min_credits=4)
        assert goal.is_satisfied({"A"})
        assert goal.is_satisfied({"A", "B"})
        assert goal.remaining_courses({"A", "B"}) <= goal.remaining_courses({"A"})

    def test_serialization_shape(self):
        goal = CreditGoal({"A": 4}, min_credits=4)
        data = goal.to_dict()
        assert data["type"] == "credits"
        assert data["min_credits"] == 4


class TestTagCountGoal:
    def test_semantics(self):
        goal = TagCountGoal("systems", {"A", "B", "C"}, 2)
        assert goal.is_satisfied({"A", "C"})
        assert not goal.is_satisfied({"A"})
        assert goal.remaining_courses({"A"}) == 1
        assert goal.remaining_courses({"A", "B", "C"}) == 0

    def test_from_catalog(self, fig3_catalog):
        tagged = fig3_catalog["11A"].with_tags({"intro"})
        from repro.catalog import Catalog

        catalog = Catalog(
            [tagged, fig3_catalog["29A"].with_tags({"intro"}), fig3_catalog["21A"]],
            schedule=fig3_catalog.schedule,
        )
        goal = TagCountGoal.from_catalog(catalog, "intro", 2)
        assert goal.courses() == {"11A", "29A"}
        assert goal.is_satisfied({"11A", "29A"})

    def test_too_many_required(self):
        with pytest.raises(GoalError):
            TagCountGoal("x", {"A"}, 2)

    def test_negative_required(self):
        with pytest.raises(GoalError):
            TagCountGoal("x", {"A"}, -1)

    def test_works_in_goal_driven_generation(self, fig3_catalog):
        from repro.core import generate_goal_driven
        from .conftest import F11, S13

        goal = TagCountGoal("any", {"11A", "29A", "21A"}, 2)
        result = generate_goal_driven(fig3_catalog, F11, goal, S13)
        assert result.path_count > 0
        for path in result.paths():
            assert len(path.end.completed & {"11A", "29A", "21A"}) >= 2


class TestProgressReport:
    def test_degree_goal_groups(self):
        goal = DegreeGoal(
            (
                RequirementGroup("core", {"A", "B"}, 2),
                RequirementGroup("electives", {"C", "D", "E"}, 2),
            )
        )
        report = progress_report(goal, {"A", "C"})
        assert not report.satisfied
        assert report.remaining_courses == 2
        core = next(g for g in report.groups if g.name == "core")
        assert core.filled == 1
        assert core.assigned_courses == {"A"}
        assert core.missing_options == {"B"}
        assert not core.complete

    def test_satisfied_degree(self):
        goal = DegreeGoal((RequirementGroup("core", {"A"}, 1),))
        report = progress_report(goal, {"A"})
        assert report.satisfied
        assert "SATISFIED" in report.describe()

    def test_course_set_goal(self):
        report = progress_report(CourseSetGoal({"A", "B"}), {"A"})
        assert report.groups[0].filled == 1
        assert report.groups[0].missing_options == {"B"}
        assert "1/2" in report.describe()

    def test_tag_goal(self):
        report = progress_report(TagCountGoal("sys", {"A", "B", "C"}, 2), {"B"})
        assert report.groups[0].filled == 1
        assert report.groups[0].required == 2

    def test_credit_goal(self):
        report = progress_report(CreditGoal({"A": 4, "B": 4}, 8), {"A"})
        assert report.groups[0].filled == 4
        assert report.groups[0].required == 8

    def test_unsatisfiable_described(self):
        goal = DegreeGoal(
            (
                RequirementGroup("g1", {"X"}, 1),
                RequirementGroup("g2", {"X"}, 1),
            )
        )
        report = progress_report(goal, frozenset())
        assert "unsatisfiable" in report.describe()

    def test_generic_goal_fallback(self):
        from repro.requirements import AllOfGoal

        goal = AllOfGoal([CourseSetGoal({"A"}), CourseSetGoal({"B"})])
        report = progress_report(goal, {"A"})
        assert report.groups
        assert report.remaining_courses == 1

    def test_group_describe_truncates_long_lists(self):
        goal = CourseSetGoal({f"C{i}" for i in range(10)})
        report = progress_report(goal, frozenset())
        assert "+" in report.groups[0].describe()


# -- the new goals flow through the full algorithm stack safely ----------------

@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 3000), target=st.integers(1, 3))
def test_tag_goal_pruning_soundness(seed, target):
    from repro.core import generate_goal_driven
    from repro.data import GeneratorSettings, random_catalog
    from repro.semester import Term

    catalog = random_catalog(seed, GeneratorSettings(n_courses=5, n_terms=3))
    ids = sorted(catalog.course_ids())[:3]
    goal = TagCountGoal("t", ids, min(target, len(ids)))
    start = Term(2011, "Fall")
    pruned = generate_goal_driven(catalog, start, goal, start + 3)
    unpruned = generate_goal_driven(catalog, start, goal, start + 3, pruners=[])
    assert {p.selections for p in pruned.paths()} == {
        p.selections for p in unpruned.paths()
    }


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 3000))
def test_credit_goal_pruning_soundness(seed):
    from repro.core import generate_goal_driven
    from repro.data import GeneratorSettings, random_catalog
    from repro.semester import Term

    catalog = random_catalog(seed, GeneratorSettings(n_courses=5, n_terms=3))
    credits = {cid: 4 for cid in catalog.course_ids()}
    goal = CreditGoal(credits, min_credits=8)
    start = Term(2011, "Fall")
    pruned = generate_goal_driven(catalog, start, goal, start + 3)
    unpruned = generate_goal_driven(catalog, start, goal, start + 3, pruners=[])
    assert {p.selections for p in pruned.paths()} == {
        p.selections for p in unpruned.paths()
    }
