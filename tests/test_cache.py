"""Tests for the query-acceleration subsystem (repro.cache).

Covers the LRU memo primitive, content fingerprints, the CachedGoal
wrapper, the headline equivalence property — byte-identical path sets,
counts, prune-decision streams and explain audits with and without a
cache, across all four generators, cold and warm — plus the persistent
store (round-trip, warm start, invalidation on catalog change, graceful
cold start on corruption), LRU eviction under tiny capacities, metrics
binding, and the CLI surface (``--cache``/``--no-cache``/``--cache-dir``).
"""

import json
import math
import os

import pytest

from repro.cache import (
    CachedGoal,
    CacheStore,
    ExplorationCache,
    LRUMemo,
    catalog_fingerprint,
    goal_fingerprint,
    pruner_signature,
    schedule_fingerprint,
)
from repro.core import (
    ExplorationConfig,
    generate_deadline_driven,
    generate_goal_driven,
    generate_ranked,
)
from repro.core.counting import count_goal_paths
from repro.core.frontier import frontier_count_goal_paths
from repro.core.pruning import (
    AvailabilityPruner,
    PruningContext,
    TimeBasedPruner,
)
from repro.core.ranking import TimeRanking
from repro.data import (
    brandeis_catalog,
    brandeis_major_goal,
    random_catalog,
    random_course_set_goal,
)
from repro.obs import DecisionRecorder, MetricsRegistry, Observability
from repro.parsing import save_catalog
from repro.requirements import CourseSetGoal, ExpressionGoal
from repro.semester import Term
from repro.system.cli import main as cli_main

START = Term(2013, "Fall")
END = Term(2015, "Fall")
CONFIG = ExplorationConfig(max_courses_per_term=3)
SMALL_GOAL = CourseSetGoal({"COSI 11a", "COSI 21a", "COSI 29a"})


def path_keys(result):
    """An order-insensitive, content-complete key for a path collection."""
    return sorted(
        tuple(
            (str(status.term), tuple(sorted(selection)))
            for status, selection in zip(
                path.statuses, list(path.selections) + [frozenset()]
            )
        )
        for path in result.paths()
    )


def run_goal(catalog, goal, cache=None, recorder=None, start=START, end=END):
    obs = Observability(decisions=recorder) if recorder is not None else None
    return generate_goal_driven(
        catalog, start, goal, end, config=CONFIG, obs=obs, cache=cache
    )


# ---------------------------------------------------------------------------
# LRUMemo


class TestLRUMemo:
    def test_miss_then_hit(self):
        memo = LRUMemo("t", capacity=4)
        found, value = memo.lookup("a")
        assert (found, value) == (False, None)
        memo.store("a", 1)
        found, value = memo.lookup("a")
        assert (found, value) == (True, 1)
        assert memo.hits == 1 and memo.misses == 1

    def test_evicts_least_recently_used(self):
        memo = LRUMemo("t", capacity=2)
        memo.store("a", 1)
        memo.store("b", 2)
        memo.lookup("a")  # refresh "a"; "b" is now LRU
        memo.store("c", 3)
        assert memo.evictions == 1
        assert memo.lookup("b") == (False, None)
        assert memo.lookup("a") == (True, 1)
        assert memo.lookup("c") == (True, 3)

    def test_store_does_not_count(self):
        memo = LRUMemo("t", capacity=4)
        memo.store("a", 1)
        assert memo.hits == 0 and memo.misses == 0

    def test_unbounded_capacity(self):
        memo = LRUMemo("t", capacity=None)
        for i in range(10_000):
            memo.store(i, i)
        assert len(memo) == 10_000 and memo.evictions == 0

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            LRUMemo("t", capacity=0)

    def test_stats_and_clear(self):
        memo = LRUMemo("t", capacity=8)
        memo.lookup("a")
        memo.store("a", 1)
        memo.lookup("a")
        stats = memo.stats()
        assert stats["name"] == "t"
        assert stats["size"] == 1 and stats["capacity"] == 8
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        memo.clear()
        assert len(memo) == 0


# ---------------------------------------------------------------------------
# fingerprints


class TestFingerprints:
    def test_catalog_fingerprint_is_content_stable(self):
        assert catalog_fingerprint(brandeis_catalog()) == catalog_fingerprint(
            brandeis_catalog()
        )

    def test_catalog_fingerprint_sees_content_changes(self):
        assert catalog_fingerprint(brandeis_catalog()) != catalog_fingerprint(
            random_catalog(seed=7)
        )

    def test_goal_fingerprint_distinguishes_goals(self):
        a = goal_fingerprint(CourseSetGoal({"COSI 11a"}))
        b = goal_fingerprint(CourseSetGoal({"COSI 21a"}))
        assert a != b
        assert a == goal_fingerprint(CourseSetGoal({"COSI 11a"}))

    def test_schedule_fingerprint_stable(self):
        assert schedule_fingerprint(
            brandeis_catalog().schedule
        ) == schedule_fingerprint(brandeis_catalog().schedule)

    def test_pruner_signature_orders_matter(self):
        catalog = brandeis_catalog()
        context = PruningContext(
            catalog=catalog, goal=SMALL_GOAL, end_term=END, config=CONFIG
        )
        time_p = TimeBasedPruner(context)
        avail_p = AvailabilityPruner(context)
        assert pruner_signature([time_p, avail_p]) != pruner_signature(
            [avail_p, time_p]
        )


# ---------------------------------------------------------------------------
# CachedGoal


class TestCachedGoal:
    def test_delegates_and_matches_inner(self):
        cache = ExplorationCache()
        goal = brandeis_major_goal()
        wrapped = cache.wrap_goal(goal)
        assert isinstance(wrapped, CachedGoal)
        assert wrapped.courses() == goal.courses()
        assert wrapped.describe() == goal.describe()
        assert wrapped.to_dict() == goal.to_dict()
        for completed in (
            frozenset(),
            frozenset({"COSI 11a"}),
            frozenset({"COSI 11a", "COSI 21a", "COSI 29a"}),
        ):
            assert wrapped.is_satisfied(completed) == goal.is_satisfied(completed)
            assert wrapped.remaining_courses(completed) == goal.remaining_courses(
                completed
            )
            # and again, now served from the memo
            assert wrapped.is_satisfied(completed) == goal.is_satisfied(completed)
            assert wrapped.remaining_courses(completed) == goal.remaining_courses(
                completed
            )
        assert cache.flow.memo.hits > 0

    def test_expression_goal_dnf_fast_path(self):
        catalog = brandeis_catalog()
        from repro.catalog.prereq import TRUE

        expression = next(
            course.prereq for course in catalog.courses() if course.prereq is not TRUE
        )
        expr_goal = ExpressionGoal(expression, label="prereq")
        cache = ExplorationCache()
        wrapped = cache.wrap_goal(expr_goal)
        for completed in (frozenset(), frozenset({"COSI 11a"}), catalog.course_ids()):
            expected = expr_goal.remaining_courses(frozenset(completed))
            got = wrapped.remaining_courses(frozenset(completed))
            assert got == expected or (
                math.isinf(got) and math.isinf(expected)
            )
            assert wrapped.is_satisfied(frozenset(completed)) == expr_goal.is_satisfied(
                frozenset(completed)
            )

    def test_wrap_is_idempotent_and_stable(self):
        cache = ExplorationCache()
        goal = SMALL_GOAL
        wrapped = cache.wrap_goal(goal)
        assert cache.wrap_goal(goal) is wrapped
        assert cache.wrap_goal(wrapped) is wrapped
        assert wrapped == goal and hash(wrapped) == hash(goal)


# ---------------------------------------------------------------------------
# the headline property: cached == uncached, cold and warm


class TestEquivalence:
    def test_goal_driven_identical_cold_and_warm(self):
        catalog = brandeis_catalog()
        base_rec, cold_rec, warm_rec = (
            DecisionRecorder(),
            DecisionRecorder(),
            DecisionRecorder(),
        )
        base = run_goal(catalog, brandeis_major_goal(), recorder=base_rec)
        cache = ExplorationCache()
        cold = run_goal(
            catalog, brandeis_major_goal(), cache=cache, recorder=cold_rec
        )
        warm = run_goal(
            catalog, brandeis_major_goal(), cache=cache, recorder=warm_rec
        )
        for other in (cold, warm):
            assert other.path_count == base.path_count
            assert path_keys(other) == path_keys(base)
            assert other.pruning_stats.as_dict() == base.pruning_stats.as_dict()
        base_events = [e.as_dict() for e in base_rec.events]
        assert [e.as_dict() for e in cold_rec.events] == base_events
        assert [e.as_dict() for e in warm_rec.events] == base_events
        # the warm run actually reused transposed verdicts
        assert cache.transposition.memo.hits > 0
        assert cache.flow.memo.hits > 0

    def test_goal_driven_without_recorder_matches_recorded(self):
        # boolean-only transposition entries (stored by an unrecorded run)
        # must upgrade cleanly when a recorder appears later
        catalog = brandeis_catalog()
        cache = ExplorationCache()
        quiet = run_goal(catalog, brandeis_major_goal(), cache=cache)
        recorder = DecisionRecorder()
        loud = run_goal(
            catalog, brandeis_major_goal(), cache=cache, recorder=recorder
        )
        baseline_rec = DecisionRecorder()
        baseline = run_goal(catalog, brandeis_major_goal(), recorder=baseline_rec)
        assert loud.path_count == quiet.path_count == baseline.path_count
        assert [e.as_dict() for e in recorder.events] == [
            e.as_dict() for e in baseline_rec.events
        ]

    def test_ranked_identical(self):
        catalog = brandeis_catalog()
        base = generate_ranked(
            catalog, START, brandeis_major_goal(), END, 5, TimeRanking(),
            config=CONFIG,
        )
        cache = ExplorationCache()
        for _ in range(2):  # cold then warm
            cached = generate_ranked(
                catalog, START, brandeis_major_goal(), END, 5, TimeRanking(),
                config=CONFIG, cache=cache,
            )
            assert [
                (cost, str(path)) for cost, path in cached.ranked()
            ] == [(cost, str(path)) for cost, path in base.ranked()]

    def test_deadline_identical(self):
        catalog = brandeis_catalog()
        config = ExplorationConfig(max_courses_per_term=2)
        end = Term(2014, "Fall")
        base = generate_deadline_driven(catalog, START, end, config=config)
        cache = ExplorationCache()
        cached = generate_deadline_driven(
            catalog, START, end, config=config, cache=cache
        )
        assert cached.path_count == base.path_count
        assert path_keys(cached) == path_keys(base)
        assert cache.eval.options_memo.misses > 0

    def test_counting_and_frontier_identical(self):
        catalog = brandeis_catalog()
        goal = brandeis_major_goal()
        cache = ExplorationCache()
        base_count = count_goal_paths(catalog, START, goal, END, config=CONFIG)
        base_frontier = frontier_count_goal_paths(
            catalog, START, goal, END, config=CONFIG
        )
        for _ in range(2):
            assert (
                count_goal_paths(
                    catalog, START, goal, END, config=CONFIG, cache=cache
                )
                == base_count
            )
            assert (
                frontier_count_goal_paths(
                    catalog, START, goal, END, config=CONFIG, cache=cache
                ).path_count
                == base_frontier.path_count
            )

    def test_random_catalogs_property(self):
        for seed in (3, 11, 2016):
            catalog = random_catalog(seed=seed)
            goal = random_course_set_goal(catalog, seed=seed)
            terms = sorted(catalog.schedule.terms())
            start, end = terms[0], terms[min(3, len(terms) - 1)]
            config = ExplorationConfig(max_courses_per_term=2)
            base = generate_goal_driven(
                catalog, start, goal, end, config=config
            )
            cache = ExplorationCache()
            for _ in range(2):
                cached = generate_goal_driven(
                    catalog, start, goal, end, config=config, cache=cache
                )
                assert cached.path_count == base.path_count
                assert path_keys(cached) == path_keys(base)
                assert (
                    cached.pruning_stats.as_dict() == base.pruning_stats.as_dict()
                )

    def test_shared_cache_across_distinct_goals_stays_correct(self):
        # two goals through one cache must not cross-contaminate
        catalog = brandeis_catalog()
        goal_a = SMALL_GOAL
        goal_b = CourseSetGoal({"COSI 12b", "COSI 29a"})
        base_a = run_goal(catalog, goal_a)
        base_b = run_goal(catalog, goal_b)
        cache = ExplorationCache()
        for _ in range(2):
            assert run_goal(catalog, goal_a, cache=cache).path_count == base_a.path_count
            assert run_goal(catalog, goal_b, cache=cache).path_count == base_b.path_count


# ---------------------------------------------------------------------------
# eviction under pressure


class TestEviction:
    def test_tiny_capacities_still_exact(self):
        catalog = brandeis_catalog()
        base = run_goal(catalog, brandeis_major_goal())
        cache = ExplorationCache(
            flow_capacity=32, eval_capacity=32, transposition_capacity=32
        )
        for _ in range(2):
            cached = run_goal(catalog, brandeis_major_goal(), cache=cache)
            assert cached.path_count == base.path_count
            assert path_keys(cached) == path_keys(base)
        assert cache.flow.memo.evictions > 0
        assert len(cache.flow.memo) <= 32


# ---------------------------------------------------------------------------
# persistent store


class TestCacheStore:
    def test_round_trip_and_warm_start(self, tmp_path):
        catalog = brandeis_catalog()
        cache = ExplorationCache.with_store(catalog, str(tmp_path))
        run_goal(catalog, brandeis_major_goal(), cache=cache)
        saved = cache.save()
        assert saved > 0
        assert os.path.exists(cache.store.path)

        fresh = ExplorationCache.with_store(catalog, str(tmp_path))
        assert fresh.store.warm_start
        assert fresh.store.loaded_entries == saved
        assert len(fresh.flow.memo) == saved
        # preloading must not pollute hit-rate accounting
        assert fresh.flow.memo.hits == 0 and fresh.flow.memo.misses == 0
        base = run_goal(catalog, brandeis_major_goal())
        warm = run_goal(catalog, brandeis_major_goal(), cache=fresh)
        assert warm.path_count == base.path_count
        assert path_keys(warm) == path_keys(base)
        assert fresh.flow.memo.hits > 0

    def test_catalog_change_invalidates(self, tmp_path):
        catalog = brandeis_catalog()
        cache = ExplorationCache.with_store(catalog, str(tmp_path))
        run_goal(catalog, brandeis_major_goal(), cache=cache)
        assert cache.save() > 0

        other = random_catalog(seed=5)
        cold = ExplorationCache.with_store(other, str(tmp_path))
        assert not cold.store.warm_start
        assert cold.store.loaded_entries == 0
        assert cold.store.path != cache.store.path

    def test_corrupt_file_cold_starts(self, tmp_path):
        catalog = brandeis_catalog()
        store = CacheStore(str(tmp_path), catalog_fingerprint(catalog))
        with open(store.path, "w", encoding="utf-8") as handle:
            handle.write("this is not json\n")
        cache = ExplorationCache.with_store(catalog, str(tmp_path))
        assert not cache.store.warm_start
        assert cache.store.loaded_entries == 0
        # and the run still works
        assert run_goal(catalog, SMALL_GOAL, cache=cache).path_count > 0

    def test_bad_header_cold_starts(self, tmp_path):
        catalog = brandeis_catalog()
        store = CacheStore(str(tmp_path), catalog_fingerprint(catalog))
        header = {
            "format": "something-else",
            "version": 99,
            "catalog": catalog_fingerprint(catalog),
        }
        with open(store.path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.write(json.dumps({"kind": "sat"}) + "\n")
        fresh = ExplorationCache.with_store(catalog, str(tmp_path))
        assert fresh.store.loaded_entries == 0

    def test_bad_lines_skipped_good_lines_kept(self, tmp_path):
        catalog = brandeis_catalog()
        cache = ExplorationCache.with_store(catalog, str(tmp_path))
        run_goal(catalog, SMALL_GOAL, cache=cache)
        saved = cache.save()
        with open(cache.store.path, "a", encoding="utf-8") as handle:
            handle.write("{ broken json\n")
            handle.write(json.dumps({"kind": "sat", "goal": 3}) + "\n")
        fresh = ExplorationCache.with_store(catalog, str(tmp_path))
        assert fresh.store.loaded_entries == saved

    def test_missing_dir_is_cold_not_fatal(self, tmp_path):
        catalog = brandeis_catalog()
        cache = ExplorationCache.with_store(
            catalog, str(tmp_path / "does" / "not" / "exist")
        )
        assert not cache.store.warm_start
        run_goal(catalog, SMALL_GOAL, cache=cache)
        assert cache.save() > 0  # save_from creates the directory


# ---------------------------------------------------------------------------
# metrics integration


class TestMetrics:
    def test_counters_emitted_per_layer(self):
        catalog = brandeis_catalog()
        registry = MetricsRegistry()
        cache = ExplorationCache()
        cache.bind_metrics(registry)
        cache.bind_metrics(registry)  # idempotent
        run_goal(catalog, brandeis_major_goal(), cache=cache)
        run_goal(catalog, brandeis_major_goal(), cache=cache)
        text = registry.render_prometheus()
        assert "repro_cache_hits_total" in text
        assert "repro_cache_misses_total" in text
        assert "repro_cache_evictions_total" in text
        assert 'layer="flow"' in text and 'layer="transposition"' in text
        snapshot = registry.snapshot()
        flow_hits = sum(
            m["value"]
            for m in snapshot["metrics"]
            if m["name"] == "repro_cache_hits_total"
            and m["labels"].get("layer") == "flow"
        )
        assert flow_hits == cache.flow.memo.hits > 0

    def test_late_binding_flushes_backlog(self):
        catalog = brandeis_catalog()
        cache = ExplorationCache()
        run_goal(catalog, SMALL_GOAL, cache=cache)
        registry = MetricsRegistry()
        cache.bind_metrics(registry)  # after the fact
        snapshot = registry.snapshot()
        misses = sum(
            m["value"]
            for m in snapshot["metrics"]
            if m["name"] == "repro_cache_misses_total"
        )
        assert misses > 0


# ---------------------------------------------------------------------------
# the shared offered-window memo (satellite: hoisted per-pruner cache)


class TestSharedOfferedWindow:
    def test_fresh_pruner_instances_share_windows(self):
        # each pruner keeps a lookup-free per-instance dict, but the window
        # computation itself lives in the shared eval memo: a second pruner
        # (as a new run would build) starts with an empty dict yet hits
        catalog = brandeis_catalog()
        cache = ExplorationCache()
        context = PruningContext(
            catalog=catalog, goal=SMALL_GOAL, end_term=END, config=CONFIG,
            cache=cache,
        )
        first = AvailabilityPruner(context)
        second = AvailabilityPruner(context)
        window = first._offered_from(START)
        assert cache.eval.offered_memo.misses == 1
        assert second._offered_from(START) == window
        assert cache.eval.offered_memo.hits == 1
        # the per-instance first level absorbs repeats without memo traffic
        first._offered_from(START)
        assert cache.eval.offered_memo.hits == 1

    def test_offered_window_matches_schedule(self):
        catalog = brandeis_catalog()
        cache = ExplorationCache()
        window = cache.eval.offered_window(
            catalog.schedule, Term(2013, "Fall"), Term(2014, "Spring"), frozenset()
        )
        expected = catalog.schedule.offered_between(
            Term(2013, "Fall"), Term(2014, "Spring")
        )
        assert window == frozenset(expected)
        assert cache.eval.offered_window(
            catalog.schedule, Term(2014, "Spring"), Term(2013, "Fall"), frozenset()
        ) == frozenset()


# ---------------------------------------------------------------------------
# CLI surface


class TestCacheCLI:
    def _goal_args(self, catalog_path, extra=()):
        return [
            "goal",
            "--catalog", str(catalog_path),
            "--start", "Fall 2013",
            "--end", "Fall 2015",
            "--goal-courses", "COSI 11a,COSI 21a,COSI 29a",
            "--count-only",
            *extra,
        ]

    @pytest.fixture()
    def catalog_path(self, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(brandeis_catalog(), path)
        return path

    def test_second_run_hits(self, capsys, tmp_path, catalog_path):
        cache_dir = tmp_path / "cache"
        metrics = tmp_path / "metrics.json"
        first = cli_main(
            self._goal_args(
                catalog_path, ["--cache-dir", str(cache_dir)]
            )
        )
        err_first = capsys.readouterr().err
        assert first == 0
        assert "flow entries saved to" in err_first
        code = cli_main(
            self._goal_args(
                catalog_path,
                ["--cache-dir", str(cache_dir), "--metrics-out", str(metrics)],
            )
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "cache hits:" in captured.err
        snapshot = json.loads(metrics.read_text())
        hits = sum(
            m["value"]
            for m in snapshot["metrics"]
            if m["name"] == "repro_cache_hits_total"
        )
        assert hits > 0

    def test_same_output_with_and_without_cache(self, capsys, catalog_path, tmp_path):
        cli_main(self._goal_args(catalog_path, ["--no-cache"]))
        without = capsys.readouterr()
        cli_main(
            self._goal_args(catalog_path, ["--cache-dir", str(tmp_path / "c")])
        )
        with_cache = capsys.readouterr()
        cli_main(
            self._goal_args(catalog_path, ["--cache-dir", str(tmp_path / "c")])
        )
        warm = capsys.readouterr()
        assert with_cache.out == without.out == warm.out

    def test_no_cache_prints_no_cache_line(self, capsys, catalog_path):
        code = cli_main(self._goal_args(catalog_path, ["--no-cache"]))
        captured = capsys.readouterr()
        assert code == 0
        assert "cache hits:" not in captured.err

    def test_cache_on_without_dir_is_memory_only(self, capsys, catalog_path):
        code = cli_main(self._goal_args(catalog_path))
        captured = capsys.readouterr()
        assert code == 0
        assert "flow entries saved" not in captured.err
