"""Tests for the registrar schedule parser."""

import pytest

from repro.errors import ScheduleParseError
from repro.parsing import parse_schedule_csv, parse_schedule_lines, parse_schedule_text
from repro.parsing.schedule_parser import schedule_to_rows
from repro.semester import Term

F11, S12, F12 = Term(2011, "Fall"), Term(2012, "Spring"), Term(2012, "Fall")


class TestLineFormat:
    def test_basic(self):
        schedule = parse_schedule_text(
            "COSI 11a: Fall 2011, Spring 2012\n"
            "COSI 21a: Spring '12\n"
        )
        assert schedule.offerings("COSI 11a") == {F11, S12}
        assert schedule.offerings("COSI 21a") == {S12}

    def test_pipe_and_tab_separators(self):
        schedule = parse_schedule_text("A | Fall 2011\nB\tSpring 2012")
        assert schedule.offerings("A") == {F11}
        assert schedule.offerings("B") == {S12}

    def test_semicolon_term_separator(self):
        schedule = parse_schedule_text("A: Fall 2011; Fall 2012")
        assert schedule.offerings("A") == {F11, F12}

    def test_comments_and_blank_lines(self):
        schedule = parse_schedule_text(
            "# registrar export\n"
            "\n"
            "A: Fall 2011  # offered yearly\n"
        )
        assert schedule.offerings("A") == {F11}

    def test_repeated_course_lines_merge(self):
        schedule = parse_schedule_text("A: Fall 2011\nA: Spring 2012")
        assert schedule.offerings("A") == {F11, S12}

    def test_missing_separator_raises(self):
        with pytest.raises(ScheduleParseError, match="line 1"):
            parse_schedule_text("COSI 11a Fall 2011")

    def test_empty_course_id_raises(self):
        with pytest.raises(ScheduleParseError, match="empty course id"):
            parse_schedule_text(": Fall 2011")

    def test_bad_term_raises_with_line_number(self):
        with pytest.raises(ScheduleParseError, match="line 2"):
            parse_schedule_text("A: Fall 2011\nB: Autumn 2011")

    def test_lines_iterable(self):
        schedule = parse_schedule_lines(["A: Fall 2011"])
        assert schedule.offerings("A") == {F11}

    def test_empty_document(self):
        assert len(parse_schedule_text("")) == 0


class TestCsvFormat:
    def test_basic(self):
        schedule = parse_schedule_csv(
            "course_id,term\nCOSI 11a,Fall 2011\nCOSI 11a,Spring 2012\n"
        )
        assert schedule.offerings("COSI 11a") == {F11, S12}

    def test_header_optional(self):
        schedule = parse_schedule_csv("A,Fall 2011\n")
        assert schedule.offerings("A") == {F11}

    def test_comment_rows_skipped(self):
        schedule = parse_schedule_csv("# note\nA,Fall 2011\n\n")
        assert schedule.offerings("A") == {F11}

    def test_short_row_raises(self):
        with pytest.raises(ScheduleParseError, match="row 1"):
            parse_schedule_csv("A\n")

    def test_empty_fields_raise(self):
        with pytest.raises(ScheduleParseError):
            parse_schedule_csv("A,\n")

    def test_bad_term_raises(self):
        with pytest.raises(ScheduleParseError, match="bad term"):
            parse_schedule_csv("A,sometime\n")


class TestRowsRoundtrip:
    def test_schedule_to_rows_roundtrips(self):
        schedule = parse_schedule_text("B: Spring 2012\nA: Fall 2011, Fall 2012")
        rows = schedule_to_rows(schedule)
        assert rows == [
            ("A", "Fall 2011"),
            ("A", "Fall 2012"),
            ("B", "Spring 2012"),
        ]
        csv_text = "\n".join(f"{c},{t}" for c, t in rows)
        assert parse_schedule_csv(csv_text) == schedule
