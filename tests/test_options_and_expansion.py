"""Tests for selection enumeration and the shared Expander."""

import pytest

from repro.core.config import ExplorationConfig
from repro.core.expansion import Expander
from repro.core.options import (
    has_relevant_future_offering,
    iter_selections,
    selection_count,
)
from repro.errors import InvalidConfigError
from repro.semester import Term

from .conftest import F11, F12, S12, S13


class TestIterSelections:
    def test_sizes_one_to_m(self):
        selections = list(iter_selections({"A", "B", "C"}, 2))
        assert frozenset({"A"}) in selections
        assert frozenset({"A", "B"}) in selections
        assert frozenset({"A", "B", "C"}) not in selections
        assert frozenset() not in selections

    def test_count_matches_formula(self):
        for n in range(0, 6):
            for m in range(1, 5):
                options = {f"X{i}" for i in range(n)}
                assert len(list(iter_selections(options, m))) == selection_count(n, m)

    def test_min_per_term_floor(self):
        selections = list(iter_selections({"A", "B", "C"}, 3, min_per_term=2))
        assert all(len(s) >= 2 for s in selections)
        assert len(selections) == 3 + 1

    def test_min_zero_includes_empty(self):
        selections = list(iter_selections({"A"}, 1, min_per_term=0))
        assert frozenset() in selections

    def test_deterministic_order(self):
        a = list(iter_selections({"B", "A", "C"}, 2))
        b = list(iter_selections({"C", "A", "B"}, 2))
        assert a == b
        # sizes ascending
        sizes = [len(s) for s in a]
        assert sizes == sorted(sizes)

    def test_paper_branching_formula(self):
        # Σ_{i=1..m} C(|Y|, i) — the §4.3 selection-options count.
        assert selection_count(6, 3) == 6 + 15 + 20


class TestFutureOffering:
    def test_detects_relevant_future(self, fig3_catalog):
        # Fig. 3 node n4: X={29A} at Spring '12 — 11A returns in Fall '12.
        assert has_relevant_future_offering(
            fig3_catalog, {"29A"}, S12, S13
        )

    def test_everything_completed_means_none(self, fig3_catalog):
        # Fig. 3 node n6: all courses done.
        assert not has_relevant_future_offering(
            fig3_catalog, {"11A", "29A", "21A"}, F12, S13
        )

    def test_window_excludes_end_term(self, fig3_catalog):
        # Courses taken in t complete by t+1, so an offering *at* the end
        # term is useless.
        assert not has_relevant_future_offering(
            fig3_catalog, frozenset(), F12, S13
        )

    def test_exclusions_respected(self, fig3_catalog):
        assert not has_relevant_future_offering(
            fig3_catalog, {"29A"}, S12, S13, exclude={"11A", "21A"}
        )


class TestExplorationConfig:
    def test_defaults_match_paper(self):
        config = ExplorationConfig()
        assert config.max_courses_per_term == 3
        assert config.empty_selection == "auto"
        assert config.enforce_min_selection

    def test_invalid_m(self):
        with pytest.raises(InvalidConfigError):
            ExplorationConfig(max_courses_per_term=0)

    def test_invalid_policy(self):
        with pytest.raises(InvalidConfigError):
            ExplorationConfig(empty_selection="sometimes")

    def test_invalid_max_nodes(self):
        with pytest.raises(InvalidConfigError):
            ExplorationConfig(max_nodes=0)

    def test_avoid_coerced(self):
        config = ExplorationConfig(avoid_courses={"A"})
        assert isinstance(config.avoid_courses, frozenset)


class TestExpander:
    def test_initial_status_matches_fig3_n1(self, fig3_catalog):
        expander = Expander(fig3_catalog, S13, ExplorationConfig())
        root = expander.initial_status(F11)
        assert root.term == F11
        assert root.completed == frozenset()
        assert root.options == {"11A", "29A"}

    def test_successors_match_fig3_root(self, fig3_catalog):
        # n1 branches to {11A}, {29A}, {11A, 29A} — and nothing else.
        expander = Expander(fig3_catalog, S13, ExplorationConfig())
        root = expander.initial_status(F11)
        successors = dict(expander.successors(root))
        assert set(successors) == {
            frozenset({"11A"}),
            frozenset({"29A"}),
            frozenset({"11A", "29A"}),
        }
        child = successors[frozenset({"11A", "29A"})]
        assert child.term == S12
        assert child.completed == {"11A", "29A"}
        assert child.options == {"21A"}  # Fig. 3 node n3

    def test_empty_move_auto_allows_fig3_n4(self, fig3_catalog):
        # n4: X={29A} in Spring '12, no options, but 11A returns — one
        # empty transition.
        expander = Expander(fig3_catalog, S13, ExplorationConfig())
        n4 = expander.initial_status(S12, {"29A"})
        successors = dict(expander.successors(n4))
        assert set(successors) == {frozenset()}
        child = successors[frozenset()]
        assert child.term == F12
        assert child.options == {"11A"}  # Fig. 3 node n7

    def test_empty_move_auto_stops_fig3_n6(self, fig3_catalog):
        # n6: everything completed — dead end, no successors.
        expander = Expander(fig3_catalog, S13, ExplorationConfig())
        n6 = expander.initial_status(F12, {"11A", "29A", "21A"})
        assert list(expander.successors(n6)) == []

    def test_empty_move_never_policy(self, fig3_catalog):
        expander = Expander(
            fig3_catalog, S13, ExplorationConfig(empty_selection="never")
        )
        n4 = expander.initial_status(S12, {"29A"})
        assert list(expander.successors(n4)) == []

    def test_empty_move_always_policy(self, fig3_catalog):
        expander = Expander(
            fig3_catalog, S13, ExplorationConfig(empty_selection="always")
        )
        root = expander.initial_status(F11)
        successors = dict(expander.successors(root))
        assert frozenset() in successors  # skipping is allowed alongside

    def test_max_per_term_limits_selections(self, fig3_catalog):
        expander = Expander(
            fig3_catalog, S13, ExplorationConfig(max_courses_per_term=1)
        )
        root = expander.initial_status(F11)
        successors = dict(expander.successors(root))
        assert set(successors) == {frozenset({"11A"}), frozenset({"29A"})}

    def test_required_minimum_floors_selections(self, fig3_catalog):
        expander = Expander(fig3_catalog, S13, ExplorationConfig())
        root = expander.initial_status(F11)
        successors = dict(expander.successors(root, required_minimum=2))
        assert set(successors) == {frozenset({"11A", "29A"})}

    def test_required_minimum_suppresses_empty_move(self, fig3_catalog):
        expander = Expander(fig3_catalog, S13, ExplorationConfig())
        n4 = expander.initial_status(S12, {"29A"})
        assert list(expander.successors(n4, required_minimum=1)) == []

    def test_avoid_courses_removed_from_options(self, fig3_catalog):
        expander = Expander(
            fig3_catalog, S13, ExplorationConfig(avoid_courses=frozenset({"29A"}))
        )
        root = expander.initial_status(F11)
        assert root.options == {"11A"}
