"""Tests for path-set statistics."""

from repro.analysis import summarize_paths
from repro.analysis.statistics import prefix_overlap_profile
from repro.core import generate_deadline_driven, generate_goal_driven
from repro.requirements import CourseSetGoal

from .conftest import F11, F12, S13


class TestSummarizePaths:
    def test_empty(self):
        summary = summarize_paths([])
        assert summary.count == 0
        assert summary.min_length is None
        assert summary.most_common_courses() == []

    def test_fig3_deadline_summary(self, fig3_catalog):
        paths = list(generate_deadline_driven(fig3_catalog, F11, S13).paths())
        summary = summarize_paths(paths, fig3_catalog)
        assert summary.count == 3
        assert summary.min_length == 2
        assert summary.max_length == 3
        assert summary.mean_length == (3 + 2 + 3) / 3
        # Courses per path: 3, 3, 2.
        assert summary.mean_courses == (3 + 3 + 2) / 3
        # Default workload 10h/course.
        assert summary.min_workload == 20.0
        assert summary.max_workload == 30.0

    def test_course_frequency(self, fig3_catalog):
        paths = list(generate_deadline_driven(fig3_catalog, F11, S13).paths())
        summary = summarize_paths(paths)
        frequency = dict(summary.most_common_courses(10))
        assert frequency["11A"] == 3
        assert frequency["29A"] == 3
        assert frequency["21A"] == 2

    def test_no_catalog_skips_workload(self, fig3_catalog):
        paths = list(generate_deadline_driven(fig3_catalog, F11, S13).paths())
        summary = summarize_paths(paths)
        assert summary.min_workload is None
        assert summary.mean_workload == 0.0

    def test_accepts_generator(self, fig3_catalog):
        result = generate_deadline_driven(fig3_catalog, F11, S13)
        summary = summarize_paths(result.paths())
        assert summary.count == 3


class TestPrefixOverlap:
    def test_empty(self):
        assert prefix_overlap_profile([]) == []

    def test_fig3_profile(self, fig3_catalog):
        paths = list(generate_deadline_driven(fig3_catalog, F11, S13).paths())
        profile = prefix_overlap_profile(paths)
        # Depth 1: three distinct first selections; all paths diverge
        # immediately on this toy catalog.
        assert profile[0] == 3
        assert len(profile) == 3

    def test_shared_prefix_detected(self, fig3_catalog):
        goal = CourseSetGoal({"11A", "29A", "21A"})
        paths = list(generate_goal_driven(fig3_catalog, F11, goal, F12).paths())
        profile = prefix_overlap_profile(paths)
        assert profile[0] == len({p.selections[:1] for p in paths})
