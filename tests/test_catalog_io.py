"""Tests for catalog persistence and the registrar pipeline."""

import json

import pytest

from repro.catalog.prereq import And, CourseReq, Or
from repro.errors import CatalogError, UnknownCourseError
from repro.parsing import (
    build_catalog_from_registrar,
    load_catalog,
    load_catalog_json,
    save_catalog,
)
from repro.parsing.catalog_io import dump_catalog_json
from repro.semester import Term

F11, S12 = Term(2011, "Fall"), Term(2012, "Spring")


class TestRegistrarPipeline:
    def test_full_pipeline(self):
        catalog = build_catalog_from_registrar(
            course_descriptions={
                "COSI 11a": "",
                "COSI 12b": "Prerequisite: COSI 11a",
                "COSI 21a": "COSI 11a or permission of the instructor",
            },
            schedule_text=(
                "COSI 11a: Fall 2011, Spring 2012\n"
                "COSI 12b: Spring 2012\n"
                "COSI 21a: Spring 2012\n"
            ),
            workloads={"COSI 12b": 14.0},
            tags={"COSI 11a": ["core"]},
            titles={"COSI 11a": "Programming in Java"},
        )
        assert catalog["COSI 12b"].prereq == CourseReq("COSI 11a")
        assert catalog["COSI 21a"].prereq == CourseReq("COSI 11a")
        assert catalog["COSI 12b"].workload_hours == 14.0
        assert catalog["COSI 11a"].title == "Programming in Java"
        assert catalog["COSI 11a"].has_tag("core")
        assert catalog.schedule.is_offered("COSI 11a", F11)

    def test_schedule_referencing_unknown_course_rejected(self):
        with pytest.raises(UnknownCourseError):
            build_catalog_from_registrar(
                course_descriptions={"A": ""},
                schedule_text="B: Fall 2011\n",
            )

    def test_prereq_referencing_unknown_course_rejected(self):
        with pytest.raises(UnknownCourseError):
            build_catalog_from_registrar(
                course_descriptions={"A": "MISSING"},
                schedule_text="A: Fall 2011\n",
            )


class TestJsonRoundtrip:
    @pytest.fixture
    def catalog(self):
        return build_catalog_from_registrar(
            course_descriptions={
                "A": "",
                "B": "A",
                "C": "A AND B",
                "D": "B OR C",
            },
            schedule_text="A: Fall 2011\nB: Spring 2012\nC: Spring 2012\nD: Fall 2012\n",
        )

    def test_file_roundtrip(self, catalog, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(catalog, path)
        rebuilt = load_catalog(path)
        assert set(rebuilt) == set(catalog)
        assert rebuilt.schedule == catalog.schedule
        assert rebuilt["C"].prereq == And(CourseReq("A"), CourseReq("B"))
        assert rebuilt["D"].prereq == Or(CourseReq("B"), CourseReq("C"))

    def test_file_output_is_valid_json(self, catalog, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(catalog, path)
        with open(path) as handle:
            data = json.load(handle)
        assert "courses" in data and "schedule" in data

    def test_dump_string_roundtrip(self, catalog):
        text = dump_catalog_json(catalog)
        rebuilt = load_catalog_json(json.loads(text))
        assert set(rebuilt) == set(catalog)

    def test_load_non_object_rejected(self):
        with pytest.raises(CatalogError):
            load_catalog_json([1, 2, 3])

    def test_brandeis_catalog_roundtrips(self, tmp_path):
        from repro.data import brandeis_catalog

        catalog = brandeis_catalog()
        path = tmp_path / "brandeis.json"
        save_catalog(catalog, path)
        rebuilt = load_catalog(path)
        assert set(rebuilt) == set(catalog)
        assert rebuilt.schedule == catalog.schedule
        for course_id in catalog:
            assert rebuilt[course_id].prereq.to_dnf() == catalog[course_id].prereq.to_dnf()
            assert rebuilt[course_id].workload_hours == catalog[course_id].workload_hours
