"""Tests for the CourseNavigator façade."""

import pytest

from repro.core import ExplorationConfig, TimeRanking, WorkloadRanking
from repro.errors import ExplorationError
from repro.requirements import CourseSetGoal
from repro.system import CourseNavigator

from .conftest import F11, F12, S12, S13

GOAL = CourseSetGoal({"11A", "29A", "21A"})


@pytest.fixture
def navigator(fig3_catalog):
    return CourseNavigator(fig3_catalog)


class TestExploration:
    def test_explore_deadline(self, navigator):
        result = navigator.explore_deadline(F11, S13)
        assert result.path_count == 3

    def test_explore_goal(self, navigator):
        result = navigator.explore_goal(F11, GOAL, F12)
        assert result.path_count == 1

    def test_explore_ranked(self, navigator):
        result = navigator.explore_ranked(F11, GOAL, S13, k=1)
        assert result.costs == [2.0]

    def test_count_deadline(self, navigator):
        assert navigator.count_deadline(F11, S13) == 3

    def test_count_goal(self, navigator):
        assert navigator.count_goal(F11, GOAL, F12) == 1

    def test_kwargs_build_config(self, navigator):
        result = navigator.explore_deadline(
            F11, S13, max_courses_per_term=1, avoid_courses={"29A"}
        )
        for path in result.paths():
            assert all(len(sel) <= 1 for sel in path.selections)
            assert "29A" not in path.courses_taken()

    def test_explicit_config_wins(self, navigator):
        config = ExplorationConfig(max_courses_per_term=1)
        result = navigator.explore_deadline(F11, S12, config=config)
        for path in result.paths():
            assert all(len(sel) <= 1 for sel in path.selections)


class TestRankingResolution:
    def test_named_rankings(self, navigator):
        assert isinstance(navigator.resolve_ranking("time"), TimeRanking)
        assert isinstance(navigator.resolve_ranking("workload"), WorkloadRanking)
        assert navigator.resolve_ranking("reliability").name == "reliability"

    def test_instance_passthrough(self, navigator):
        ranking = TimeRanking()
        assert navigator.resolve_ranking(ranking) is ranking

    def test_unknown_name_rejected(self, navigator):
        with pytest.raises(ExplorationError, match="unknown ranking"):
            navigator.resolve_ranking("karma")

    def test_ranked_with_named_ranking(self, navigator):
        result = navigator.explore_ranked(F11, GOAL, S13, k=1, ranking="workload")
        assert len(result.paths) == 1


class TestTranscriptChecks:
    def test_check_transcript(self, navigator):
        goal_paths = list(navigator.explore_goal(F11, GOAL, S13).paths())
        verdict, reason = navigator.check_transcript(goal_paths[0], GOAL, S13)
        assert verdict, reason

    def test_check_transcripts_report(self, navigator):
        goal_paths = list(navigator.explore_goal(F11, GOAL, S13).paths())
        report = navigator.check_transcripts(goal_paths, GOAL, S13)
        assert report.all_contained

    def test_properties(self, navigator, fig3_catalog):
        assert navigator.catalog is fig3_catalog
        assert navigator.offering_model is fig3_catalog.offering_model
