"""Tests for the exception hierarchy and the public API surface."""

import pytest

import repro
from repro.errors import (
    BudgetExceededError,
    CatalogError,
    CourseNavigatorError,
    DuplicateCourseError,
    ExplorationError,
    GoalError,
    InvalidConfigError,
    ParseError,
    PrerequisiteParseError,
    ScheduleParseError,
    UnknownCourseError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            CatalogError,
            ParseError,
            GoalError,
            ExplorationError,
            BudgetExceededError,
            InvalidConfigError,
            PrerequisiteParseError,
            ScheduleParseError,
            DuplicateCourseError,
        ],
    )
    def test_all_derive_from_base(self, exc_type):
        assert issubclass(exc_type, CourseNavigatorError)

    def test_unknown_course_is_keyerror(self):
        assert issubclass(UnknownCourseError, KeyError)
        err = UnknownCourseError("X", context="somewhere")
        assert "X" in str(err)
        assert "somewhere" in str(err)
        assert err.course_id == "X"

    def test_parse_error_is_valueerror(self):
        assert issubclass(ParseError, ValueError)
        err = ParseError("bad", text="abc", position=1)
        assert err.position == 1
        assert "abc" in str(err)

    def test_parse_error_without_position(self):
        err = ParseError("bad", text="abc")
        assert "abc" in str(err)

    def test_budget_error_fields(self):
        err = BudgetExceededError("nodes", 10, 11)
        assert err.kind == "nodes"
        assert err.limit == 10
        assert err.observed == 11
        assert "nodes" in str(err)

    def test_invalid_config_is_valueerror(self):
        assert issubclass(InvalidConfigError, ValueError)


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        assert repro.__version__

    def test_quickstart_surface(self):
        """The objects the README quickstart uses exist and cooperate."""
        from repro import CourseNavigator, Term
        from repro.data import brandeis_catalog, brandeis_major_goal

        nav = CourseNavigator(brandeis_catalog())
        result = nav.explore_ranked(
            start_term=Term(2013, "Fall"),
            goal=brandeis_major_goal(),
            end_term=Term(2015, "Fall"),
            k=2,
            ranking="time",
        )
        assert len(result.paths) == 2
        assert result.costs == sorted(result.costs)

    def test_subpackage_alls_resolve(self):
        import repro.analysis
        import repro.catalog
        import repro.core
        import repro.data
        import repro.graph
        import repro.parsing
        import repro.requirements
        import repro.system

        for module in (
            repro.analysis,
            repro.catalog,
            repro.core,
            repro.data,
            repro.graph,
            repro.parsing,
            repro.requirements,
            repro.system,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"
