"""Tests for the exploration report builder and the lint CLI command."""

import pytest

from repro.core import (
    ExplorationConfig,
    MaxWorkloadPerTerm,
    TimeRanking,
    generate_goal_driven,
    generate_ranked,
)
from repro.requirements import CourseSetGoal
from repro.system import build_goal_report
from repro.system.cli import main

from .conftest import F11, F12, S12, S13

GOAL = CourseSetGoal({"11A", "29A", "21A"})


class TestGoalReport:
    @pytest.fixture
    def report(self, fig3_catalog):
        result = generate_goal_driven(fig3_catalog, F11, GOAL, S13)
        ranked = generate_ranked(fig3_catalog, F11, GOAL, S13, 2, TimeRanking())
        return build_goal_report(
            fig3_catalog, GOAL, F11, S13, result, ranked=ranked
        )

    def test_header_facts(self, report):
        assert "complete {11A, 21A, 29A}" in report
        assert "Fall 2011" in report and "Spring 2013" in report
        assert "3 semesters" in report
        assert "max 3 courses/term" in report

    def test_headline_counts(self, report):
        assert "2 learning paths satisfy the goal" in report
        assert "subtrees pruned" in report

    def test_recommended_plans_from_ranking(self, report):
        assert "[1] time cost 2" in report
        assert "Fall '11" in report

    def test_profile_section(self, report):
        assert "lengths 2-3 semesters" in report
        assert "most common courses" in report

    def test_branching_section(self, report):
        assert "per-term branching" in report
        assert "statuses" in report

    def test_without_ranked_lists_generated_paths(self, fig3_catalog):
        result = generate_goal_driven(fig3_catalog, F11, GOAL, S13)
        report = build_goal_report(fig3_catalog, GOAL, F11, S13, result)
        assert "[1]" in report

    def test_no_paths_message(self, fig3_catalog):
        impossible = CourseSetGoal({"21A"})
        result = generate_goal_driven(fig3_catalog, F11, impossible, S12)
        report = build_goal_report(fig3_catalog, impossible, F11, S12, result)
        assert "no satisfying plans" in report

    def test_constraints_echoed(self, fig3_catalog):
        config = ExplorationConfig(
            constraints=(MaxWorkloadPerTerm(fig3_catalog, 25),),
            avoid_courses=frozenset({"29A"}),
        )
        result = generate_goal_driven(
            fig3_catalog, F11, CourseSetGoal({"11A"}), S13, config=config
        )
        report = build_goal_report(
            fig3_catalog, CourseSetGoal({"11A"}), F11, S13, result, config=config
        )
        assert "25 workload hours" in report
        assert "avoiding 29A" in report


class TestLintCommand:
    def test_clean_builtin_catalog(self, capsys):
        code = main(["lint"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 error(s)" in out

    def test_broken_catalog_fails(self, capsys, tmp_path):
        import json

        # A catalog with a never-offered course, written directly as JSON.
        data = {
            "courses": [
                {"course_id": "A"},
                {"course_id": "B"},
            ],
            "schedule": {"A": ["Fall 2011"]},
        }
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(data))
        code = main(["lint", "--catalog", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "never-offered" in out

    def test_errors_only_suppresses_infos(self, capsys, tmp_path):
        import json

        data = {
            "courses": [{"course_id": "A"}],
            "schedule": {"A": ["Fall 2011"]},
        }
        path = tmp_path / "cat.json"
        path.write_text(json.dumps(data))
        code = main(["lint", "--catalog", str(path), "--errors-only"])
        out = capsys.readouterr().out
        assert code == 0
        assert "unused-as-prerequisite" not in out
