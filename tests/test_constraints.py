"""Tests for generation-time selection constraints."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ExplorationConfig,
    ForbiddenCombination,
    MaxCoursesInTerm,
    MaxWorkloadPerTerm,
    RequiredCompanions,
    TermBlackout,
    generate_deadline_driven,
    generate_goal_driven,
)
from repro.core.expansion import Expander
from repro.data import GeneratorSettings, random_catalog
from repro.errors import InvalidConfigError
from repro.graph import EnrollmentStatus
from repro.requirements import CourseSetGoal
from repro.semester import Term

from .conftest import F11, F12, S12, S13


def _status(term, completed=frozenset(), options=frozenset()):
    return EnrollmentStatus(term, frozenset(completed), frozenset(options))


class TestMaxWorkloadPerTerm:
    def test_allows_under_cap(self, fig3_catalog):
        constraint = MaxWorkloadPerTerm(fig3_catalog, 25.0)
        status = _status(F11, options={"11A", "29A"})
        assert constraint.allows(frozenset({"11A", "29A"}), F11, status)  # 20h
        assert constraint.allows(frozenset(), F11, status)

    def test_rejects_over_cap(self, fig3_catalog):
        constraint = MaxWorkloadPerTerm(fig3_catalog, 15.0)
        status = _status(F11, options={"11A", "29A"})
        assert not constraint.allows(frozenset({"11A", "29A"}), F11, status)

    def test_negative_cap_rejected(self, fig3_catalog):
        with pytest.raises(InvalidConfigError):
            MaxWorkloadPerTerm(fig3_catalog, -1)

    def test_enforced_during_generation(self, fig3_catalog):
        config = ExplorationConfig(
            constraints=(MaxWorkloadPerTerm(fig3_catalog, 15.0),)
        )
        result = generate_deadline_driven(fig3_catalog, F11, S13, config=config)
        for path in result.paths():
            for _term, selection in path:
                assert len(selection) <= 1  # 10h each, cap 15h

    def test_describe(self, fig3_catalog):
        assert "20" in MaxWorkloadPerTerm(fig3_catalog, 20).describe()


class TestMaxCoursesInTerm:
    def test_only_applies_to_its_term(self):
        constraint = MaxCoursesInTerm(F11, 1)
        status = _status(F11, options={"A", "B"})
        assert not constraint.allows(frozenset({"A", "B"}), F11, status)
        assert constraint.allows(frozenset({"A", "B"}), S12, status)

    def test_generation(self, fig3_catalog):
        config = ExplorationConfig(constraints=(MaxCoursesInTerm(F11, 1),))
        result = generate_deadline_driven(fig3_catalog, F11, S13, config=config)
        for path in result.paths():
            for term, selection in path:
                if term == F11:
                    assert len(selection) <= 1

    def test_negative_rejected(self):
        with pytest.raises(InvalidConfigError):
            MaxCoursesInTerm(F11, -1)


class TestForbiddenCombination:
    def test_semantics(self):
        constraint = ForbiddenCombination({"A", "B"})
        status = _status(F11, options={"A", "B", "C"})
        assert not constraint.allows(frozenset({"A", "B"}), F11, status)
        assert not constraint.allows(frozenset({"A", "B", "C"}), F11, status)
        assert constraint.allows(frozenset({"A"}), F11, status)
        assert constraint.allows(frozenset({"A", "C"}), F11, status)

    def test_needs_two_courses(self):
        with pytest.raises(InvalidConfigError):
            ForbiddenCombination({"A"})

    def test_generation_never_pairs(self, fig3_catalog):
        config = ExplorationConfig(
            constraints=(ForbiddenCombination({"11A", "29A"}),)
        )
        result = generate_deadline_driven(fig3_catalog, F11, S13, config=config)
        for path in result.paths():
            for _term, selection in path:
                assert not {"11A", "29A"} <= selection


class TestRequiredCompanions:
    def test_companion_in_same_selection(self):
        constraint = RequiredCompanions("LAB", {"LEC"})
        status = _status(F11, options={"LAB", "LEC"})
        assert constraint.allows(frozenset({"LAB", "LEC"}), F11, status)
        assert not constraint.allows(frozenset({"LAB"}), F11, status)

    def test_companion_already_completed(self):
        constraint = RequiredCompanions("LAB", {"LEC"})
        status = _status(F11, completed={"LEC"}, options={"LAB"})
        assert constraint.allows(frozenset({"LAB"}), F11, status)

    def test_irrelevant_selection_allowed(self):
        constraint = RequiredCompanions("LAB", {"LEC"})
        status = _status(F11, options={"X"})
        assert constraint.allows(frozenset({"X"}), F11, status)

    def test_self_companion_rejected(self):
        with pytest.raises(InvalidConfigError):
            RequiredCompanions("LAB", {"LAB"})

    def test_empty_companions_rejected(self):
        with pytest.raises(InvalidConfigError):
            RequiredCompanions("LAB", set())


class TestTermBlackout:
    def test_blocks_only_its_terms(self):
        constraint = TermBlackout({S12})
        status = _status(S12, options={"A"})
        assert not constraint.allows(frozenset({"A"}), S12, status)
        assert constraint.allows(frozenset(), S12, status)
        assert constraint.allows(frozenset({"A"}), F11, status)

    def test_empty_terms_rejected(self):
        with pytest.raises(InvalidConfigError):
            TermBlackout(set())

    def test_blackout_semester_is_skipped(self, fig3_catalog):
        # Black out Fall '11; the student waits, and (Fig. 3 schedule)
        # can still take 11A/29A in Fall '12.
        config = ExplorationConfig(constraints=(TermBlackout({F11}),))
        result = generate_deadline_driven(fig3_catalog, F11, S13, config=config)
        paths = list(result.paths())
        assert paths
        for path in paths:
            assert path.selections[0] == frozenset()

    def test_auto_empty_move_opens_under_blackout(self, fig3_catalog):
        expander = Expander(
            fig3_catalog, S13, ExplorationConfig(constraints=(TermBlackout({F11}),))
        )
        root = expander.initial_status(F11)
        successors = dict(expander.successors(root))
        assert set(successors) == {frozenset()}


class TestConstraintsAreEquivalentToPostFiltering:
    """Per-transition constraints enforced during generation produce the
    same path set as generating everything and filtering afterwards."""

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 5000), cap=st.integers(1, 2))
    def test_max_courses_equivalence(self, seed, cap):
        catalog = random_catalog(
            seed, GeneratorSettings(n_courses=5, n_terms=3, offer_probability=0.6)
        )
        start = Term(2011, "Fall")
        end = start + 3
        target_term = start + 1
        constraint = MaxCoursesInTerm(target_term, cap)
        constrained = generate_deadline_driven(
            catalog, start, end, config=ExplorationConfig(constraints=(constraint,))
        )
        unconstrained = generate_deadline_driven(catalog, start, end)
        filtered = {
            path.selections
            for path in unconstrained.paths()
            if all(
                len(sel) <= cap
                for term, sel in path
                if term == target_term
            )
        }
        generated = {path.selections for path in constrained.paths()}
        # Post-filtering can leave paths whose *prefix* is shared with a
        # violating path; generation-time enforcement rebuilds dead-ends.
        # For a per-transition predicate the sets of *surviving complete
        # selection sequences* must coincide.
        assert generated == filtered

    def test_goal_driven_respects_constraints(self, fig3_catalog):
        goal = CourseSetGoal({"11A", "29A", "21A"})
        config = ExplorationConfig(
            constraints=(ForbiddenCombination({"11A", "29A"}),)
        )
        result = generate_goal_driven(fig3_catalog, F11, goal, S13, config=config)
        for path in result.paths():
            for _term, selection in path:
                assert not {"11A", "29A"} <= selection
        # The all-at-once route is gone; the staggered routes remain.
        assert result.path_count >= 1


class TestConfigWiring:
    def test_constraints_coerced_to_tuple(self, fig3_catalog):
        config = ExplorationConfig(
            constraints=[MaxCoursesInTerm(F11, 1)]
        )
        assert isinstance(config.constraints, tuple)

    def test_no_constraints_by_default(self):
        assert ExplorationConfig().constraints == ()
