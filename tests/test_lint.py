"""Tests for the catalog linter and earliest-completion analysis."""

import pytest

from repro.catalog import Catalog, Course, Schedule, earliest_completions, lint_catalog
from repro.catalog.prereq import FALSE, CourseReq, requires
from repro.semester import Term

F11, S12, F12, S13 = (
    Term(2011, "Fall"),
    Term(2012, "Spring"),
    Term(2012, "Fall"),
    Term(2013, "Spring"),
)


class TestEarliestCompletions:
    def test_fig3_earliest(self, fig3_catalog):
        done = earliest_completions(fig3_catalog)
        assert done["11A"] == S12   # taken Fall '11
        assert done["29A"] == S12
        assert done["21A"] == F12   # taken Spring '12 after 11A

    def test_window_restriction(self, fig3_catalog):
        done = earliest_completions(fig3_catalog, (S12, F12))
        # 11A is only offered F11/F12 -> inside this window first F12.
        assert done["11A"] == S13
        # 21A offered S12 but its prerequisite cannot be complete yet.
        assert "21A" not in done

    def test_empty_schedule(self):
        catalog = Catalog([Course("A")])
        assert earliest_completions(catalog) == {}

    def test_chain_over_sparse_schedule(self):
        # A -> B where B is only offered *before* A can complete.
        catalog = Catalog(
            [Course("A"), Course("B", prereq=CourseReq("A"))],
            schedule=Schedule({"A": {F12}, "B": {S12}}),
        )
        done = earliest_completions(catalog)
        assert done["A"] == S13
        assert "B" not in done


class TestLintCatalog:
    def test_clean_catalog(self, fig3_catalog):
        issues = lint_catalog(fig3_catalog)
        assert [i for i in issues if i.severity == "error"] == []

    def test_never_offered(self):
        catalog = Catalog(
            [Course("A"), Course("B")],
            schedule=Schedule({"A": {F11}}),
        )
        issues = lint_catalog(catalog)
        codes = {(i.code, i.course_id) for i in issues}
        assert ("never-offered", "B") in codes

    def test_unsatisfiable_prereq(self):
        catalog = Catalog(
            [Course("A"), Course("B", prereq=FALSE)],
            schedule=Schedule({"A": {F11}, "B": {S12}}),
        )
        issues = lint_catalog(catalog)
        assert any(
            i.code == "unsatisfiable-prereq" and i.course_id == "B" for i in issues
        )

    def test_unreachable_in_window(self):
        # B requires A, but B's only offering precedes A's completion.
        catalog = Catalog(
            [Course("A"), Course("B", prereq=CourseReq("A"))],
            schedule=Schedule({"A": {F12}, "B": {S12}}),
        )
        issues = lint_catalog(catalog)
        assert any(
            i.code == "unreachable-in-window" and i.course_id == "B" for i in issues
        )

    def test_deep_chain_outruns_window(self):
        catalog = Catalog(
            [
                Course("A"),
                Course("B", prereq=CourseReq("A")),
                Course("C", prereq=requires("B")),
            ],
            schedule=Schedule({"A": {F11}, "B": {S12}, "C": {S12}}),
        )
        issues = lint_catalog(catalog)
        assert any(
            i.code == "unreachable-in-window" and i.course_id == "C" for i in issues
        )

    def test_errors_sort_first(self):
        catalog = Catalog(
            [Course("A"), Course("B")],
            schedule=Schedule({"A": {F11}}),
        )
        issues = lint_catalog(catalog)
        severities = [i.severity for i in issues]
        assert severities == sorted(
            severities, key=lambda s: {"error": 0, "warning": 1, "info": 2}[s]
        )

    def test_unused_as_prerequisite_info(self):
        catalog = Catalog(
            [Course("A"), Course("B", prereq=CourseReq("A"))],
            schedule=Schedule({"A": {F11}, "B": {S12}}),
        )
        issues = lint_catalog(catalog)
        codes = {(i.code, i.course_id) for i in issues}
        assert ("unused-as-prerequisite", "B") in codes
        assert ("unused-as-prerequisite", "A") not in codes

    def test_tagged_courses_not_flagged_unused(self):
        catalog = Catalog(
            [Course("A", tags={"elective"})],
            schedule=Schedule({"A": {F11}}),
        )
        issues = lint_catalog(catalog)
        assert not any(i.code == "unused-as-prerequisite" for i in issues)

    def test_brandeis_catalog_is_clean(self):
        from repro.data import brandeis_catalog

        issues = lint_catalog(brandeis_catalog())
        assert [i for i in issues if i.severity == "error"] == []

    def test_lakeside_catalog_is_clean(self):
        from repro.data import lakeside_catalog

        issues = lint_catalog(lakeside_catalog())
        assert [i for i in issues if i.severity == "error"] == []

    def test_str_rendering(self):
        catalog = Catalog([Course("A")], schedule=Schedule())
        issue = lint_catalog(catalog)[0]
        assert "never-offered" in str(issue)
