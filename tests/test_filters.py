"""Tests for whole-path filters."""

import pytest

from repro.analysis import (
    AllFilters,
    AnyFilter,
    BalancedTerms,
    CompletesBy,
    MaxLength,
    MaxTotalWorkload,
    MinReliability,
    TakesCourse,
    filter_paths,
)
from repro.catalog import DeterministicOfferings
from repro.core import generate_deadline_driven

from .conftest import F11, F12, S12, S13


@pytest.fixture
def paths(fig3_catalog):
    return list(generate_deadline_driven(fig3_catalog, F11, S13).paths())


class TestMaxTotalWorkload:
    def test_filters_heavy_paths(self, fig3_catalog, paths):
        # Workloads: 30h (3 courses), 30h, 20h on the Fig. 3 paths.
        light = list(filter_paths(paths, MaxTotalWorkload(fig3_catalog, 25)))
        assert len(light) == 1
        assert len(light[0].courses_taken()) == 2

    def test_accepts_all_with_huge_cap(self, fig3_catalog, paths):
        assert len(list(filter_paths(paths, MaxTotalWorkload(fig3_catalog, 1000)))) == 3

    def test_describe(self, fig3_catalog):
        assert "25" in MaxTotalWorkload(fig3_catalog, 25).describe()


class TestMaxLength:
    def test_length_cap(self, paths):
        short = list(filter_paths(paths, MaxLength(2)))
        assert all(len(p) <= 2 for p in short)
        assert len(short) == 1

    def test_zero_cap(self, paths):
        assert list(filter_paths(paths, MaxLength(0))) == []


class TestCompletesBy:
    def test_completed_in_time(self, paths):
        check = CompletesBy("11A", S12)
        passing = [p for p in paths if check.accepts(p)]
        # Two paths take 11A in Fall '11 (complete by Spring '12); the
        # wait-a-semester path completes it only by Spring '13.
        assert len(passing) == 2

    def test_never_completed(self, paths):
        check = CompletesBy("99Z", S13)
        assert not any(check.accepts(p) for p in paths)

    def test_deadline_inclusive(self, paths):
        check = CompletesBy("21A", F12)
        assert any(check.accepts(p) for p in paths)


class TestTakesCourse:
    def test_detects_elected_course(self, paths):
        check = TakesCourse("21A")
        assert sum(1 for p in paths if check.accepts(p)) == 2

    def test_absent_course(self, paths):
        assert not any(TakesCourse("99Z").accepts(p) for p in paths)


class TestMinReliability:
    def test_certain_schedule_all_pass(self, fig3_catalog, paths):
        model = DeterministicOfferings(fig3_catalog.schedule)
        assert len(list(filter_paths(paths, MinReliability(model, 1.0)))) == 3

    def test_threshold_validation(self, fig3_catalog):
        model = DeterministicOfferings(fig3_catalog.schedule)
        with pytest.raises(ValueError):
            MinReliability(model, 1.5)

    def test_uncertain_paths_rejected(self, paths):
        class Coin:
            def probability(self, course_id, term):
                return 0.5

            def selection_probability(self, ids, term):
                p = 1.0
                for _ in ids:
                    p *= 0.5
                return p

        survivors = list(filter_paths(paths, MinReliability(Coin(), 0.2)))
        assert len(survivors) < len(paths)


class TestBalancedTerms:
    def test_balanced_path_passes(self, fig3_catalog, paths):
        # The {11A}->{21A}->{29A} path takes one course per term: perfectly flat.
        flat = [p for p in paths if all(len(s) == 1 for s in p.selections if s)]
        check = BalancedTerms(fig3_catalog, 0.0)
        for path in flat:
            if all(len(s) == 1 for s in path.selections):
                assert check.accepts(path)

    def test_lopsided_path_rejected(self, fig3_catalog, paths):
        # The {11A,29A}->{21A} path is 20h then 10h: 5h above its average.
        check = BalancedTerms(fig3_catalog, 2.0)
        lopsided = next(p for p in paths if len(p.selections[0]) == 2)
        assert not check.accepts(lopsided)

    def test_tolerance_validation(self, fig3_catalog):
        with pytest.raises(ValueError):
            BalancedTerms(fig3_catalog, -1)


class TestComposition:
    def test_all_filters(self, fig3_catalog, paths):
        combined = AllFilters([TakesCourse("21A"), MaxLength(2)])
        survivors = [p for p in paths if combined.accepts(p)]
        assert len(survivors) == 1

    def test_all_filters_empty_accepts_everything(self, paths):
        combined = AllFilters([])
        assert all(combined.accepts(p) for p in paths)

    def test_any_filter(self, paths):
        either = AnyFilter([TakesCourse("99Z"), MaxLength(2)])
        assert sum(1 for p in paths if either.accepts(p)) == 1

    def test_any_filter_needs_children(self):
        with pytest.raises(ValueError):
            AnyFilter([])

    def test_filter_paths_lazy(self, fig3_catalog):
        result = generate_deadline_driven(fig3_catalog, F11, S13)
        stream = filter_paths(result.paths(), MaxLength(2))
        first = next(stream)
        assert len(first) <= 2

    def test_describe_composition(self, paths):
        combined = AllFilters([MaxLength(2), TakesCourse("21A")])
        text = combined.describe()
        assert "2 semesters" in text and "21A" in text
