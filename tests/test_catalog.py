"""Tests for the Catalog container."""

import pytest

from repro.catalog import Catalog, Course, Schedule
from repro.catalog.prereq import CourseReq, Or, requires
from repro.errors import CatalogError, DuplicateCourseError, UnknownCourseError
from repro.semester import Term

F11, S12, F12 = Term(2011, "Fall"), Term(2012, "Spring"), Term(2012, "Fall")


@pytest.fixture
def fig3_catalog():
    """The paper's Fig. 3 example catalog."""
    return Catalog(
        [
            Course("11A"),
            Course("29A"),
            Course("21A", prereq=CourseReq("11A")),
        ],
        schedule=Schedule(
            {"11A": {F11, F12}, "29A": {F11, F12}, "21A": {S12}}
        ),
    )


class TestConstruction:
    def test_mapping_protocol(self, fig3_catalog):
        assert len(fig3_catalog) == 3
        assert "11A" in fig3_catalog
        assert fig3_catalog["21A"].prereq == CourseReq("11A")
        assert set(fig3_catalog) == {"11A", "29A", "21A"}
        assert set(fig3_catalog.keys()) == {"11A", "29A", "21A"}

    def test_unknown_lookup_raises(self, fig3_catalog):
        with pytest.raises(UnknownCourseError):
            fig3_catalog["99Z"]

    def test_unknown_error_is_keyerror(self, fig3_catalog):
        with pytest.raises(KeyError):
            fig3_catalog["99Z"]

    def test_duplicate_id_rejected(self):
        with pytest.raises(DuplicateCourseError):
            Catalog([Course("A"), Course("A")])

    def test_unknown_prereq_reference_rejected(self):
        with pytest.raises(UnknownCourseError, match="prerequisite"):
            Catalog([Course("A", prereq=CourseReq("MISSING"))])

    def test_unknown_schedule_entry_rejected(self):
        with pytest.raises(UnknownCourseError, match="schedule"):
            Catalog([Course("A")], schedule=Schedule({"B": {F11}}))

    def test_prerequisite_cycle_rejected(self):
        with pytest.raises(CatalogError, match="cycle"):
            Catalog(
                [
                    Course("A", prereq=CourseReq("B")),
                    Course("B", prereq=CourseReq("A")),
                ]
            )

    def test_non_strict_skips_validation(self):
        catalog = Catalog([Course("A", prereq=CourseReq("MISSING"))], strict=False)
        assert "A" in catalog

    def test_courses_with_tag(self):
        catalog = Catalog([Course("A", tags={"core"}), Course("B", tags={"elective"})])
        assert catalog.courses_with_tag("core") == {"A"}


class TestEligibleCourses:
    """The Y_i derivation — checked against the paper's Fig. 3 values."""

    def test_root_options(self, fig3_catalog):
        # Y1 = {11A, 29A}: offered Fall '11, no prerequisites.
        assert fig3_catalog.eligible_courses(frozenset(), F11) == {"11A", "29A"}

    def test_prereq_gates_option(self, fig3_catalog):
        # Node n3: X={11A, 29A} -> 21A eligible in Spring '12.
        assert fig3_catalog.eligible_courses({"11A", "29A"}, S12) == {"21A"}
        # Node n4: X={29A} -> nothing eligible in Spring '12.
        assert fig3_catalog.eligible_courses({"29A"}, S12) == frozenset()

    def test_completed_excluded(self, fig3_catalog):
        # Node n7: X={29A} at Fall '12 -> only 11A.
        assert fig3_catalog.eligible_courses({"29A"}, F12) == {"11A"}

    def test_exclude_list(self, fig3_catalog):
        assert fig3_catalog.eligible_courses(frozenset(), F11, exclude={"29A"}) == {"11A"}

    def test_schedule_override(self, fig3_catalog):
        override = Schedule({"29A": {S12}})
        assert fig3_catalog.eligible_courses(frozenset(), S12, schedule=override) == {"29A"}

    def test_or_prerequisite(self):
        catalog = Catalog(
            [
                Course("A"),
                Course("B"),
                Course("C", prereq=Or(CourseReq("A"), CourseReq("B"))),
            ],
            schedule=Schedule({"C": {F11}}),
        )
        assert catalog.eligible_courses({"B"}, F11) == {"C"}
        assert catalog.eligible_courses(frozenset(), F11) == frozenset()


class TestPrerequisiteStructure:
    @pytest.fixture
    def chain(self):
        return Catalog(
            [
                Course("A"),
                Course("B", prereq=CourseReq("A")),
                Course("C", prereq=requires("A", "B")),
                Course("D"),
            ]
        )

    def test_edges(self, chain):
        assert sorted(chain.prerequisite_edges()) == [("A", "B"), ("A", "C"), ("B", "C")]

    def test_no_cycle_found(self, chain):
        assert chain.find_prerequisite_cycle() is None

    def test_topological_order(self, chain):
        order = chain.topological_order()
        assert order.index("A") < order.index("B") < order.index("C")
        assert len(order) == 4

    def test_depth(self, chain):
        assert chain.prerequisite_depth("A") == 0
        assert chain.prerequisite_depth("B") == 1
        assert chain.prerequisite_depth("C") == 2
        assert chain.prerequisite_depth("D") == 0

    def test_depth_unknown_course(self, chain):
        with pytest.raises(UnknownCourseError):
            chain.prerequisite_depth("Z")

    def test_closure(self, chain):
        assert chain.prerequisite_closure("C") == {"A", "B"}
        assert chain.prerequisite_closure("A") == frozenset()

    def test_closure_unknown_course(self, chain):
        with pytest.raises(UnknownCourseError):
            chain.prerequisite_closure("Z")


class TestDerivationAndSerialization:
    def test_with_schedule(self, fig3_catalog):
        new_schedule = Schedule({"11A": {S12}})
        updated = fig3_catalog.with_schedule(new_schedule)
        assert updated.schedule.offerings("11A") == {S12}
        assert fig3_catalog.schedule.offerings("11A") == {F11, F12}

    def test_dict_roundtrip(self, fig3_catalog):
        rebuilt = Catalog.from_dict(fig3_catalog.to_dict())
        assert set(rebuilt) == set(fig3_catalog)
        assert rebuilt.schedule == fig3_catalog.schedule
        assert rebuilt["21A"].prereq == CourseReq("11A")
