"""Tests for plan-risk assessment and Monte Carlo survival."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import assess_plan, monte_carlo_survival
from repro.catalog import DeterministicOfferings
from repro.core import generate_deadline_driven
from repro.graph import EnrollmentStatus, LearningPath
from repro.semester import Term

from .conftest import F11, F12, S12, S13


class _FixedModel:
    """Per-(course, season) probabilities for testing."""

    def __init__(self, table, default=1.0):
        self._table = dict(table)
        self._default = default

    def probability(self, course_id, term):
        return self._table.get((course_id, term.season), self._default)

    def selection_probability(self, ids, term):
        result = 1.0
        for course_id in ids:
            result *= self.probability(course_id, term)
        return result


@pytest.fixture
def plan(fig3_catalog):
    paths = list(generate_deadline_driven(fig3_catalog, F11, S13).paths())
    # The 11A -> 21A -> 29A plan (three terms, three courses).
    return next(
        p for p in paths if len(p) == 3 and len(p.courses_taken()) == 3
    )


class TestAssessPlan:
    def test_certain_plan(self, fig3_catalog, plan):
        model = DeterministicOfferings(fig3_catalog.schedule)
        risk = assess_plan(plan, model)
        assert risk.reliability == 1.0
        assert risk.certain
        assert "certain" in risk.describe()

    def test_risky_plan(self, plan):
        model = _FixedModel({("29A", "Fall"): 0.4})
        risk = assess_plan(plan, model)
        assert risk.reliability == pytest.approx(0.4)
        assert not risk.certain
        weakest = risk.weakest(1)[0]
        assert weakest.course_id == "29A"
        assert weakest.probability == pytest.approx(0.4)
        assert "29A" in risk.describe()

    def test_steps_enumerate_every_course(self, plan):
        model = _FixedModel({})
        risk = assess_plan(plan, model)
        assert {(s.course_id) for s in risk.steps} == {"11A", "21A", "29A"}

    def test_empty_plan(self):
        path = LearningPath([EnrollmentStatus(F11, frozenset())], [])
        risk = assess_plan(path, _FixedModel({}))
        assert risk.reliability == 1.0
        assert risk.steps == ()


class TestMonteCarlo:
    def test_certain_plan_always_survives(self, fig3_catalog, plan):
        model = DeterministicOfferings(fig3_catalog.schedule)
        assert monte_carlo_survival(plan, model, trials=200, seed=1) == 1.0

    def test_impossible_plan_never_survives(self, plan):
        model = _FixedModel({("29A", "Fall"): 0.0})
        assert monte_carlo_survival(plan, model, trials=200, seed=1) == 0.0

    def test_estimates_analytic_reliability(self, plan):
        model = _FixedModel({("29A", "Fall"): 0.5, ("21A", "Spring"): 0.8})
        analytic = plan.reliability(model)
        empirical = monte_carlo_survival(plan, model, trials=20_000, seed=7)
        assert empirical == pytest.approx(analytic, abs=0.02)

    def test_deterministic_for_seed(self, plan):
        model = _FixedModel({("29A", "Fall"): 0.5})
        a = monte_carlo_survival(plan, model, trials=500, seed=3)
        b = monte_carlo_survival(plan, model, trials=500, seed=3)
        assert a == b

    def test_bad_trials(self, plan):
        with pytest.raises(ValueError):
            monte_carlo_survival(plan, _FixedModel({}), trials=0)


@settings(max_examples=20, deadline=None)
@given(
    p1=st.floats(min_value=0.1, max_value=1.0),
    p2=st.floats(min_value=0.1, max_value=1.0),
)
def test_monte_carlo_matches_product_property(p1, p2):
    """Survival estimates the product of step probabilities."""
    s0 = EnrollmentStatus(F11, frozenset())
    s1 = EnrollmentStatus(S12, frozenset({"A"}))
    s2 = EnrollmentStatus(F12, frozenset({"A", "B"}))
    path = LearningPath([s0, s1, s2], [frozenset({"A"}), frozenset({"B"})])

    class Model:
        def probability(self, course_id, term):
            return p1 if course_id == "A" else p2

        def selection_probability(self, ids, term):
            result = 1.0
            for cid in ids:
                result *= self.probability(cid, term)
            return result

    analytic = path.reliability(Model())
    empirical = monte_carlo_survival(path, Model(), trials=8000, seed=11)
    assert empirical == pytest.approx(analytic, abs=0.05)
