"""Tests for the trimester (summer-session) dataset — calendar generality
end-to-end."""

import pytest

from repro.core import (
    ExplorationConfig,
    TimeRanking,
    count_goal_paths,
    generate_goal_driven,
    generate_ranked,
)
from repro.data import LAKESIDE_CALENDAR, lakeside_catalog, lakeside_minor_goal
from repro.data.trimester import (
    CORE_MINOR_IDS,
    ELECTIVE_MINOR_IDS,
    LAKESIDE_FIRST_TERM,
    LAKESIDE_LAST_TERM,
)
from repro.semester import Term


@pytest.fixture(scope="module")
def catalog():
    return lakeside_catalog()


@pytest.fixture(scope="module")
def minor():
    return lakeside_minor_goal()


class TestDataset:
    def test_three_season_calendar(self):
        assert len(LAKESIDE_CALENDAR) == 3
        spring = Term(2020, "Spring", LAKESIDE_CALENDAR)
        assert (spring + 1).season == "Summer"
        assert (spring + 2).season == "Fall"
        assert (spring + 3) == Term(2021, "Spring", LAKESIDE_CALENDAR)

    def test_catalog_valid(self, catalog):
        assert len(catalog) == 10
        assert catalog.find_prerequisite_cycle() is None

    def test_summer_offerings_exist(self, catalog):
        summer = Term(2020, "Summer", LAKESIDE_CALENDAR)
        offered = catalog.schedule.offered_in(summer)
        assert "DATA 101" in offered
        assert "DATA 210" in offered
        assert "DATA 201" not in offered  # no summer section

    def test_minor_structure(self, minor):
        assert minor.total_required == 5
        assert len(CORE_MINOR_IDS) == 3
        assert len(ELECTIVE_MINOR_IDS) == 4

    def test_schedule_window(self, catalog):
        span = catalog.schedule.span()
        assert span == (LAKESIDE_FIRST_TERM, LAKESIDE_LAST_TERM)


class TestExplorationOnTrimesters:
    def test_goal_paths_exist(self, catalog, minor):
        start = LAKESIDE_FIRST_TERM
        end = start + 6  # two calendar years of trimesters
        count = count_goal_paths(catalog, start, minor, end)
        assert count > 0

    def test_summer_attendance_speeds_completion(self, catalog, minor):
        """With summers, the minor completes in 4 terms; skipping summers
        (blacking them out) needs more."""
        start = LAKESIDE_FIRST_TERM
        end = start + 8
        with_summers = generate_ranked(
            catalog, start, minor, end, 1, TimeRanking()
        )
        assert with_summers.costs, "minor unreachable with summers"

        summers = [
            term
            for term in [start + i for i in range(8)]
            if term.season == "Summer"
        ]
        from repro.core import TermBlackout

        config = ExplorationConfig(constraints=(TermBlackout(summers),))
        without_summers = generate_ranked(
            catalog, start, minor, end, 1, TimeRanking(), config=config
        )
        assert without_summers.costs, "minor unreachable without summers"
        assert with_summers.costs[0] < without_summers.costs[0]

    def test_goal_driven_paths_valid(self, catalog, minor):
        start = LAKESIDE_FIRST_TERM
        end = start + 5
        result = generate_goal_driven(
            catalog, start, minor, end,
            config=ExplorationConfig(max_courses_per_term=2),
        )
        for path in result.paths():
            completed = set()
            for term, selection in path:
                assert term.calendar == LAKESIDE_CALENDAR
                for course_id in selection:
                    assert catalog.schedule.is_offered(course_id, term)
                    assert catalog[course_id].prereq.evaluate(completed)
                completed |= selection
            assert minor.is_satisfied(completed)

    def test_pruning_sound_on_trimesters(self, catalog, minor):
        start = LAKESIDE_FIRST_TERM
        end = start + 5
        config = ExplorationConfig(max_courses_per_term=2)
        pruned = generate_goal_driven(catalog, start, minor, end, config=config)
        unpruned = generate_goal_driven(
            catalog, start, minor, end, config=config, pruners=[]
        )
        assert {p.selections for p in pruned.paths()} == {
            p.selections for p in unpruned.paths()
        }

    def test_fastest_plan_uses_a_summer(self, catalog, minor):
        start = LAKESIDE_FIRST_TERM
        end = start + 8
        result = generate_ranked(catalog, start, minor, end, 1, TimeRanking())
        best = result.paths[0]
        seasons_used = {
            term.season for term, selection in best if selection
        }
        assert "Summer" in seasons_used
