"""Tests for the prerequisite expression AST."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.catalog.prereq import (
    FALSE,
    TRUE,
    And,
    CourseReq,
    KOf,
    Or,
    all_of,
    any_of,
    from_dict,
    requires,
)


class TestConstants:
    def test_true_evaluates(self):
        assert TRUE.evaluate(frozenset())
        assert TRUE.evaluate({"A"})

    def test_false_evaluates(self):
        assert not FALSE.evaluate(frozenset())
        assert not FALSE.evaluate({"A"})

    def test_true_dnf_and_min(self):
        assert TRUE.to_dnf() == frozenset({frozenset()})
        assert TRUE.min_courses_to_satisfy(frozenset()) == 0
        assert TRUE.is_satisfiable()

    def test_false_dnf_and_min(self):
        assert FALSE.to_dnf() == frozenset()
        assert FALSE.min_courses_to_satisfy(frozenset()) == math.inf
        assert not FALSE.is_satisfiable()

    def test_no_courses(self):
        assert TRUE.courses() == frozenset()
        assert FALSE.courses() == frozenset()


class TestCourseReq:
    def test_evaluate(self):
        req = CourseReq("11A")
        assert req.evaluate({"11A", "29A"})
        assert not req.evaluate({"29A"})

    def test_min_courses(self):
        req = CourseReq("11A")
        assert req.min_courses_to_satisfy(frozenset()) == 1
        assert req.min_courses_to_satisfy({"11A"}) == 0

    def test_strips_whitespace(self):
        assert CourseReq(" 11A ").course_id == "11A"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CourseReq("  ")

    def test_immutable(self):
        req = CourseReq("11A")
        with pytest.raises(AttributeError):
            req.course_id = "29A"

    def test_equality_hash(self):
        assert CourseReq("11A") == CourseReq("11A")
        assert hash(CourseReq("11A")) == hash(CourseReq("11A"))
        assert CourseReq("11A") != CourseReq("29A")


class TestAndOr:
    def test_and_semantics(self):
        expr = And(CourseReq("A"), CourseReq("B"))
        assert expr.evaluate({"A", "B"})
        assert not expr.evaluate({"A"})

    def test_or_semantics(self):
        expr = Or(CourseReq("A"), CourseReq("B"))
        assert expr.evaluate({"A"})
        assert expr.evaluate({"B"})
        assert not expr.evaluate({"C"})

    def test_nested_flattening(self):
        expr = And(And(CourseReq("A"), CourseReq("B")), CourseReq("C"))
        assert expr.children == (CourseReq("A"), CourseReq("B"), CourseReq("C"))

    def test_duplicate_children_removed(self):
        expr = Or(CourseReq("A"), CourseReq("A"))
        assert expr.children == (CourseReq("A"),)

    def test_operators(self):
        expr = CourseReq("A") & CourseReq("B") | CourseReq("C")
        assert expr.evaluate({"C"})
        assert expr.evaluate({"A", "B"})
        assert not expr.evaluate({"A"})

    def test_paper_shape_dnf(self):
        # Q = (A ∧ B) ∨ (C ∧ D)
        expr = Or(And(CourseReq("A"), CourseReq("B")), And(CourseReq("C"), CourseReq("D")))
        assert expr.to_dnf() == frozenset(
            {frozenset({"A", "B"}), frozenset({"C", "D"})}
        )

    def test_dnf_absorption(self):
        # A ∨ (A ∧ B) simplifies to A
        expr = Or(CourseReq("A"), And(CourseReq("A"), CourseReq("B")))
        assert expr.to_dnf() == frozenset({frozenset({"A"})})

    def test_and_distributes_over_or(self):
        # A ∧ (B ∨ C) -> {A,B}, {A,C}
        expr = And(CourseReq("A"), Or(CourseReq("B"), CourseReq("C")))
        assert expr.to_dnf() == frozenset(
            {frozenset({"A", "B"}), frozenset({"A", "C"})}
        )

    def test_min_courses_picks_cheapest_disjunct(self):
        expr = Or(And(CourseReq("A"), CourseReq("B"), CourseReq("C")), CourseReq("D"))
        assert expr.min_courses_to_satisfy(frozenset()) == 1
        assert expr.min_courses_to_satisfy({"A", "B"}) == 1  # C or D

    def test_and_with_false_is_unsatisfiable(self):
        expr = And(CourseReq("A"), FALSE)
        assert expr.to_dnf() == frozenset()
        assert not expr.evaluate({"A"})

    def test_courses_union(self):
        expr = And(CourseReq("A"), Or(CourseReq("B"), CourseReq("C")))
        assert expr.courses() == {"A", "B", "C"}

    def test_equality_ignores_order(self):
        assert And(CourseReq("A"), CourseReq("B")) == And(CourseReq("B"), CourseReq("A"))
        assert Or(CourseReq("A"), CourseReq("B")) == Or(CourseReq("B"), CourseReq("A"))

    def test_rejects_non_expr_children(self):
        with pytest.raises(TypeError):
            And(CourseReq("A"), "B")

    def test_satisfying_sets_sorted_smallest_first(self):
        expr = Or(And(CourseReq("A"), CourseReq("B")), CourseReq("C"))
        sets = expr.satisfying_sets()
        assert sets[0] == frozenset({"C"})


class TestKOf:
    def test_semantics(self):
        expr = KOf(2, [CourseReq("A"), CourseReq("B"), CourseReq("C")])
        assert expr.evaluate({"A", "B"})
        assert expr.evaluate({"A", "C"})
        assert not expr.evaluate({"A"})

    def test_zero_of_is_true(self):
        assert KOf(0, [CourseReq("A")]).evaluate(frozenset())
        assert KOf(0, []).to_dnf() == TRUE.to_dnf()

    def test_more_than_children_is_false(self):
        expr = KOf(3, [CourseReq("A"), CourseReq("B")])
        assert not expr.evaluate({"A", "B"})
        assert expr.to_dnf() == frozenset()

    def test_dnf_expansion(self):
        expr = KOf(2, [CourseReq("A"), CourseReq("B"), CourseReq("C")])
        assert expr.to_dnf() == frozenset(
            {frozenset({"A", "B"}), frozenset({"A", "C"}), frozenset({"B", "C"})}
        )

    def test_min_courses(self):
        expr = KOf(2, [CourseReq("A"), CourseReq("B"), CourseReq("C")])
        assert expr.min_courses_to_satisfy(frozenset()) == 2
        assert expr.min_courses_to_satisfy({"A"}) == 1

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            KOf(-1, [CourseReq("A")])


class TestFactories:
    def test_requires_single(self):
        assert requires("11A") == CourseReq("11A")

    def test_requires_many(self):
        assert requires("A", "B") == And(CourseReq("A"), CourseReq("B"))

    def test_requires_none_is_true(self):
        assert requires() == TRUE

    def test_all_of_drops_true(self):
        assert all_of([TRUE, CourseReq("A")]) == CourseReq("A")

    def test_all_of_collapses_false(self):
        assert all_of([CourseReq("A"), FALSE]) == FALSE

    def test_all_of_empty_is_true(self):
        assert all_of([]) == TRUE

    def test_any_of_drops_false(self):
        assert any_of([FALSE, CourseReq("A")]) == CourseReq("A")

    def test_any_of_collapses_true(self):
        assert any_of([CourseReq("A"), TRUE]) == TRUE

    def test_any_of_empty_is_false(self):
        assert any_of([]) == FALSE


class TestSerialization:
    @pytest.mark.parametrize(
        "expr",
        [
            TRUE,
            FALSE,
            CourseReq("COSI 11a"),
            And(CourseReq("A"), CourseReq("B")),
            Or(And(CourseReq("A"), CourseReq("B")), CourseReq("C")),
            KOf(2, [CourseReq("A"), CourseReq("B"), CourseReq("C")]),
            And(CourseReq("A"), KOf(1, [CourseReq("B"), CourseReq("C")])),
        ],
    )
    def test_dict_roundtrip(self, expr):
        assert from_dict(expr.to_dict()) == expr

    def test_from_dict_unknown_op(self):
        with pytest.raises(ValueError, match="unknown prerequisite op"):
            from_dict({"op": "xor"})

    def test_to_string_shapes(self):
        assert CourseReq("COSI 11a").to_string() == "COSI 11a"
        assert TRUE.to_string() == "NONE"
        expr = And(CourseReq("A"), Or(CourseReq("B"), CourseReq("C")))
        assert expr.to_string() == "A AND (B OR C)"


# -- property tests ----------------------------------------------------------

_COURSES = ["A", "B", "C", "D", "E"]


def _exprs(depth=3):
    leaves = st.sampled_from(
        [TRUE, FALSE] + [CourseReq(c) for c in _COURSES]
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.lists(children, min_size=1, max_size=3).map(lambda cs: And(*cs)),
            st.lists(children, min_size=1, max_size=3).map(lambda cs: Or(*cs)),
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.lists(children, min_size=1, max_size=3),
            ).map(lambda kv: KOf(kv[0], kv[1])),
        ),
        max_leaves=8,
    )


@given(_exprs(), st.sets(st.sampled_from(_COURSES)))
def test_dnf_agrees_with_evaluate(expr, completed):
    """The DNF is semantically equivalent to the original expression."""
    dnf = expr.to_dnf()
    dnf_value = any(conj <= completed for conj in dnf)
    assert dnf_value == expr.evaluate(frozenset(completed))


@given(_exprs(), st.sets(st.sampled_from(_COURSES)))
def test_min_courses_is_exact(expr, completed):
    """min_courses_to_satisfy matches brute force over all course subsets."""
    import itertools

    completed = frozenset(completed)
    claimed = expr.min_courses_to_satisfy(completed)
    universe = sorted(set(_COURSES) - completed)
    best = math.inf
    for size in range(len(universe) + 1):
        if size >= best:
            break
        for extra in itertools.combinations(universe, size):
            if expr.evaluate(completed | set(extra)):
                best = size
                break
    assert claimed == best


@given(_exprs())
def test_dnf_has_no_absorbed_supersets(expr):
    dnf = expr.to_dnf()
    for conj in dnf:
        assert not any(other < conj for other in dnf)
