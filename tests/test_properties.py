"""Cross-algorithm property tests over random catalogs.

These verify the paper's lemmas and the reproduction's internal
equivalences on hundreds of randomly generated catalogs:

* **Lemma 1 (pruning soundness)** — the goal-driven algorithm with pruning
  outputs exactly the same path set as without pruning.
* **Lemma 2 (top-k correctness)** — best-first generation returns the
  k cheapest goal paths, matching a brute-force sort of the full set.
* **Counting equivalence** — the tree, merged-DAG, and frontier-DP
  algorithms agree on every path count.
* **Output validity** — every generated path respects schedules,
  prerequisites, and the per-term cap.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    ExplorationConfig,
    TimeRanking,
    WorkloadRanking,
    build_deadline_dag,
    build_goal_dag,
    frontier_count_deadline_paths,
    frontier_count_goal_paths,
    generate_deadline_driven,
    generate_goal_driven,
    generate_ranked,
)
from repro.data import GeneratorSettings, random_catalog, random_course_set_goal
from repro.semester import Term

START = Term(2011, "Fall")

_SETTINGS = st.builds(
    GeneratorSettings,
    n_courses=st.integers(min_value=2, max_value=7),
    n_terms=st.just(4),
    prereq_probability=st.sampled_from([0.0, 0.4, 0.8]),
    or_probability=st.sampled_from([0.0, 0.5]),
    offer_probability=st.sampled_from([0.3, 0.6]),
    layers=st.integers(min_value=1, max_value=3),
)

_CONFIGS = st.builds(
    ExplorationConfig,
    max_courses_per_term=st.integers(min_value=1, max_value=3),
    empty_selection=st.sampled_from(["auto", "always", "never"]),
    enforce_min_selection=st.booleans(),
)


def _selection_set(result):
    return {path.selections for path in result.paths()}


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000), settings_=_SETTINGS, config=_CONFIGS, horizon=st.integers(1, 4))
def test_pruning_is_sound(seed, settings_, config, horizon):
    """Lemma 1: pruned and unpruned goal-driven runs output identical paths."""
    catalog = random_catalog(seed, settings_)
    goal = random_course_set_goal(catalog, seed + 1, size=2)
    end = START + horizon
    pruned = generate_goal_driven(catalog, START, goal, end, config=config)
    unpruned = generate_goal_driven(catalog, START, goal, end, config=config, pruners=[])
    assert _selection_set(pruned) == _selection_set(unpruned)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000), settings_=_SETTINGS, config=_CONFIGS, horizon=st.integers(1, 4))
def test_tree_dag_frontier_deadline_counts_agree(seed, settings_, config, horizon):
    catalog = random_catalog(seed, settings_)
    end = START + horizon
    tree = generate_deadline_driven(catalog, START, end, config=config)
    dag = build_deadline_dag(catalog, START, end, config=config)
    frontier = frontier_count_deadline_paths(catalog, START, end, config=config)
    assert tree.path_count == dag.path_count == frontier.path_count


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10_000), settings_=_SETTINGS, config=_CONFIGS, horizon=st.integers(1, 4))
def test_tree_dag_frontier_goal_counts_agree(seed, settings_, config, horizon):
    catalog = random_catalog(seed, settings_)
    goal = random_course_set_goal(catalog, seed + 1, size=2)
    end = START + horizon
    tree = generate_goal_driven(catalog, START, goal, end, config=config)
    dag = build_goal_dag(catalog, START, goal, end, config=config)
    frontier = frontier_count_goal_paths(catalog, START, goal, end, config=config)
    assert tree.path_count == dag.path_count == frontier.path_count


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), settings_=_SETTINGS, k=st.integers(1, 6))
def test_topk_matches_bruteforce(seed, settings_, k):
    """Lemma 2: the best-first prefix equals the sorted full enumeration."""
    catalog = random_catalog(seed, settings_)
    goal = random_course_set_goal(catalog, seed + 1, size=2)
    end = START + 3
    config = ExplorationConfig(max_courses_per_term=2)

    everything = generate_goal_driven(catalog, START, goal, end, config=config)
    for ranking in (TimeRanking(), WorkloadRanking(catalog)):
        brute = sorted(ranking.path_cost(p) for p in everything.paths())
        result = generate_ranked(catalog, START, goal, end, k, ranking, config=config)
        assert result.costs == brute[: len(result.costs)]
        assert len(result.costs) == min(k, len(brute))


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), settings_=_SETTINGS, config=_CONFIGS)
def test_generated_paths_are_valid(seed, settings_, config):
    """Every output path respects schedule, prerequisites, and the cap."""
    catalog = random_catalog(seed, settings_)
    end = START + 3
    result = generate_deadline_driven(catalog, START, end, config=config)
    for path in result.paths():
        completed = set()
        for term, selection in path:
            assert len(selection) <= config.max_courses_per_term
            for course_id in selection:
                assert catalog.schedule.is_offered(course_id, term)
                assert catalog[course_id].prereq.evaluate(completed)
                assert course_id not in completed
            completed |= selection


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), settings_=_SETTINGS)
def test_goal_output_is_subset_of_deadline_prefixes(seed, settings_):
    """Goal paths are deadline paths truncated at first goal satisfaction."""
    catalog = random_catalog(seed, settings_)
    goal = random_course_set_goal(catalog, seed + 1, size=2)
    end = START + 3
    config = ExplorationConfig(max_courses_per_term=2)
    goal_paths = generate_goal_driven(catalog, START, goal, end, config=config)
    deadline_paths = list(generate_deadline_driven(catalog, START, end, config=config).paths())
    deadline_prefixes = {
        path.selections[:i]
        for path in deadline_paths
        for i in range(len(path) + 1)
    }
    for path in goal_paths.paths():
        assert goal.is_satisfied(path.end.completed)
        assert path.selections in deadline_prefixes
