"""Tests for the observability subsystem (repro.obs).

Covers the tracer (nesting, sinks, error annotation), the metrics
registry (instruments, Prometheus exposition, JSON snapshot round-trip),
the profiling helpers (PhaseBreakdown, Stopwatch, peak-memory capture),
the Observability bundle, and the engine integration: a traced run emits
the expected span forest and the disabled path changes nothing about the
results.
"""

import io
import json
import math

import pytest

from repro.core import generate_goal_driven, generate_ranked
from repro.core.frontier import frontier_count_goal_paths
from repro.core.ranking import TimeRanking
from repro.data import brandeis_catalog, brandeis_major_goal
from repro.obs import (
    DEFAULT_DURATION_BUCKETS,
    NULL_OBSERVABILITY,
    NULL_TRACER,
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    Observability,
    PhaseBreakdown,
    Stopwatch,
    Tracer,
    capture_peak_memory,
    current_observability,
)
from repro.semester import Term
from repro.system.navigator import CourseNavigator


# ---------------------------------------------------------------------------
# tracing


class TestTracer:
    def test_span_records_to_sink(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("work", size=3):
            pass
        assert len(sink.records) == 1
        record = sink.records[0]
        assert record["name"] == "work"
        assert record["parent_id"] is None
        assert record["depth"] == 0
        assert record["attrs"] == {"size": 3}
        assert record["end"] >= record["start"] >= 0.0
        assert record["duration"] == pytest.approx(record["end"] - record["start"])

    def test_nesting_assigns_parents_and_depths(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        assert inner.parent_id == middle.span_id
        assert middle.parent_id == outer.span_id
        assert outer.parent_id is None
        assert (outer.depth, middle.depth, inner.depth) == (0, 1, 2)
        # Records are emitted on exit: children before parents.
        assert [r["name"] for r in sink.records] == ["inner", "middle", "outer"]

    def test_siblings_share_parent(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("parent") as parent:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b = sink.spans("a")[0], sink.spans("b")[0]
        assert a["parent_id"] == b["parent_id"] == parent.span_id
        assert a["depth"] == b["depth"] == 1

    def test_current_span_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current_span is None
        with tracer.span("s") as span:
            assert tracer.current_span is span
        assert tracer.current_span is None

    def test_exception_annotated_and_reraised(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=[sink])
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        assert sink.records[0]["attrs"]["error"] == "ValueError"

    def test_annotate_chains(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("s") as span:
            span.annotate(k=1).annotate(j="x")
        assert sink.records[0]["attrs"] == {"k": 1, "j": "x"}

    def test_timestamps_are_monotonic_per_tracer(self):
        sink = InMemorySink()
        tracer = Tracer(sinks=[sink])
        for _ in range(3):
            with tracer.span("tick"):
                pass
        starts = [r["start"] for r in sink.records]
        assert starts == sorted(starts)

    def test_jsonl_sink_round_trips(self):
        buffer = io.StringIO()
        tracer = Tracer(sinks=[JsonlSink(buffer)])
        with tracer.span("outer"):
            with tracer.span("inner", n=1):
                pass
        tracer.close()
        lines = buffer.getvalue().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[0]["parent_id"] == records[1]["span_id"]

    def test_jsonl_sink_owns_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        tracer = Tracer(sinks=[sink])
        with tracer.span("s"):
            pass
        tracer.close()
        assert json.loads(path.read_text())["name"] == "s"

    def test_null_tracer_is_free_and_shared(self):
        span1 = NULL_TRACER.span("anything", key="value")
        span2 = NULL_TRACER.span("other")
        assert span1 is span2  # one shared no-op, zero allocations
        with span1:
            pass
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.current_span is None
        with pytest.raises(ValueError):
            NULL_TRACER.add_sink(InMemorySink())


class TestStopwatch:
    def test_accumulates_across_intervals(self):
        watch = Stopwatch()
        watch.start()
        first = watch.stop()
        watch.start()
        total = watch.stop()
        assert total >= first >= 0.0
        assert watch.elapsed == total

    def test_context_manager(self):
        watch = Stopwatch()
        with watch:
            assert watch.running
        assert not watch.running
        assert watch.elapsed >= 0.0

    def test_read_while_running(self):
        watch = Stopwatch().start()
        assert watch.read() >= 0.0
        assert watch.running
        watch.stop()
        assert watch.read() == watch.elapsed


# ---------------------------------------------------------------------------
# metrics


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_things_total", "things")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        # get-or-create returns the same instrument
        assert registry.counter("repro_things_total", "things") is counter

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c_total", "c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g", "g")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec(0.5)
        assert gauge.value == 12.0

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.5, 1.5, 10.0):
            histogram.observe(value)
        cumulative = dict(histogram.cumulative_buckets())
        assert cumulative[1.0] == 1
        assert cumulative[2.0] == 3
        assert cumulative[5.0] == 3
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(13.5)

    def test_histogram_upper_bounds_inclusive(self):
        histogram = MetricsRegistry().histogram("h", "h", buckets=(1.0, 2.0))
        histogram.observe(1.0)  # le="1.0" must include it
        assert dict(histogram.cumulative_buckets())[1.0] == 1

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("runs_total", "runs", labels={"kind": "a"})
        b = registry.counter("runs_total", "runs", labels={"kind": "b"})
        assert a is not b
        a.inc()
        assert a.value == 1 and b.value == 0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", "x")
        with pytest.raises(ValueError):
            registry.gauge("x", "x")

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name!", "nope")

    def test_prometheus_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_runs_total", "runs", labels={"kind": "goal"}).inc(2)
        registry.gauge("repro_depth", "depth").set(3)
        registry.histogram("repro_secs", "secs", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.render_prometheus()
        assert "# HELP repro_runs_total runs" in text
        assert "# TYPE repro_runs_total counter" in text
        assert 'repro_runs_total{kind="goal"} 2' in text
        assert "repro_depth 3" in text
        assert 'repro_secs_bucket{le="0.1"} 1' in text
        assert 'repro_secs_bucket{le="+Inf"} 1' in text
        assert "repro_secs_count 1" in text
        # families are grouped: HELP appears once per family
        assert text.count("# HELP repro_runs_total") == 1

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "a").inc(7)
        registry.histogram("b_seconds", "b").observe(0.003)
        parsed = json.loads(json.dumps(registry.snapshot()))
        assert parsed == registry.snapshot()
        by_name = {m["name"]: m for m in parsed["metrics"]}
        assert by_name["a_total"]["value"] == 7
        assert by_name["b_seconds"]["count"] == 1

    def test_default_buckets_strictly_ascending(self):
        assert list(DEFAULT_DURATION_BUCKETS) == sorted(DEFAULT_DURATION_BUCKETS)
        assert len(set(DEFAULT_DURATION_BUCKETS)) == len(DEFAULT_DURATION_BUCKETS)


# ---------------------------------------------------------------------------
# profiling


class TestPhaseBreakdown:
    def test_add_and_query(self):
        phases = PhaseBreakdown()
        assert not phases
        phases.add("expand", 0.5)
        phases.add("expand", 0.25)
        phases.add("prune", 2.0)
        assert phases
        assert phases.seconds("expand") == pytest.approx(0.75)
        assert phases.count("expand") == 2
        assert phases.phases == ["prune", "expand"]  # most expensive first

    def test_merge(self):
        a = PhaseBreakdown()
        a.add("expand", 1.0)
        b = PhaseBreakdown()
        b.add("expand", 0.5, count=3)
        b.add("flow", 0.1)
        a.merge(b)
        assert a.seconds("expand") == pytest.approx(1.5)
        assert a.count("expand") == 4
        assert a.seconds("flow") == pytest.approx(0.1)

    def test_as_dict_round_trips_through_json(self):
        phases = PhaseBreakdown()
        phases.add("expand", 0.5)
        phases.add("flow", 0.125, count=4)
        parsed = json.loads(json.dumps(phases.as_dict()))
        assert parsed == {
            "expand": {"seconds": 0.5, "count": 1},
            "flow": {"seconds": 0.125, "count": 4},
        }

    def test_render(self):
        phases = PhaseBreakdown()
        assert "no phases" in phases.render()
        phases.add("expand", 0.5)
        rendered = phases.render(indent="  ")
        assert "expand" in rendered
        assert rendered.startswith("  ")


class TestCapturePeakMemory:
    def test_measures_allocation(self):
        with capture_peak_memory() as profile:
            blob = [bytearray(256 * 1024) for _ in range(4)]
        assert profile.peak_bytes > 512 * 1024
        assert profile.peak_kib == pytest.approx(profile.peak_bytes / 1024.0)
        del blob

    def test_nested_windows_each_see_own_peak(self):
        with capture_peak_memory() as outer:
            first = bytearray(1024 * 1024)
            with capture_peak_memory() as inner:
                pass  # nothing allocated inside
            del first
        assert inner.peak_bytes < outer.peak_bytes


# ---------------------------------------------------------------------------
# the bundle


class TestObservability:
    def test_disabled_bundle_is_noop(self):
        obs = Observability()
        assert not obs.enabled
        first = obs.phase("expand")
        second = obs.run("anything")
        assert first is second  # the one shared null span
        with first:
            pass
        assert not obs.phases
        assert NULL_OBSERVABILITY.enabled is False

    def test_phase_times_accumulate(self):
        obs = Observability(metrics=MetricsRegistry())
        assert obs.enabled
        with obs.phase("expand"):
            pass
        with obs.phase("expand"):
            pass
        assert obs.phases.count("expand") == 2
        assert obs.phases.seconds("expand") >= 0.0
        histogram = obs.metrics.get(
            "repro_phase_duration_seconds", labels={"phase": "expand"}
        )
        assert histogram.count == 2

    def test_run_scope_publishes_contextvar(self):
        obs = Observability(metrics=MetricsRegistry())
        assert current_observability() is None
        with obs.run("test"):
            assert current_observability() is obs
        assert current_observability() is None

    def test_disabled_bundle_does_not_publish(self):
        with Observability().run("test"):
            assert current_observability() is None

    def test_capture_memory_records_gauge(self):
        obs = Observability(metrics=MetricsRegistry(), capture_memory=True)
        with obs.run("probe"):
            blob = bytearray(512 * 1024)
            del blob
        assert obs.last_memory is not None
        gauge = obs.metrics.get(
            "repro_run_peak_memory_bytes", labels={"run": "probe"}
        )
        assert gauge.value == obs.last_memory.peak_bytes
        assert gauge.value > 0

    def test_span_metrics_bridge_observes_durations(self):
        from repro.obs import SPAN_METRIC_NAME

        registry = MetricsRegistry()
        tracer = Tracer(sinks=[InMemorySink()])
        Observability(tracer=tracer, metrics=registry)
        with tracer.span("expand"):
            pass
        with tracer.span("expand"):
            pass
        with tracer.span("flow"):
            pass
        expand = registry.get(SPAN_METRIC_NAME, labels={"name": "expand"})
        flow = registry.get(SPAN_METRIC_NAME, labels={"name": "flow"})
        assert expand.count == 2
        assert flow.count == 1
        assert expand.sum >= 0.0

    def test_span_metrics_bridge_attached_once(self):
        from repro.obs import SpanMetricsSink

        registry = MetricsRegistry()
        tracer = Tracer(sinks=[InMemorySink()])
        Observability(tracer=tracer, metrics=registry)
        Observability(tracer=tracer, metrics=registry)  # same pair again
        bridges = [
            sink
            for sink in tracer._sinks
            if isinstance(sink, SpanMetricsSink) and sink.registry is registry
        ]
        assert len(bridges) == 1

    def test_span_metrics_bridge_needs_both_backends(self):
        from repro.obs import SpanMetricsSink

        tracer = Tracer(sinks=[InMemorySink()])
        Observability(tracer=tracer)  # no registry: nothing to bridge into
        assert not any(isinstance(s, SpanMetricsSink) for s in tracer._sinks)

    def test_engine_run_feeds_span_histogram(self):
        from repro.obs import SPAN_METRIC_NAME

        registry = MetricsRegistry()
        obs = Observability(tracer=Tracer(sinks=[InMemorySink()]), metrics=registry)
        generate_goal_driven(
            brandeis_catalog(), START, brandeis_major_goal(), END, obs=obs
        )
        run_histogram = registry.get(
            SPAN_METRIC_NAME, labels={"name": "run:goal_driven"}
        )
        assert run_histogram.count == 1
        assert registry.get(SPAN_METRIC_NAME, labels={"name": "prune"}).count > 0

    def test_record_run_stats_publishes_counters(self):
        from repro.core import ExplorationStats

        registry = MetricsRegistry()
        obs = Observability(metrics=registry)
        stats = ExplorationStats()
        stats.record_node()
        stats.record_node()
        stats.record_edge()
        stats.record_terminal("goal")
        stats.record_prune("time", 3)
        stats.elapsed_seconds = 0.5
        obs.record_run_stats("goal_driven", stats)
        text = registry.render_prometheus()
        assert "repro_nodes_created_total 2" in text
        assert "repro_edges_created_total 1" in text
        assert 'repro_terminals_total{kind="goal"} 1' in text
        assert 'repro_prune_events_total{strategy="time"} 3' in text
        assert 'repro_runs_total{kind="goal_driven"} 1' in text


# ---------------------------------------------------------------------------
# engine integration


@pytest.fixture(scope="module")
def catalog():
    return brandeis_catalog()


# Function-scoped on purpose: DegreeGoal memoizes its max-flow seat solves
# per instance, so a shared goal would hide the "flow" spans from every
# test after the first.
@pytest.fixture
def major_goal():
    return brandeis_major_goal()


START = Term(2013, "Fall")
END = Term(2015, "Fall")


class TestEngineIntegration:
    def test_goal_driven_trace_has_nested_phases(self, catalog, major_goal):
        sink = InMemorySink()
        obs = Observability(tracer=Tracer(sinks=[sink]))
        generate_goal_driven(catalog, START, major_goal, END, obs=obs)
        names = {record["name"] for record in sink.records}
        assert {"run:goal_driven", "expand", "prune", "prune:time",
                "prune:availability", "flow"} <= names
        roots = [r for r in sink.records if r["parent_id"] is None]
        assert [r["name"] for r in roots] == ["run:goal_driven"]
        by_id = {r["span_id"]: r for r in sink.records}
        # every phase span sits under the run root
        for record in sink.records:
            if record["parent_id"] is not None:
                assert record["parent_id"] in by_id
        # prune:* spans are children of prune spans
        for record in sink.records:
            if record["name"].startswith("prune:"):
                assert by_id[record["parent_id"]]["name"] == "prune"

    def test_ranked_trace_covers_all_engine_phases(self, catalog, major_goal):
        sink = InMemorySink()
        obs = Observability(tracer=Tracer(sinks=[sink]))
        generate_ranked(
            catalog, START, major_goal, END, k=2, ranking=TimeRanking(), obs=obs
        )
        names = {record["name"] for record in sink.records}
        assert {"run:ranked", "expand", "prune", "flow", "rank"} <= names

    def test_frontier_trace_has_merge_phase(self, catalog, major_goal):
        sink = InMemorySink()
        obs = Observability(tracer=Tracer(sinks=[sink]))
        count = frontier_count_goal_paths(
            catalog, START, major_goal, END, obs=obs
        )
        names = {record["name"] for record in sink.records}
        assert {"run:frontier_goal", "expand", "merge", "prune"} <= names
        assert count.path_count > 0

    def test_metrics_capture_run_counters(self, catalog, major_goal):
        registry = MetricsRegistry()
        obs = Observability(metrics=registry)
        result = generate_goal_driven(catalog, START, major_goal, END, obs=obs)
        nodes = registry.get("repro_nodes_created_total")
        assert nodes.value == result.stats.nodes_created
        prunes = registry.get(
            "repro_prune_events_total", labels={"strategy": "time"}
        )
        assert prunes.value == result.stats.prune_events["time"]
        histogram = registry.get(
            "repro_phase_duration_seconds", labels={"phase": "expand"}
        )
        assert histogram.count > 0

    def test_instrumented_results_match_untraced(self, catalog, major_goal):
        plain = generate_goal_driven(catalog, START, major_goal, END)
        obs = Observability(
            tracer=Tracer(sinks=[InMemorySink()]), metrics=MetricsRegistry()
        )
        traced = generate_goal_driven(catalog, START, major_goal, END, obs=obs)
        assert {p.selections for p in plain.paths()} == {
            p.selections for p in traced.paths()
        }
        plain_dict = plain.stats.as_dict()
        traced_dict = traced.stats.as_dict()
        plain_dict.pop("elapsed_seconds")
        traced_dict.pop("elapsed_seconds")
        assert plain_dict == traced_dict
        assert plain.pruning_stats.as_dict() == traced.pruning_stats.as_dict()

    def test_disabled_observability_is_inert(self, catalog, major_goal):
        plain = generate_goal_driven(catalog, START, major_goal, END)
        nulled = generate_goal_driven(
            catalog, START, major_goal, END, obs=NULL_OBSERVABILITY
        )
        assert plain.path_count == nulled.path_count
        assert not NULL_OBSERVABILITY.phases

    def test_flow_solver_untraced_without_run_scope(self):
        # max_flow outside any run() scope must take the uninstrumented path
        from repro.requirements.flow import FlowNetwork

        assert current_observability() is None
        network = FlowNetwork()
        network.add_edge("s", "t", 3)
        assert network.max_flow("s", "t") == 3

    def test_navigator_threads_observability(self, catalog, major_goal):
        sink = InMemorySink()
        registry = MetricsRegistry()
        navigator = CourseNavigator(
            catalog, tracer=Tracer(sinks=[sink]), metrics=registry
        )
        assert navigator.observability is not None
        navigator.explore_ranked(START, major_goal, END, k=1)
        assert any(r["name"] == "run:ranked" for r in sink.records)
        assert registry.get("repro_runs_total", labels={"kind": "ranked"}).value == 1
        assert navigator.observability.phases.seconds("rank") >= 0.0

    def test_navigator_without_observability(self, catalog):
        assert CourseNavigator(catalog).observability is None

    def test_report_includes_phase_section(self, catalog, major_goal):
        from repro.system.report import build_goal_report

        obs = Observability(metrics=MetricsRegistry())
        result = generate_goal_driven(catalog, START, major_goal, END, obs=obs)
        report = build_goal_report(
            catalog, major_goal, START, END, result, obs=obs
        )
        assert "phase timing" in report
        assert "expand" in report

    def test_report_omits_phase_section_without_obs(self, catalog, major_goal):
        from repro.system.report import build_goal_report

        result = generate_goal_driven(catalog, START, major_goal, END)
        report = build_goal_report(catalog, major_goal, START, END, result)
        assert "phase timing" not in report
