"""Tests for the text visualizer."""

import pytest

from repro.catalog import DeterministicOfferings
from repro.core import TimeRanking, build_deadline_dag, generate_deadline_driven, generate_ranked
from repro.requirements import CourseSetGoal
from repro.system import render_graph, render_path, render_path_table, render_ranked

from .conftest import F11, S13

GOAL = CourseSetGoal({"11A", "29A", "21A"})


@pytest.fixture
def paths(fig3_catalog):
    return list(generate_deadline_driven(fig3_catalog, F11, S13).paths())


class TestRenderPath:
    def test_shows_semesters_and_courses(self, paths, fig3_catalog):
        text = render_path(paths[0], catalog=fig3_catalog)
        assert "Fall '11" in text
        assert "11A" in text
        assert "hrs/wk" in text
        assert "completed:" in text

    def test_skip_semesters_rendered(self, paths):
        skip_path = next(p for p in paths if frozenset() in p.selections)
        assert "(skip)" in render_path(skip_path)

    def test_reliability_header(self, paths, fig3_catalog):
        model = DeterministicOfferings(fig3_catalog.schedule)
        text = render_path(paths[0], offering_model=model)
        assert "reliability 1.000" in text

    def test_indent(self, paths):
        text = render_path(paths[0], indent="  ")
        assert all(line.startswith("  ") for line in text.splitlines())


class TestRenderPathTable:
    def test_one_line_per_path(self, paths, fig3_catalog):
        table = render_path_table(paths, fig3_catalog)
        assert len(table.splitlines()) == len(paths)

    def test_truncation_note(self, paths):
        table = render_path_table(paths, limit=1)
        assert "truncated" in table

    def test_empty(self):
        assert render_path_table([]) == "(no paths)"


class TestRenderRanked:
    def test_ranked_output(self, fig3_catalog):
        # Fig. 3 admits exactly two goal paths by Spring '13; k=5 exhausts.
        result = generate_ranked(fig3_catalog, F11, GOAL, S13, 5, TimeRanking())
        text = render_ranked(result, fig3_catalog)
        assert "[1] time cost = 2" in text
        assert "only 2 goal paths exist" in text

    def test_empty_result(self, fig3_catalog):
        result = generate_ranked(
            fig3_catalog, F11, CourseSetGoal({"21A"}), F11 + 1, 3, TimeRanking()
        )
        assert "no paths satisfy" in render_ranked(result)


class TestRenderGraph:
    def test_tree_rendering(self, fig3_catalog):
        graph = generate_deadline_driven(fig3_catalog, F11, S13).graph
        text = render_graph(graph)
        assert "Fall '11" in text
        assert "[deadline]" in text
        assert "[dead_end]" in text
        assert "--{11A, 29A}-->" in text

    def test_tree_truncation(self, fig3_catalog):
        graph = generate_deadline_driven(fig3_catalog, F11, S13).graph
        assert "truncated" in render_graph(graph, max_nodes=2)

    def test_dag_rendering(self, fig3_catalog):
        dag = build_deadline_dag(fig3_catalog, F11, S13).dag
        text = render_graph(dag)
        assert "Fall '11" in text

    def test_dag_truncation(self, fig3_catalog):
        dag = build_deadline_dag(fig3_catalog, F11, S13).dag
        assert "truncated" in render_graph(dag, max_nodes=1)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            render_graph([1, 2])
