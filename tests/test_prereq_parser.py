"""Tests for the registrar prerequisite-text parser."""

import pytest
from hypothesis import given, strategies as st

from repro.catalog.prereq import (
    FALSE,
    TRUE,
    And,
    CourseReq,
    KOf,
    Or,
)
from repro.errors import PrerequisiteParseError
from repro.parsing import parse_prerequisites


class TestBasics:
    def test_empty_means_no_prerequisites(self):
        assert parse_prerequisites("") == TRUE
        assert parse_prerequisites("   ") == TRUE

    def test_none_keyword(self):
        assert parse_prerequisites("none") == TRUE
        assert parse_prerequisites("NONE") == TRUE

    def test_never_keyword(self):
        assert parse_prerequisites("NEVER") == FALSE

    def test_single_course(self):
        assert parse_prerequisites("COSI 11a") == CourseReq("COSI 11a")

    def test_multiword_course_id(self):
        assert parse_prerequisites("MATH 10 a") == CourseReq("MATH 10 a")

    def test_label_stripped(self):
        assert parse_prerequisites("Prerequisite: COSI 11a") == CourseReq("COSI 11a")
        assert parse_prerequisites("Prerequisites: COSI 11a") == CourseReq("COSI 11a")
        assert parse_prerequisites("prereq: COSI 11a") == CourseReq("COSI 11a")

    def test_trailing_period_stripped(self):
        assert parse_prerequisites("COSI 11a.") == CourseReq("COSI 11a")


class TestConnectives:
    def test_and(self):
        expr = parse_prerequisites("COSI 11a AND COSI 29a")
        assert expr == And(CourseReq("COSI 11a"), CourseReq("COSI 29a"))

    def test_and_case_insensitive(self):
        assert parse_prerequisites("A and B") == And(CourseReq("A"), CourseReq("B"))

    def test_or(self):
        expr = parse_prerequisites("COSI 11a OR COSI 2a")
        assert expr == Or(CourseReq("COSI 11a"), CourseReq("COSI 2a"))

    def test_precedence_and_binds_tighter(self):
        expr = parse_prerequisites("A AND B OR C")
        assert expr == Or(And(CourseReq("A"), CourseReq("B")), CourseReq("C"))

    def test_parentheses(self):
        expr = parse_prerequisites("A AND (B OR C)")
        assert expr == And(CourseReq("A"), Or(CourseReq("B"), CourseReq("C")))

    def test_comma_reads_as_and(self):
        expr = parse_prerequisites("COSI 11a, COSI 12b and COSI 21a")
        assert expr == And(
            CourseReq("COSI 11a"), CourseReq("COSI 12b"), CourseReq("COSI 21a")
        )

    def test_comma_list_with_final_or(self):
        # "a, b, or c" is a registrar-style disjunction of the whole list
        expr = parse_prerequisites("A, B, or C")
        assert expr.evaluate({"A", "B"})
        assert expr.evaluate({"C"})
        assert not expr.evaluate({"A"})

    def test_semicolon_is_conjunction(self):
        expr = parse_prerequisites("A; B")
        assert expr == And(CourseReq("A"), CourseReq("B"))

    def test_nested_parens(self):
        expr = parse_prerequisites("((A))")
        assert expr == CourseReq("A")


class TestKOf:
    def test_k_of_bracket_list(self):
        expr = parse_prerequisites("2 OF [A, B, C]")
        assert expr == KOf(2, [CourseReq("A"), CourseReq("B"), CourseReq("C")])

    def test_k_of_with_compound_items(self):
        expr = parse_prerequisites("1 OF [A AND B, C]")
        assert expr == KOf(1, [And(CourseReq("A"), CourseReq("B")), CourseReq("C")])

    def test_k_of_inside_conjunction(self):
        expr = parse_prerequisites("X AND (2 OF [A, B, C])")
        assert isinstance(expr, And)

    def test_brandeis_capstone_shape(self):
        expr = parse_prerequisites("2 OF [COSI 101a, COSI 103a, COSI 107a, COSI 127b]")
        assert expr.evaluate({"COSI 101a", "COSI 127b"})
        assert not expr.evaluate({"COSI 101a"})

    def test_k_of_missing_of(self):
        with pytest.raises(PrerequisiteParseError):
            parse_prerequisites("2 [A, B]")


class TestInstructorPermission:
    TEXT = "COSI 11a or permission of the instructor"

    def test_ignore_drops_the_clause(self):
        assert parse_prerequisites(self.TEXT, "ignore") == CourseReq("COSI 11a")

    def test_true_makes_condition_trivial(self):
        assert parse_prerequisites(self.TEXT, "true") == TRUE

    def test_error_raises(self):
        with pytest.raises(PrerequisiteParseError, match="permission"):
            parse_prerequisites(self.TEXT, "error")

    def test_permission_only_condition_ignored_is_true(self):
        assert parse_prerequisites("Permission of the instructor", "ignore") == TRUE

    def test_instructors_consent_variant(self):
        assert (
            parse_prerequisites("COSI 11a or instructor's consent", "ignore")
            == CourseReq("COSI 11a")
        )

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            parse_prerequisites("A", instructor_permission="maybe")


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "AND",
            "A AND",
            "A OR",
            "(A",
            "A)",
            "A B (",
            "2 OF [A",
            "A @ B",
            ", A",
        ],
    )
    def test_malformed_raises(self, text):
        with pytest.raises(PrerequisiteParseError):
            parse_prerequisites(text)

    def test_error_carries_position(self):
        with pytest.raises(PrerequisiteParseError) as excinfo:
            parse_prerequisites("A @ B")
        assert excinfo.value.position is not None


# -- round-trip property --------------------------------------------------------

_IDS = ["COSI 11a", "COSI 12b", "COSI 21a", "MATH 23b", "PHYS 10a"]


def _exprs():
    leaves = st.one_of(
        st.just(TRUE),
        st.sampled_from([CourseReq(c) for c in _IDS]),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.lists(children, min_size=2, max_size=3).map(lambda cs: And(*cs)),
            st.lists(children, min_size=2, max_size=3).map(lambda cs: Or(*cs)),
            st.tuples(
                st.integers(min_value=1, max_value=2),
                st.lists(children, min_size=2, max_size=3),
            ).map(lambda kv: KOf(kv[0], kv[1])),
        ),
        max_leaves=6,
    )


@given(_exprs())
def test_to_string_parse_roundtrip_is_equivalent(expr):
    """Printing then re-parsing yields a semantically equivalent condition."""
    reparsed = parse_prerequisites(expr.to_string())
    assert reparsed.to_dnf() == expr.to_dnf()
