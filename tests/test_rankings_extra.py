"""Tests for the extra ranking functions."""

import pytest

from repro.core import (
    CompositeRanking,
    CourseCountRanking,
    ExplorationConfig,
    SpreadPenaltyRanking,
    TimeRanking,
    WorkloadRanking,
    generate_goal_driven,
    generate_ranked,
)
from repro.errors import ExplorationError
from repro.graph import EnrollmentStatus
from repro.requirements import CourseSetGoal, DegreeGoal, RequirementGroup

from .conftest import F11, F12, S12, S13

GOAL = CourseSetGoal({"11A", "29A", "21A"})


class TestCompositeRanking:
    def test_weighted_sum_edge_cost(self, fig3_catalog):
        ranking = CompositeRanking(
            [(1.0, TimeRanking()), (0.1, WorkloadRanking(fig3_catalog))]
        )
        # edge {11A, 29A}: 1.0 * 1 + 0.1 * 20 = 3.0
        assert ranking.edge_cost(frozenset({"11A", "29A"}), F11) == pytest.approx(3.0)

    def test_bound_is_weighted_sum(self, fig3_catalog):
        ranking = CompositeRanking(
            [(1.0, TimeRanking()), (1.0, WorkloadRanking(fig3_catalog))]
        )
        status = EnrollmentStatus(F11, frozenset())
        config = ExplorationConfig()
        bound = ranking.remaining_cost_bound(status, GOAL, config)
        time_bound = TimeRanking().remaining_cost_bound(status, GOAL, config)
        workload_bound = WorkloadRanking(fig3_catalog).remaining_cost_bound(
            status, GOAL, config
        )
        assert bound == pytest.approx(time_bound + workload_bound)

    def test_topk_matches_bruteforce(self, fig3_catalog):
        ranking = CompositeRanking(
            [(1.0, TimeRanking()), (0.01, WorkloadRanking(fig3_catalog))]
        )
        everything = generate_goal_driven(fig3_catalog, F11, GOAL, S13, pruners=[])
        brute = sorted(ranking.path_cost(p) for p in everything.paths())
        result = generate_ranked(fig3_catalog, F11, GOAL, S13, len(brute), ranking)
        assert [pytest.approx(c) for c in brute] == result.costs

    def test_needs_components(self):
        with pytest.raises(ExplorationError):
            CompositeRanking([])

    def test_negative_weight_rejected(self):
        with pytest.raises(ExplorationError):
            CompositeRanking([(-1.0, TimeRanking())])

    def test_non_ranking_component_rejected(self):
        with pytest.raises(ExplorationError):
            CompositeRanking([(1.0, "time")])

    def test_name_reflects_components(self, fig3_catalog):
        ranking = CompositeRanking(
            [(1.0, TimeRanking()), (0.5, WorkloadRanking(fig3_catalog))]
        )
        assert "time" in ranking.name and "workload" in ranking.name


class TestCourseCountRanking:
    def test_edge_cost(self):
        ranking = CourseCountRanking()
        assert ranking.edge_cost(frozenset({"A", "B"}), F11) == 2.0
        assert ranking.edge_cost(frozenset(), F11) == 0.0

    def test_prefers_minimum_course_plans(self, fig3_catalog):
        # Goal: either all of {11A, 29A} or just 21A's chain — use an
        # overlapping degree goal where wasted courses are possible.
        goal = DegreeGoal(
            (RequirementGroup("any", {"11A", "29A", "21A"}, 2),)
        )
        result = generate_ranked(
            fig3_catalog, F11, goal, S13, 1, CourseCountRanking()
        )
        assert result.costs[0] == 2.0  # exactly two courses, no waste

    def test_bound_equals_left(self, fig3_catalog):
        status = EnrollmentStatus(F11, frozenset({"11A"}))
        bound = CourseCountRanking().remaining_cost_bound(
            status, GOAL, ExplorationConfig()
        )
        assert bound == 2  # 29A and 21A still needed

    def test_topk_matches_bruteforce(self, fig3_catalog):
        ranking = CourseCountRanking()
        everything = generate_goal_driven(fig3_catalog, F11, GOAL, S13, pruners=[])
        brute = sorted(ranking.path_cost(p) for p in everything.paths())
        result = generate_ranked(fig3_catalog, F11, GOAL, S13, len(brute), ranking)
        assert result.costs == brute


class TestSpreadPenaltyRanking:
    def test_on_target_semester_costs_zero(self, fig3_catalog):
        ranking = SpreadPenaltyRanking(fig3_catalog, target_hours=20.0)
        assert ranking.edge_cost(frozenset({"11A", "29A"}), F11) == 0.0  # 20h
        assert ranking.edge_cost(frozenset({"11A"}), F11) == 100.0  # (10-20)^2

    def test_prefers_even_loads(self, fig3_catalog):
        # Target 10h/term: the one-course-per-term path is perfectly flat.
        ranking = SpreadPenaltyRanking(fig3_catalog, target_hours=10.0)
        result = generate_ranked(fig3_catalog, F11, GOAL, S13, 1, ranking)
        best = result.paths[0]
        assert all(len(sel) == 1 for sel in best.selections)
        assert result.costs[0] == 0.0

    def test_negative_target_rejected(self, fig3_catalog):
        with pytest.raises(ExplorationError):
            SpreadPenaltyRanking(fig3_catalog, -5)

    def test_topk_matches_bruteforce(self, fig3_catalog):
        ranking = SpreadPenaltyRanking(fig3_catalog, target_hours=15.0)
        everything = generate_goal_driven(fig3_catalog, F11, GOAL, S13, pruners=[])
        brute = sorted(ranking.path_cost(p) for p in everything.paths())
        result = generate_ranked(fig3_catalog, F11, GOAL, S13, len(brute), ranking)
        assert result.costs == pytest.approx(brute)
