"""Tests for path exporters and plan comparison."""

import io
import json

import pytest

from repro.analysis import cost_comparison, diff_paths
from repro.core import TimeRanking, WorkloadRanking, generate_deadline_driven
from repro.graph import EnrollmentStatus, LearningPath
from repro.system import paths_to_csv_text, write_paths_csv, write_paths_jsonl

from .conftest import F11, F12, S12, S13


@pytest.fixture
def paths(fig3_catalog):
    return list(generate_deadline_driven(fig3_catalog, F11, S13).paths())


class TestCsvExport:
    def test_row_per_term(self, paths, fig3_catalog):
        text = paths_to_csv_text(paths, fig3_catalog)
        lines = text.strip().splitlines()
        expected_rows = sum(len(p) for p in paths)
        assert len(lines) == expected_rows + 1  # + header
        assert lines[0] == "path_id,semesters,term,courses,workload_hours"

    def test_without_catalog_no_workload_column(self, paths):
        text = paths_to_csv_text(paths)
        assert "workload_hours" not in text.splitlines()[0]

    def test_limit(self, paths):
        buffer = io.StringIO()
        written = write_paths_csv(iter(paths), buffer, limit=1)
        assert written == 1

    def test_content(self, paths, fig3_catalog):
        text = paths_to_csv_text(paths, fig3_catalog)
        assert "11A 29A" in text  # a two-course selection, space-joined
        assert "Fall 2011" in text

    def test_streams_from_generator(self, fig3_catalog):
        result = generate_deadline_driven(fig3_catalog, F11, S13)
        buffer = io.StringIO()
        written = write_paths_csv(result.paths(), buffer, fig3_catalog)
        assert written == 3


class TestJsonlExport:
    def test_one_object_per_line(self, paths):
        buffer = io.StringIO()
        written = write_paths_jsonl(iter(paths), buffer)
        assert written == len(paths)
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == len(paths)
        first = json.loads(lines[0])
        assert first["start_term"] == "Fall 2011"
        assert isinstance(first["steps"], list)

    def test_limit(self, paths):
        buffer = io.StringIO()
        assert write_paths_jsonl(iter(paths), buffer, limit=2) == 2


def _plan(steps):
    completed = frozenset()
    statuses = [EnrollmentStatus(F11, completed)]
    selections = []
    term = F11
    for courses in steps:
        selections.append(frozenset(courses))
        completed = completed | frozenset(courses)
        term = term + 1
        statuses.append(EnrollmentStatus(term, completed))
    return LearningPath(statuses, selections)


class TestDiffPaths:
    def test_identical(self):
        a = _plan([("11A",), ("21A",)])
        b = _plan([("11A",), ("21A",)])
        diff = diff_paths(a, b)
        assert diff.identical
        assert diff.describe() == "plans are identical"

    def test_divergence_point(self):
        a = _plan([("11A",), ("21A",)])
        b = _plan([("11A",), ("29A",)])
        diff = diff_paths(a, b)
        assert not diff.identical
        assert diff.divergence_term == S12
        assert len(diff.shared_prefix) == 1
        assert diff.only_in_first == {"21A"}
        assert diff.only_in_second == {"29A"}

    def test_length_difference(self):
        a = _plan([("11A",)])
        b = _plan([("11A",), ("29A",)])
        diff = diff_paths(a, b)
        assert diff.divergence_term == S12
        assert diff.only_in_second == {"29A"}

    def test_per_term_changes(self):
        a = _plan([("11A", "29A"), ()])
        b = _plan([("11A",), ("29A",)])
        diff = diff_paths(a, b)
        terms = [term for term, _a, _b in diff.per_term_changes]
        assert terms == [F11, S12]

    def test_different_starts_rejected(self):
        a = _plan([("11A",)])
        start = EnrollmentStatus(S12, frozenset())
        b = LearningPath([start], [])
        with pytest.raises(ValueError, match="different statuses"):
            diff_paths(a, b)

    def test_describe_mentions_exclusives(self):
        a = _plan([("11A",)])
        b = _plan([("29A",)])
        text = diff_paths(a, b).describe()
        assert "11A" in text and "29A" in text


class TestCostComparison:
    def test_table_shape(self, paths, fig3_catalog):
        rankings = [TimeRanking(), WorkloadRanking(fig3_catalog)]
        table = cost_comparison(paths, rankings)
        assert len(table) == len(paths)
        for row, path in zip(table, paths):
            assert row["time"] == len(path)
            assert row["workload"] == path.workload_cost(fig3_catalog)
