"""Shared fixtures: the paper's Fig. 3 example and small helpers."""

import pytest

from repro.catalog import Catalog, Course, Schedule
from repro.catalog.prereq import CourseReq
from repro.semester import Term

F11 = Term(2011, "Fall")
S12 = Term(2012, "Spring")
F12 = Term(2012, "Fall")
S13 = Term(2013, "Spring")


@pytest.fixture
def fig3_catalog():
    """The exact example of the paper's Fig. 3.

    C = {11A, 29A, 21A}; 11A and 29A have no prerequisites, 21A requires
    11A; S_11A = S_29A = {Fall '11, Fall '12}, S_21A = {Spring '12}.
    """
    return Catalog(
        [
            Course("11A"),
            Course("29A"),
            Course("21A", prereq=CourseReq("11A")),
        ],
        schedule=Schedule(
            {
                "11A": {F11, F12},
                "29A": {F11, F12},
                "21A": {S12},
            }
        ),
    )
