"""End-to-end integration tests: registrar text to report, in one flow."""

import io
import json

import pytest

from repro import CourseNavigator, CourseSetGoal, Term
from repro.analysis import check_containment, diff_paths, summarize_paths
from repro.catalog import lint_catalog
from repro.core import ExplorationConfig, TimeRanking, generate_ranked
from repro.data import simulate_transcripts
from repro.graph.export import graph_to_json
from repro.parsing import build_catalog_from_registrar, load_catalog, save_catalog
from repro.system import PlanningSession, build_goal_report, write_paths_jsonl


COURSE_DESCRIPTIONS = {
    "CS 1": "",
    "CS 2": "CS 1",
    "MATH 1": "none",
    "CS 3": "CS 2 and MATH 1",
    "CS 4": "CS 2 or MATH 1",
    "CS 9": "2 OF [CS 3, CS 4, MATH 1]",
}

SCHEDULE_TEXT = """
CS 1:   Fall 2020, Spring 2021, Fall 2021
CS 2:   Spring 2021, Fall 2021
MATH 1: Fall 2020, Fall 2021
CS 3:   Spring 2022
CS 4:   Fall 2021, Spring 2022
CS 9:   Spring 2022
"""

F20, S21, F21, S22, F22 = (
    Term(2020, "Fall"),
    Term(2021, "Spring"),
    Term(2021, "Fall"),
    Term(2022, "Spring"),
    Term(2022, "Fall"),
)


@pytest.fixture(scope="module")
def catalog():
    return build_catalog_from_registrar(COURSE_DESCRIPTIONS, SCHEDULE_TEXT)


class TestFullPipeline:
    def test_lint_is_clean(self, catalog):
        assert [i for i in lint_catalog(catalog) if i.severity == "error"] == []

    def test_roundtrip_then_explore(self, catalog, tmp_path):
        path = tmp_path / "catalog.json"
        save_catalog(catalog, path)
        navigator = CourseNavigator(load_catalog(path))
        goal = CourseSetGoal({"CS 9"})
        result = navigator.explore_goal(F20, goal, F22)
        assert result.path_count > 0
        # Every path is a valid transcript by the containment checker.
        report = navigator.check_transcripts(
            list(result.paths()), goal, F22
        )
        assert report.all_contained

    def test_ranked_report_export_chain(self, catalog, tmp_path):
        navigator = CourseNavigator(catalog)
        goal = CourseSetGoal({"CS 9"})
        result = navigator.explore_goal(F20, goal, F22)
        ranked = generate_ranked(catalog, F20, goal, F22, 2, TimeRanking())
        report = build_goal_report(catalog, goal, F20, F22, result, ranked=ranked)
        assert "learning paths satisfy the goal" in report
        assert "[1] time cost" in report

        # Graph JSON export is loadable and structurally sane.
        data = graph_to_json(result.graph)
        encoded = json.dumps(data)
        assert json.loads(encoded)["kind"] == "tree"

        # Path JSONL export round-trips the plan steps.
        buffer = io.StringIO()
        written = write_paths_jsonl(result.paths(), buffer)
        assert written == result.path_count
        first = json.loads(buffer.getvalue().splitlines()[0])
        assert first["final_completed"]

    def test_session_walkthrough_matches_ranked_best(self, catalog):
        navigator = CourseNavigator(catalog)
        goal = CourseSetGoal({"CS 9"})
        ranked = generate_ranked(catalog, F20, goal, F22, 1, TimeRanking())
        best = ranked.paths[0]

        session = PlanningSession(navigator, goal, F20, F22)
        for _term, selection in best:
            session.take(*selection)
        assert session.goal_satisfied()
        replay = session.path_so_far()
        assert diff_paths(best, replay).identical

    def test_simulated_cohort_statistics(self, catalog):
        goal = CourseSetGoal({"CS 9"})
        body = simulate_transcripts(
            catalog, goal, F20, F22, count=12, seed=9,
            config=ExplorationConfig(max_courses_per_term=2),
        )
        report = check_containment(
            catalog, goal, body.paths, F22,
            config=ExplorationConfig(max_courses_per_term=2),
        )
        assert report.all_contained
        summary = summarize_paths(body.paths, catalog)
        assert summary.count == 12
        assert summary.min_length >= 2  # CS 9 needs a prerequisite chain

    def test_avoid_list_respected_throughout(self, catalog):
        navigator = CourseNavigator(catalog)
        goal = CourseSetGoal({"CS 9"})
        # Avoid CS 3: CS 9 needs 2 of [CS 3, CS 4, MATH 1] — still feasible.
        result = navigator.explore_goal(F20, goal, F22, avoid_courses={"CS 3"})
        assert result.path_count > 0
        for path in result.paths():
            assert "CS 3" not in path.courses_taken()

    def test_determinism_across_runs(self, catalog):
        navigator = CourseNavigator(catalog)
        goal = CourseSetGoal({"CS 9"})
        first = [p.selections for p in navigator.explore_goal(F20, goal, F22).paths()]
        second = [p.selections for p in navigator.explore_goal(F20, goal, F22).paths()]
        assert first == second
