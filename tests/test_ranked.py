"""Tests for ranked (top-k) generation and the ranking functions."""

import math

import pytest

from repro.catalog import Catalog, Course, DeterministicOfferings, Schedule
from repro.catalog.prereq import CourseReq, Or
from repro.core import (
    ExplorationConfig,
    ReliabilityRanking,
    TimeRanking,
    WorkloadRanking,
    generate_goal_driven,
    generate_ranked,
)
from repro.core.ranking import RankingFunction
from repro.errors import BudgetExceededError, ExplorationError
from repro.requirements import CourseSetGoal
from repro.semester import Term

from .conftest import F11, F12, S12, S13

GOAL = CourseSetGoal({"11A", "29A", "21A"})


class TestRankingFunctions:
    def test_time_ranking_edge_cost(self):
        assert TimeRanking().edge_cost({"A", "B"}, F11) == 1.0
        assert TimeRanking().edge_cost(frozenset(), F11) == 1.0

    def test_workload_ranking(self, fig3_catalog):
        ranking = WorkloadRanking(fig3_catalog)
        # default workload is 10.0/course
        assert ranking.edge_cost({"11A", "29A"}, F11) == 20.0
        assert ranking.edge_cost(frozenset(), F11) == 0.0

    def test_reliability_ranking(self, fig3_catalog):
        model = DeterministicOfferings(fig3_catalog.schedule)
        ranking = ReliabilityRanking(model)
        assert ranking.edge_cost({"11A"}, F11) == 0.0  # certain
        assert math.isinf(ranking.edge_cost({"21A"}, F11))  # not offered
        assert ranking.score(0.0) == 1.0
        assert ranking.score(math.inf) == 0.0

    def test_reliability_cost_is_log_product(self):
        class Half:
            def selection_probability(self, ids, term):
                return 0.5 ** len(list(ids))

        ranking = ReliabilityRanking(Half())
        cost = ranking.edge_cost({"A", "B"}, F11)
        assert cost == pytest.approx(-math.log(0.25))
        assert ranking.score(cost) == pytest.approx(0.25)


class TestTopKOnFig3:
    def test_top1_shortest_is_two_semesters(self, fig3_catalog):
        # §4.3.2's example: the shortest path takes {11A,29A} then {21A}.
        result = generate_ranked(fig3_catalog, F11, GOAL, S13, 1, TimeRanking())
        assert len(result.paths) == 1
        assert result.costs == [2.0]
        assert result.paths[0].selections == (
            frozenset({"11A", "29A"}),
            frozenset({"21A"}),
        )

    def test_costs_non_decreasing(self, fig3_catalog):
        result = generate_ranked(fig3_catalog, F11, GOAL, S13, 10, TimeRanking())
        assert result.costs == sorted(result.costs)

    def test_exhausted_flag(self, fig3_catalog):
        result = generate_ranked(fig3_catalog, F11, GOAL, S13, 50, TimeRanking())
        assert result.exhausted
        # Only one goal path exists within Spring '13 on Fig. 3's catalog
        # (the other branches cannot finish 21A in time).
        goal_paths = generate_goal_driven(fig3_catalog, F11, GOAL, S13)
        assert len(result.paths) == goal_paths.path_count

    def test_topk_matches_full_enumeration_prefix(self, fig3_catalog):
        # All goal paths, brute-force sorted by cost, must equal the
        # best-first prefix (Lemma 2).
        ranking = WorkloadRanking(fig3_catalog)
        everything = generate_goal_driven(fig3_catalog, F11, GOAL, S13, pruners=[])
        brute = sorted(ranking.path_cost(p) for p in everything.paths())
        result = generate_ranked(fig3_catalog, F11, GOAL, S13, len(brute), ranking)
        assert result.costs == brute

    def test_k_must_be_positive(self, fig3_catalog):
        with pytest.raises(ExplorationError):
            generate_ranked(fig3_catalog, F11, GOAL, S13, 0, TimeRanking())

    def test_budget(self, fig3_catalog):
        with pytest.raises(BudgetExceededError):
            generate_ranked(
                fig3_catalog, F11, GOAL, S13, 5, TimeRanking(),
                config=ExplorationConfig(max_nodes=2),
            )

    def test_goal_at_start(self, fig3_catalog):
        result = generate_ranked(
            fig3_catalog, F11, CourseSetGoal({"11A"}), S13, 3, TimeRanking(),
            completed={"11A"},
        )
        assert len(result.paths) == 1
        assert result.costs == [0.0]

    def test_negative_edge_cost_rejected(self, fig3_catalog):
        class Negative(RankingFunction):
            name = "negative"

            def edge_cost(self, selection, term):
                return -1.0

        with pytest.raises(ExplorationError, match="negative edge cost"):
            generate_ranked(fig3_catalog, F11, GOAL, S13, 1, Negative())

    def test_ranked_result_helpers(self, fig3_catalog):
        result = generate_ranked(fig3_catalog, F11, GOAL, S13, 1, TimeRanking())
        assert len(result) == 1
        pairs = result.ranked()
        assert pairs[0][0] == result.costs[0]
        assert pairs[0][1] == result.paths[0]


class TestWorkloadOrdering:
    @pytest.fixture
    def weighted_catalog(self):
        """Two routes to a goal with different workloads."""
        return Catalog(
            [
                Course("easy", workload_hours=2),
                Course("hard", workload_hours=20),
                Course(
                    "end",
                    workload_hours=5,
                    prereq=Or(CourseReq("easy"), CourseReq("hard")),
                ),
            ],
            schedule=Schedule(
                {
                    "easy": {F11},
                    "hard": {F11},
                    "end": {S12},
                }
            ),
        )

    def test_workload_prefers_light_route(self, weighted_catalog):
        goal = CourseSetGoal({"end"})
        result = generate_ranked(
            weighted_catalog, F11, goal, F12, 2, WorkloadRanking(weighted_catalog)
        )
        assert len(result.paths) >= 1
        first = result.paths[0]
        assert "easy" in first.courses_taken()
        assert "hard" not in first.courses_taken()


class TestReliabilityOrdering:
    def test_prefers_certain_offerings(self, fig3_catalog):
        class Model:
            """29A in Fall '12 is uncertain; everything else certain."""

            def probability(self, course_id, term):
                if course_id == "29A" and term == F12:
                    return 0.3
                return 1.0

            def selection_probability(self, ids, term):
                result = 1.0
                for course_id in ids:
                    result *= self.probability(course_id, term)
                return result

        ranking = ReliabilityRanking(Model())
        result = generate_ranked(fig3_catalog, F11, GOAL, S13, 2, ranking)
        # The most reliable path takes 29A in Fall '11 (certain), not F12.
        first = result.paths[0]
        first_fall_selection = first.selections[0]
        assert "29A" in first_fall_selection
        assert ranking.score(result.costs[0]) == pytest.approx(1.0)
