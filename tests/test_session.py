"""Tests for the interactive PlanningSession."""

import pytest

from repro.core import ExplorationConfig
from repro.errors import ExplorationError
from repro.requirements import CourseSetGoal
from repro.system import CourseNavigator, PlanningSession

from .conftest import F11, F12, S12, S13

GOAL = CourseSetGoal({"11A", "29A", "21A"})


@pytest.fixture
def session(fig3_catalog):
    return PlanningSession(
        CourseNavigator(fig3_catalog), GOAL, F11, S13
    )


class TestSessionState:
    def test_initial_state(self, session, fig3_catalog):
        assert session.term == F11
        assert session.completed == frozenset()
        assert session.options() == {"11A", "29A"}
        assert session.semesters_left == 3
        assert session.catalog is fig3_catalog
        assert session.goal is GOAL
        assert not session.goal_satisfied()

    def test_deadline_before_start_rejected(self, fig3_catalog):
        with pytest.raises(ExplorationError):
            PlanningSession(CourseNavigator(fig3_catalog), GOAL, S13, F11)

    def test_path_so_far_empty(self, session):
        path = session.path_so_far()
        assert len(path) == 0
        assert path.start.term == F11

    def test_legal_selections_match_fig3(self, session):
        legal = set(session.legal_selections())
        assert legal == {
            frozenset({"11A"}),
            frozenset({"29A"}),
            frozenset({"11A", "29A"}),
        }


class TestTransitions:
    def test_take_advances(self, session):
        status = session.take("11A", "29A")
        assert status.term == S12
        assert session.completed == {"11A", "29A"}
        assert session.options() == {"21A"}
        assert session.semesters_left == 2

    def test_illegal_take_rejected(self, session):
        with pytest.raises(ExplorationError, match="not a legal move"):
            session.take("21A")  # prerequisite unmet

    def test_take_past_deadline_rejected(self, session):
        session.take("11A")   # Fall '11 -> Spring '12
        session.take("21A")   # Spring '12 -> Fall '12
        session.take("29A")   # Fall '12 -> Spring '13 (the deadline)
        assert session.term == S13
        with pytest.raises(ExplorationError, match="deadline"):
            session.take()

    def test_skip_term_when_legal(self, session):
        session.take("29A")
        # Spring '12: X={29A}, no options, 11A returns in Fall — skip legal.
        status = session.skip_term()
        assert status.term == F12
        assert session.options() == {"11A"}

    def test_skip_when_options_exist_rejected(self, session):
        with pytest.raises(ExplorationError):
            session.skip_term()

    def test_undo(self, session):
        session.take("11A")
        session.take("21A")
        assert session.completed == {"11A", "21A"}
        session.undo()
        assert session.completed == {"11A"}
        session.undo()
        assert session.completed == frozenset()
        with pytest.raises(ExplorationError, match="nothing to undo"):
            session.undo()

    def test_path_so_far_tracks_history(self, session):
        session.take("11A", "29A")
        session.take("21A")
        path = session.path_so_far()
        assert path.selections == (frozenset({"11A", "29A"}), frozenset({"21A"}))
        assert GOAL.is_satisfied(path.end.completed)
        assert session.goal_satisfied()


class TestQueries:
    def test_audit_reports_progress(self, session):
        session.take("11A")
        report = session.audit()
        assert not report.satisfied
        assert report.remaining_courses == 2

    def test_routes_remaining(self, session):
        # From the start, two goal routes exist by Spring '13 (Fig. 3).
        assert session.routes_remaining() == 2
        session.take("11A", "29A")
        assert session.routes_remaining() == 1

    def test_preview_does_not_mutate(self, session):
        preview = session.preview("11A", "29A")
        assert session.completed == frozenset()
        assert preview.routes_remaining == 1
        assert preview.next_term_options == {"21A"}
        assert not preview.goal_satisfied

    def test_preview_illegal_selection(self, session):
        with pytest.raises(ExplorationError):
            session.preview("21A")

    def test_preview_goal_satisfying_move(self, session):
        session.take("11A", "29A")
        preview = session.preview("21A")
        assert preview.goal_satisfied
        assert "goal satisfied" in preview.describe()

    def test_preview_all_sorted_by_openness(self, session):
        previews = session.preview_all()
        assert len(previews) == 3
        routes = [p.routes_remaining for p in previews]
        assert routes == sorted(routes, reverse=True)
        # Taking both intro courses keeps the only 2-semester route alive
        # AND the slow route? It forecloses the wait-for-11A route.
        best = previews[0]
        assert best.routes_remaining >= previews[-1].routes_remaining

    def test_preview_describe_counts(self, session):
        preview = session.preview("29A")
        text = preview.describe()
        assert "29A" in text
        assert "routes" in text

    def test_best_plans(self, session):
        result = session.best_plans(k=2, ranking="time")
        assert len(result.paths) == 2
        assert result.costs[0] == 2.0

    def test_best_plans_after_progress(self, session):
        session.take("11A", "29A")
        result = session.best_plans(k=1)
        assert result.costs == [1.0]

    def test_repr(self, session):
        text = repr(session)
        assert "Fall 2011" in text

    def test_routes_decompose_over_selections(self, session):
        """A status's route count equals the sum over its legal selections
        of the child route counts (goal-satisfying children count 1) —
        the invariant that makes preview_all's numbers trustworthy."""
        total = session.routes_remaining()
        decomposed = 0
        for preview in session.preview_all():
            decomposed += 1 if preview.goal_satisfied else preview.routes_remaining
        assert decomposed == total

    def test_routes_decompose_on_random_catalogs(self):
        from repro.data import GeneratorSettings, random_catalog, random_course_set_goal
        from repro.semester import Term

        for seed in range(6):
            catalog = random_catalog(
                seed, GeneratorSettings(n_courses=5, n_terms=3, offer_probability=0.7)
            )
            goal = random_course_set_goal(catalog, seed, size=2)
            start = Term(2011, "Fall")
            session = PlanningSession(
                CourseNavigator(catalog), goal, start, start + 3,
                config=ExplorationConfig(max_courses_per_term=2),
            )
            if session.goal_satisfied():
                continue
            total = session.routes_remaining()
            decomposed = sum(
                1 if p.goal_satisfied else p.routes_remaining
                for p in session.preview_all()
            )
            assert decomposed == total, f"seed {seed}"


class TestSessionWithConfig:
    def test_constraints_respected(self, fig3_catalog):
        from repro.core import ForbiddenCombination

        config = ExplorationConfig(
            constraints=(ForbiddenCombination({"11A", "29A"}),)
        )
        session = PlanningSession(
            CourseNavigator(fig3_catalog), GOAL, F11, S13, config=config
        )
        legal = set(session.legal_selections())
        assert frozenset({"11A", "29A"}) not in legal
        with pytest.raises(ExplorationError):
            session.take("11A", "29A")

    def test_starting_with_completed_courses(self, fig3_catalog):
        session = PlanningSession(
            CourseNavigator(fig3_catalog), GOAL, S12, S13, completed={"11A", "29A"}
        )
        assert session.options() == {"21A"}
        session.take("21A")
        assert session.goal_satisfied()
