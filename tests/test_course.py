"""Tests for the Course record."""

import pytest

from repro.catalog import Course
from repro.catalog.prereq import TRUE, And, CourseReq, requires


class TestValidation:
    def test_minimal_course(self):
        course = Course("COSI 11a")
        assert course.course_id == "COSI 11a"
        assert course.title == "COSI 11a"
        assert course.prereq == TRUE
        assert course.workload_hours == 10.0

    def test_id_whitespace_stripped(self):
        assert Course("  COSI 11a  ").course_id == "COSI 11a"

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Course("   ")

    def test_non_string_id_rejected(self):
        with pytest.raises(ValueError):
            Course(42)

    def test_bad_prereq_type_rejected(self):
        with pytest.raises(TypeError):
            Course("A", prereq="B")

    def test_negative_workload_rejected(self):
        with pytest.raises(ValueError):
            Course("A", workload_hours=-1)

    def test_negative_credits_rejected(self):
        with pytest.raises(ValueError):
            Course("A", credits=-1)

    def test_self_prerequisite_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            Course("A", prereq=CourseReq("A"))

    def test_self_prerequisite_nested_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            Course("A", prereq=And(CourseReq("B"), CourseReq("A")))

    def test_tags_coerced_to_frozenset(self):
        course = Course("A", tags=["core", "core", "systems"])
        assert course.tags == frozenset({"core", "systems"})

    def test_frozen(self):
        course = Course("A")
        with pytest.raises(AttributeError):
            course.title = "changed"


class TestHelpers:
    def test_has_tag(self):
        course = Course("A", tags={"core"})
        assert course.has_tag("core")
        assert not course.has_tag("elective")

    def test_prerequisite_courses(self):
        course = Course("C", prereq=requires("A", "B"))
        assert course.prerequisite_courses() == {"A", "B"}

    def test_with_prereq_copies(self):
        base = Course("C", title="T", workload_hours=7.0, tags={"x"})
        updated = base.with_prereq(CourseReq("A"))
        assert updated.prereq == CourseReq("A")
        assert updated.title == "T"
        assert updated.workload_hours == 7.0
        assert base.prereq == TRUE

    def test_with_tags_copies(self):
        base = Course("C", tags={"x"})
        updated = base.with_tags({"y", "z"})
        assert updated.tags == frozenset({"y", "z"})
        assert base.tags == frozenset({"x"})


class TestSerialization:
    def test_roundtrip(self):
        course = Course(
            "COSI 31a",
            title="Computer Structures",
            prereq=requires("COSI 12b", "COSI 21a"),
            workload_hours=14.0,
            credits=4,
            tags={"core"},
            description="Operating systems and architecture.",
        )
        assert Course.from_dict(course.to_dict()) == course

    def test_from_dict_defaults(self):
        course = Course.from_dict({"course_id": "A"})
        assert course.prereq == TRUE
        assert course.credits == 4
