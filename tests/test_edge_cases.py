"""Edge-case and failure-injection tests across the core stack."""

import pytest

from repro.catalog import Catalog, Course, Schedule
from repro.catalog.prereq import CourseReq
from repro.core import (
    ExplorationConfig,
    TimeRanking,
    build_goal_dag,
    frontier_count_goal_paths,
    generate_deadline_driven,
    generate_goal_driven,
    generate_ranked,
)
from repro.errors import BudgetExceededError
from repro.requirements import CourseSetGoal, DegreeGoal, RequirementGroup
from repro.semester import AcademicCalendar, Term

from .conftest import F11, F12, S12, S13

GOAL = CourseSetGoal({"11A", "29A", "21A"})


class TestEmptySelectionPolicies:
    def test_never_policy_dead_ends_waiting_nodes(self, fig3_catalog):
        config = ExplorationConfig(empty_selection="never")
        result = generate_deadline_driven(fig3_catalog, F11, S13, config=config)
        # The n4 branch ({29A} then wait) now dead-ends immediately: still
        # three maximal paths, but none contains an empty selection and
        # the {29A} branch stops after one semester.
        assert result.path_count == 3
        plans = {p.selections for p in result.paths()}
        assert (frozenset({"29A"}),) in plans
        for path in result.paths():
            assert frozenset() not in path.selections

    def test_always_policy_adds_waiting_paths(self, fig3_catalog):
        config = ExplorationConfig(empty_selection="always")
        result = generate_deadline_driven(fig3_catalog, F11, S13, config=config)
        baseline = generate_deadline_driven(fig3_catalog, F11, S13)
        assert result.path_count > baseline.path_count

    def test_policies_agree_on_goal_reachability(self, fig3_catalog):
        for policy in ("auto", "always"):
            config = ExplorationConfig(empty_selection=policy)
            result = generate_goal_driven(
                fig3_catalog, F11, GOAL, S13, config=config
            )
            assert result.path_count >= 2


class TestSingleSeasonCalendar:
    def test_one_term_per_year_catalog(self):
        yearly = AcademicCalendar(("Annual",))
        t0 = Term(2020, "Annual", yearly)
        catalog = Catalog(
            [Course("A"), Course("B", prereq=CourseReq("A"))],
            schedule=Schedule({"A": {t0, t0 + 1}, "B": {t0 + 1, t0 + 2}}),
        )
        result = generate_goal_driven(
            catalog, t0, CourseSetGoal({"A", "B"}), t0 + 2
        )
        assert result.path_count == 1
        path = next(result.paths())
        assert path.selections == (frozenset({"A"}), frozenset({"B"}))


class TestBudgets:
    def test_budget_error_reports_kind_and_limit(self, fig3_catalog):
        with pytest.raises(BudgetExceededError) as excinfo:
            generate_deadline_driven(
                fig3_catalog, F11, S13, config=ExplorationConfig(max_nodes=4)
            )
        assert excinfo.value.kind == "nodes"
        assert excinfo.value.limit == 4
        assert excinfo.value.observed >= 4

    def test_exact_budget_fits(self, fig3_catalog):
        # Fig. 3 builds 9 nodes: a budget of 9 must succeed.
        result = generate_deadline_driven(
            fig3_catalog, F11, S13, config=ExplorationConfig(max_nodes=9)
        )
        assert result.graph.num_nodes == 9

    def test_dag_budget(self, fig3_catalog):
        with pytest.raises(BudgetExceededError):
            build_goal_dag(
                fig3_catalog, F11, GOAL, S13, config=ExplorationConfig(max_nodes=2)
            )

    def test_frontier_budget_is_clean_failure(self, fig3_catalog):
        with pytest.raises(BudgetExceededError) as excinfo:
            frontier_count_goal_paths(
                fig3_catalog, F11, GOAL, S13, max_frontier=1
            )
        assert excinfo.value.kind == "frontier states"


class TestDeterminism:
    def test_deadline_graph_structure_stable(self, fig3_catalog):
        a = generate_deadline_driven(fig3_catalog, F11, S13)
        b = generate_deadline_driven(fig3_catalog, F11, S13)
        assert a.graph.num_nodes == b.graph.num_nodes
        for node_id in a.graph.node_ids():
            assert a.graph.status(node_id) == b.graph.status(node_id)
            assert a.graph.selection_into(node_id) == b.graph.selection_into(node_id)

    def test_ranked_tiebreaks_stable(self, fig3_catalog):
        a = generate_ranked(fig3_catalog, F11, GOAL, S13, 2, TimeRanking())
        b = generate_ranked(fig3_catalog, F11, GOAL, S13, 2, TimeRanking())
        assert [p.selections for p in a.paths] == [p.selections for p in b.paths]


class TestDegreeGoalCache:
    def test_cache_eviction_keeps_answers_correct(self):
        goal = DegreeGoal(
            (RequirementGroup("g", {"A", "B", "C"}, 2),)
        )
        goal._CACHE_LIMIT = 2  # force eviction churn
        sets = [
            frozenset(),
            frozenset({"A"}),
            frozenset({"B"}),
            frozenset({"A", "B"}),
            frozenset({"A", "C"}),
            frozenset({"B", "C"}),
        ]
        expected = [2, 1, 1, 0, 0, 0]
        for completed, remaining in zip(sets, expected):
            assert goal.remaining_courses(completed) == remaining
        # Re-query in reverse order: answers unchanged after eviction.
        for completed, remaining in zip(reversed(sets), reversed(expected)):
            assert goal.remaining_courses(completed) == remaining


class TestAvoidListsEverywhere:
    def test_goal_driven(self, fig3_catalog):
        config = ExplorationConfig(avoid_courses=frozenset({"29A"}))
        result = generate_goal_driven(
            fig3_catalog, F11, CourseSetGoal({"11A", "21A"}), S13, config=config
        )
        for path in result.paths():
            assert "29A" not in path.courses_taken()

    def test_ranked(self, fig3_catalog):
        config = ExplorationConfig(avoid_courses=frozenset({"29A"}))
        result = generate_ranked(
            fig3_catalog, F11, CourseSetGoal({"11A", "21A"}), S13, 5,
            TimeRanking(), config=config,
        )
        for path in result.paths:
            assert "29A" not in path.courses_taken()

    def test_avoiding_a_goal_course_kills_all_paths(self, fig3_catalog):
        config = ExplorationConfig(avoid_courses=frozenset({"21A"}))
        result = generate_goal_driven(fig3_catalog, F11, GOAL, S13, config=config)
        assert result.path_count == 0

    def test_frontier_respects_avoid(self, fig3_catalog):
        config = ExplorationConfig(avoid_courses=frozenset({"21A"}))
        assert (
            frontier_count_goal_paths(
                fig3_catalog, F11, GOAL, S13, config=config
            ).path_count
            == 0
        )


class TestCompletedAtStart:
    def test_partial_credit_shrinks_search(self, fig3_catalog):
        full = generate_goal_driven(fig3_catalog, F11, GOAL, S13)
        partial = generate_goal_driven(
            fig3_catalog, F11, GOAL, S13, completed={"29A"}
        )
        assert partial.graph.num_nodes <= full.graph.num_nodes
        for path in partial.paths():
            assert "29A" not in path.courses_taken()

    def test_all_completed_single_trivial_path(self, fig3_catalog):
        result = generate_goal_driven(
            fig3_catalog, F11, GOAL, S13, completed={"11A", "29A", "21A"}
        )
        assert result.path_count == 1
        assert len(next(result.paths())) == 0
