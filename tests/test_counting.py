"""Tests for merged-DAG counting and frontier-DP counting."""

import pytest

from repro.core import (
    ExplorationConfig,
    build_deadline_dag,
    build_goal_dag,
    count_deadline_paths,
    count_goal_paths,
    frontier_count_deadline_paths,
    frontier_count_goal_paths,
    generate_deadline_driven,
    generate_goal_driven,
)
from repro.errors import BudgetExceededError, ExplorationError
from repro.requirements import CourseSetGoal

from .conftest import F11, F12, S12, S13

GOAL = CourseSetGoal({"11A", "29A", "21A"})


class TestDeadlineDagOnFig3:
    def test_count_matches_tree(self, fig3_catalog):
        tree = generate_deadline_driven(fig3_catalog, F11, S13)
        dag = build_deadline_dag(fig3_catalog, F11, S13)
        assert dag.path_count == tree.path_count == 3

    def test_dag_is_smaller_or_equal(self, fig3_catalog):
        tree = generate_deadline_driven(fig3_catalog, F11, S13)
        dag = build_deadline_dag(fig3_catalog, F11, S13)
        assert dag.dag.num_nodes <= tree.graph.num_nodes

    def test_merges_recorded(self, fig3_catalog):
        # On Fig. 3 all statuses are distinct, so no merges happen.
        dag = build_deadline_dag(fig3_catalog, F11, S13)
        assert dag.stats.merged_hits == 0
        assert dag.distinct_statuses == 9

    def test_convenience_wrapper(self, fig3_catalog):
        assert count_deadline_paths(fig3_catalog, F11, S13) == 3

    def test_budget(self, fig3_catalog):
        with pytest.raises(BudgetExceededError):
            build_deadline_dag(
                fig3_catalog, F11, S13, config=ExplorationConfig(max_nodes=2)
            )

    def test_bad_horizon(self, fig3_catalog):
        with pytest.raises(ExplorationError):
            build_deadline_dag(fig3_catalog, S13, F11)


class TestGoalDagOnFig3:
    def test_count_matches_tree(self, fig3_catalog):
        tree = generate_goal_driven(fig3_catalog, F11, GOAL, F12)
        dag = build_goal_dag(fig3_catalog, F11, GOAL, F12)
        assert dag.path_count == tree.path_count == 1

    def test_pruning_stats_propagated(self, fig3_catalog):
        dag = build_goal_dag(fig3_catalog, F11, GOAL, F12)
        assert dag.pruning_stats is not None
        assert dag.pruning_stats.total >= 1

    def test_convenience_wrapper(self, fig3_catalog):
        assert count_goal_paths(fig3_catalog, F11, GOAL, F12) == 1

    def test_no_pruners_same_count(self, fig3_catalog):
        assert count_goal_paths(fig3_catalog, F11, GOAL, F12) == build_goal_dag(
            fig3_catalog, F11, GOAL, F12, pruners=[]
        ).path_count


class TestFrontierOnFig3:
    def test_deadline_count(self, fig3_catalog):
        result = frontier_count_deadline_paths(fig3_catalog, F11, S13)
        assert result.path_count == 3
        assert result.peak_frontier >= 1
        assert result.layer_widths[0] == 1

    def test_goal_count(self, fig3_catalog):
        result = frontier_count_goal_paths(fig3_catalog, F11, GOAL, F12)
        assert result.path_count == 1
        assert result.pruning_stats is not None

    def test_goal_count_longer_horizon(self, fig3_catalog):
        tree = generate_goal_driven(fig3_catalog, F11, GOAL, S13)
        frontier = frontier_count_goal_paths(fig3_catalog, F11, GOAL, S13)
        assert frontier.path_count == tree.path_count

    def test_frontier_budget(self, fig3_catalog):
        with pytest.raises(BudgetExceededError) as excinfo:
            frontier_count_deadline_paths(fig3_catalog, F11, S13, max_frontier=1)
        assert excinfo.value.kind == "frontier states"

    def test_zero_horizon(self, fig3_catalog):
        result = frontier_count_deadline_paths(fig3_catalog, F11, F11)
        assert result.path_count == 1

    def test_goal_already_satisfied(self, fig3_catalog):
        result = frontier_count_goal_paths(
            fig3_catalog, F11, CourseSetGoal({"11A"}), S13, completed={"11A"}
        )
        assert result.path_count == 1

    def test_bad_inputs(self, fig3_catalog):
        with pytest.raises(ExplorationError):
            frontier_count_goal_paths(fig3_catalog, S13, GOAL, F11)
        with pytest.raises(ExplorationError):
            frontier_count_deadline_paths(fig3_catalog, F11, S13, completed={"99Z"})
