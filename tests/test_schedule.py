"""Tests for schedules and offering-probability models."""

import pytest

from repro.catalog import (
    DeterministicOfferings,
    HistoricalOfferingModel,
    Schedule,
)
from repro.errors import CatalogError
from repro.semester import Term

F11, S12, F12, S13, F13 = (
    Term(2011, "Fall"),
    Term(2012, "Spring"),
    Term(2012, "Fall"),
    Term(2013, "Spring"),
    Term(2013, "Fall"),
)


@pytest.fixture
def fig3_schedule():
    """The paper's Fig. 3 schedule."""
    return Schedule(
        {
            "11A": {F11, F12},
            "29A": {F11, F12},
            "21A": {S12},
        }
    )


class TestScheduleQueries:
    def test_offerings(self, fig3_schedule):
        assert fig3_schedule.offerings("11A") == {F11, F12}
        assert fig3_schedule.offerings("21A") == {S12}

    def test_offerings_unknown_course_empty(self, fig3_schedule):
        assert fig3_schedule.offerings("99Z") == frozenset()

    def test_is_offered(self, fig3_schedule):
        assert fig3_schedule.is_offered("11A", F11)
        assert not fig3_schedule.is_offered("11A", S12)

    def test_offered_in(self, fig3_schedule):
        assert fig3_schedule.offered_in(F11) == {"11A", "29A"}
        assert fig3_schedule.offered_in(S12) == {"21A"}
        assert fig3_schedule.offered_in(S13) == frozenset()

    def test_offered_between(self, fig3_schedule):
        assert fig3_schedule.offered_between(S12, F12) == {"21A", "11A", "29A"}
        assert fig3_schedule.offered_between(S13, F13) == frozenset()

    def test_course_ids_terms_span(self, fig3_schedule):
        assert fig3_schedule.course_ids() == {"11A", "29A", "21A"}
        assert fig3_schedule.terms() == {F11, S12, F12}
        assert fig3_schedule.span() == (F11, F12)

    def test_empty_schedule(self):
        schedule = Schedule()
        assert schedule.span() is None
        assert len(schedule) == 0
        assert schedule.offered_in(F11) == frozenset()

    def test_mapping_protocol(self, fig3_schedule):
        assert "11A" in fig3_schedule
        assert "99Z" not in fig3_schedule
        assert set(fig3_schedule) == {"11A", "29A", "21A"}
        assert len(fig3_schedule) == 3

    def test_equality(self, fig3_schedule):
        clone = Schedule({"11A": {F11, F12}, "29A": {F11, F12}, "21A": {S12}})
        assert clone == fig3_schedule
        assert hash(clone) == hash(fig3_schedule)

    def test_non_term_rejected(self):
        with pytest.raises(TypeError):
            Schedule({"A": {"Fall 2011"}})


class TestScheduleDerivation:
    def test_merged_with(self, fig3_schedule):
        extra = Schedule({"11A": {S13}, "99Z": {S13}})
        merged = fig3_schedule.merged_with(extra)
        assert merged.offerings("11A") == {F11, F12, S13}
        assert merged.offerings("99Z") == {S13}

    def test_restricted_to(self, fig3_schedule):
        window = fig3_schedule.restricted_to(S12, F12)
        assert window.offerings("11A") == {F12}
        assert "29A" in window
        assert window.offerings("21A") == {S12}

    def test_restricted_drops_empty_courses(self, fig3_schedule):
        window = fig3_schedule.restricted_to(S13, F13)
        assert len(window) == 0

    def test_without_courses(self, fig3_schedule):
        reduced = fig3_schedule.without_courses({"21A"})
        assert "21A" not in reduced
        assert "11A" in reduced

    def test_dict_roundtrip(self, fig3_schedule):
        assert Schedule.from_dict(fig3_schedule.to_dict()) == fig3_schedule


class TestDeterministicOfferings:
    def test_probability(self, fig3_schedule):
        model = DeterministicOfferings(fig3_schedule)
        assert model.probability("11A", F11) == 1.0
        assert model.probability("11A", S12) == 0.0

    def test_selection_probability(self, fig3_schedule):
        model = DeterministicOfferings(fig3_schedule)
        assert model.selection_probability({"11A", "29A"}, F11) == 1.0
        assert model.selection_probability({"11A", "21A"}, F11) == 0.0
        assert model.selection_probability(frozenset(), S13) == 1.0


class TestHistoricalOfferingModel:
    @pytest.fixture
    def model(self, fig3_schedule):
        # History window Spring '09 – Fall '10 (2 springs, 2 falls):
        # 11A offered both falls, 21A offered one of the two springs.
        history = Schedule(
            {
                "11A": {Term(2009, "Fall"), Term(2010, "Fall")},
                "21A": {Term(2010, "Spring")},
            }
        )
        return HistoricalOfferingModel.from_history(
            history,
            Term(2009, "Spring"),
            Term(2010, "Fall"),
            released=fig3_schedule,
            release_horizon_end=S12,
        )

    def test_inside_horizon_is_certain(self, model):
        assert model.probability("11A", F11) == 1.0
        assert model.probability("21A", F11) == 0.0
        assert model.probability("21A", S12) == 1.0

    def test_beyond_horizon_uses_frequency(self, model):
        assert model.probability("11A", F12) == 1.0  # offered 2/2 falls
        assert model.probability("21A", Term(2013, "Spring")) == 0.5  # 1/2 springs
        assert model.probability("21A", F12) == 0.0  # never offered in fall

    def test_unknown_course_is_zero(self, model):
        assert model.probability("99Z", F12) == 0.0

    def test_bad_probability_rejected(self, fig3_schedule):
        with pytest.raises(CatalogError):
            HistoricalOfferingModel(fig3_schedule, S12, {("11A", "Fall"): 1.5})

    def test_projected_schedule(self, model):
        projected = model.projected_schedule(["11A", "21A"], F11, F13, threshold=0.0)
        # 11A: certain F11, frequency 1.0 in F12/F13; never in springs.
        assert projected.offerings("11A") == {F11, F12, F13}
        # 21A: certain S12; frequency 0.5 in S13.
        assert projected.offerings("21A") == {S12, S13}

    def test_projected_schedule_threshold(self, model):
        projected = model.projected_schedule(["21A"], F11, F13, threshold=0.6)
        assert projected.offerings("21A") == {S12}
