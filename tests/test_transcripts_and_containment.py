"""Tests for transcript simulation and the §5.2 containment experiment."""

import pytest

from repro.analysis import check_containment, is_generated_goal_path
from repro.core import ExplorationConfig, generate_goal_driven
from repro.data import simulate_transcripts
from repro.data.generator import GeneratorSettings, random_catalog
from repro.errors import ExplorationError
from repro.graph import EnrollmentStatus, LearningPath
from repro.requirements import CourseSetGoal
from repro.semester import Term

from .conftest import F11, F12, S12, S13

GOAL = CourseSetGoal({"11A", "29A", "21A"})


def _path(statuses_and_selections):
    statuses, selections = statuses_and_selections
    return LearningPath(statuses, selections)


def _fig3_goal_path():
    s0 = EnrollmentStatus(F11, frozenset())
    s1 = EnrollmentStatus(S12, frozenset({"11A", "29A"}))
    s2 = EnrollmentStatus(F12, frozenset({"11A", "29A", "21A"}))
    return LearningPath(
        [s0, s1, s2], [frozenset({"11A", "29A"}), frozenset({"21A"})]
    )


class TestIsGeneratedGoalPath:
    def test_valid_path_contained(self, fig3_catalog):
        verdict, reason = is_generated_goal_path(
            fig3_catalog, GOAL, _fig3_goal_path(), F12
        )
        assert verdict, reason

    def test_goal_not_reached(self, fig3_catalog):
        s0 = EnrollmentStatus(F11, frozenset())
        s1 = EnrollmentStatus(S12, frozenset({"11A"}))
        path = LearningPath([s0, s1], [frozenset({"11A"})])
        verdict, reason = is_generated_goal_path(fig3_catalog, GOAL, path, F12)
        assert not verdict
        assert "does not satisfy" in reason

    def test_illegal_selection_detected(self, fig3_catalog):
        # 21A in Fall '11: not offered and prerequisite unmet.
        s0 = EnrollmentStatus(F11, frozenset())
        s1 = EnrollmentStatus(S12, frozenset({"21A"}))
        path = LearningPath([s0, s1], [frozenset({"21A"})])
        verdict, reason = is_generated_goal_path(fig3_catalog, GOAL, path, S13)
        assert not verdict
        assert "not a legal move" in reason

    def test_continuing_past_goal_rejected(self, fig3_catalog):
        # The generator ends paths at the first goal status; a transcript
        # that keeps taking courses afterwards is not one of its outputs.
        base = _fig3_goal_path()
        extra = EnrollmentStatus(S13, base.end.completed)
        path = base.extended(frozenset(), extra)
        verdict, reason = is_generated_goal_path(fig3_catalog, GOAL, path, S13)
        assert not verdict
        assert "already satisfied" in reason

    def test_past_deadline_rejected(self, fig3_catalog):
        verdict, reason = is_generated_goal_path(
            fig3_catalog, GOAL, _fig3_goal_path(), S12
        )
        assert not verdict

    def test_over_cap_selection_rejected(self, fig3_catalog):
        config = ExplorationConfig(max_courses_per_term=1)
        verdict, reason = is_generated_goal_path(
            fig3_catalog, GOAL, _fig3_goal_path(), F12, config=config
        )
        assert not verdict

    def test_agrees_with_generated_set(self, fig3_catalog):
        result = generate_goal_driven(fig3_catalog, F11, GOAL, S13)
        for path in result.paths():
            verdict, reason = is_generated_goal_path(fig3_catalog, GOAL, path, S13)
            assert verdict, reason


class TestCheckContainment:
    def test_report_all_contained(self, fig3_catalog):
        report = check_containment(fig3_catalog, GOAL, [_fig3_goal_path()], F12)
        assert report.all_contained
        assert report.summary() == "1/1 paths contained"
        assert report.containment_rate == 1.0

    def test_report_with_failure(self, fig3_catalog):
        bad = LearningPath([EnrollmentStatus(F11, frozenset())], [])
        report = check_containment(
            fig3_catalog, GOAL, [_fig3_goal_path(), bad], F12
        )
        assert not report.all_contained
        assert report.contained == 1
        assert len(report.failures) == 1
        index, reason = report.failures[0]
        assert index == 1

    def test_empty_report(self, fig3_catalog):
        report = check_containment(fig3_catalog, GOAL, [], F12)
        assert report.all_contained
        assert report.containment_rate == 1.0


class TestSimulateTranscripts:
    def test_simulation_on_fig3(self, fig3_catalog):
        body = simulate_transcripts(
            fig3_catalog, GOAL, F11, S13, count=10, seed=7
        )
        assert len(body.paths) == 10
        assert body.successes == 10
        assert 0 < body.success_rate <= 1.0
        for path in body.paths:
            assert GOAL.is_satisfied(path.end.completed)

    def test_simulated_paths_all_contained(self, fig3_catalog):
        """The §5.2 invariant: every feasible student path is generated."""
        body = simulate_transcripts(fig3_catalog, GOAL, F11, S13, count=15, seed=3)
        report = check_containment(fig3_catalog, GOAL, body.paths, S13)
        assert report.all_contained, report.failures

    def test_deterministic_for_seed(self, fig3_catalog):
        a = simulate_transcripts(fig3_catalog, GOAL, F11, S13, count=5, seed=42)
        b = simulate_transcripts(fig3_catalog, GOAL, F11, S13, count=5, seed=42)
        assert [p.selections for p in a.paths] == [p.selections for p in b.paths]

    def test_different_seeds_differ(self, fig3_catalog):
        # A two-course goal admits several distinct orderings, so two seeds
        # should not reproduce the same 12-student sequence.
        goal = CourseSetGoal({"11A", "29A"})
        a = simulate_transcripts(fig3_catalog, goal, F11, S13, count=12, seed=1)
        b = simulate_transcripts(fig3_catalog, goal, F11, S13, count=12, seed=2)
        assert [p.selections for p in a.paths] != [p.selections for p in b.paths]

    def test_infeasible_goal_raises(self, fig3_catalog):
        with pytest.raises(ExplorationError, match="infeasible"):
            simulate_transcripts(
                fig3_catalog,
                CourseSetGoal({"21A"}),
                F11,
                S12,  # 21A cannot be completed by Spring '12
                count=1,
                max_attempts=10,
            )

    def test_simulation_on_random_catalogs(self):
        catalog = random_catalog(5, GeneratorSettings(n_courses=6, n_terms=4, offer_probability=0.8))
        start = Term(2011, "Fall")
        goal = CourseSetGoal({sorted(catalog.course_ids())[0]})
        body = simulate_transcripts(catalog, goal, start, start + 4, count=5, seed=1)
        report = check_containment(catalog, goal, body.paths, start + 4)
        assert report.all_contained, report.failures
