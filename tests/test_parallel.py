"""Equivalence tests for the process-sharded engine (repro.parallel).

The headline property: for the tree modes, a parallel run is
byte-identical to the serial generator — same path sequences, node
counts, stats counters, prune tallies, and ``--explain`` event streams —
for any worker count and split depth.  Ranked mode matches on the cost
list (and on the path *set* when ``k`` is exhaustive); frontier counting
matches on path counts and terminal tallies.  Covered on the Brandeis
catalog and on random catalogs, with and without a cache, plus budget
aborts (clean worker shutdown), input validation, and the CLI surface.
"""

import multiprocessing
import re

import pytest

from repro.cache import ExplorationCache
from repro.core import (
    ExplorationConfig,
    generate_deadline_driven,
    generate_goal_driven,
    generate_ranked,
)
from repro.core.frontier import (
    frontier_count_deadline_paths,
    frontier_count_goal_paths,
)
from repro.core.pruning import PruningStats
from repro.core.ranking import TimeRanking
from repro.data import (
    GeneratorSettings,
    brandeis_catalog,
    random_catalog,
    random_course_set_goal,
)
from repro.errors import BudgetExceededError, ExplorationError
from repro.obs import DecisionRecorder, Observability
from repro.parallel import (
    parallel_count_deadline_paths,
    parallel_count_goal_paths,
    parallel_deadline_driven,
    parallel_goal_driven,
    parallel_ranked,
    resolve_split_depth,
    resolve_workers,
)
from repro.requirements import CourseSetGoal
from repro.semester import Term
from repro.system.cli import main as cli_main
from repro.system.navigator import CourseNavigator

START = Term(2013, "Fall")
MID = Term(2014, "Fall")
END = Term(2015, "Fall")
GOAL = CourseSetGoal({"COSI 11a", "COSI 21a", "COSI 29a"})
CONFIG = ExplorationConfig(max_courses_per_term=3)

TREE_GRIDS = [(1, 1), (2, 1), (2, 2), (4, 2)]


def path_seq(result):
    """The exact path sequence (order-sensitive) as comparable keys."""
    return [
        (
            tuple(str(status.term) for status in path.statuses),
            tuple(tuple(sorted(sel)) for sel in path.selections),
        )
        for path in result.paths()
    ]


def path_set(paths):
    """An order-insensitive key for a ranked path list."""
    return {
        (
            tuple(str(status.term) for status in path.statuses),
            tuple(tuple(sorted(sel)) for sel in path.selections),
        )
        for path in paths
    }


def stats_key(stats):
    key = stats.as_dict()
    key.pop("elapsed_seconds")  # wall time is the one permitted difference
    return key


@pytest.fixture(scope="module")
def brandeis():
    return brandeis_catalog()


@pytest.fixture(scope="module")
def serial_goal(brandeis):
    recorder = DecisionRecorder(keep_events=True)
    result = generate_goal_driven(
        brandeis, START, GOAL, END, config=CONFIG,
        obs=Observability(decisions=recorder),
    )
    return result, recorder


@pytest.fixture(scope="module")
def serial_deadline(brandeis):
    return generate_deadline_driven(brandeis, START, MID, config=CONFIG)


class TestGoalEquivalence:
    @pytest.mark.parametrize("workers,split", TREE_GRIDS)
    def test_brandeis_byte_identical(self, brandeis, serial_goal, workers, split):
        serial, serial_recorder = serial_goal
        recorder = DecisionRecorder(keep_events=True)
        par = parallel_goal_driven(
            brandeis, START, GOAL, END, config=CONFIG,
            obs=Observability(decisions=recorder),
            workers=workers, split_depth=split,
        )
        assert par.path_count == serial.path_count
        assert par.graph.num_nodes == serial.graph.num_nodes
        assert path_seq(par) == path_seq(serial)
        assert stats_key(par.stats) == stats_key(serial.stats)
        assert par.pruning_stats.as_dict() == serial.pruning_stats.as_dict()
        assert [e.as_dict() for e in recorder.events] == [
            e.as_dict() for e in serial_recorder.events
        ]

    def test_cached_parallel_matches_uncached_serial(self, brandeis, serial_goal):
        serial, _ = serial_goal
        cache = ExplorationCache()
        par = parallel_goal_driven(
            brandeis, START, GOAL, END, config=CONFIG,
            cache=cache, workers=2, split_depth=2,
        )
        assert path_seq(par) == path_seq(serial)
        assert stats_key(par.stats) == stats_key(serial.stats)
        # Worker cache traffic is folded back into the parent's totals.
        totals = cache.counter_totals()
        assert sum(c["hits"] + c["misses"] for c in totals.values()) > 0

    def test_unpruned_baseline_matches(self, brandeis):
        serial = generate_goal_driven(
            brandeis, START, GOAL, MID, config=CONFIG, pruners=[]
        )
        par = parallel_goal_driven(
            brandeis, START, GOAL, MID, config=CONFIG, pruners=[],
            workers=2, split_depth=1,
        )
        assert path_seq(par) == path_seq(serial)
        assert par.pruning_stats.total == 0


class TestDeadlineEquivalence:
    @pytest.mark.parametrize("workers,split", [(2, 1), (2, 2)])
    def test_brandeis_byte_identical(self, brandeis, serial_deadline, workers, split):
        par = parallel_deadline_driven(
            brandeis, START, MID, config=CONFIG,
            workers=workers, split_depth=split,
        )
        assert par.path_count == serial_deadline.path_count
        assert par.graph.num_nodes == serial_deadline.graph.num_nodes
        assert path_seq(par) == path_seq(serial_deadline)
        assert stats_key(par.stats) == stats_key(serial_deadline.stats)


class TestRankedEquivalence:
    @pytest.mark.parametrize("workers,split", [(2, 1), (2, 2), (4, 2)])
    def test_costs_identical(self, brandeis, workers, split):
        ranking = TimeRanking()
        serial = generate_ranked(
            brandeis, START, GOAL, END, k=10, ranking=ranking, config=CONFIG
        )
        par = parallel_ranked(
            brandeis, START, GOAL, END, k=10, ranking=ranking, config=CONFIG,
            workers=workers, split_depth=split,
        )
        assert par.costs == serial.costs
        assert len(par.paths) == len(serial.paths)

    def test_exhaustive_k_path_sets_equal(self, brandeis):
        ranking = TimeRanking()
        serial = generate_ranked(
            brandeis, START, GOAL, MID, k=100_000, ranking=ranking, config=CONFIG
        )
        par = parallel_ranked(
            brandeis, START, GOAL, MID, k=100_000, ranking=ranking, config=CONFIG,
            workers=2, split_depth=1,
        )
        assert par.costs == serial.costs
        assert path_set(par.paths) == path_set(serial.paths)
        assert par.exhausted == serial.exhausted

    def test_rejects_decision_recording(self, brandeis):
        with pytest.raises(ExplorationError, match="serially"):
            parallel_ranked(
                brandeis, START, GOAL, END, k=5, ranking=TimeRanking(),
                config=CONFIG, workers=2,
                obs=Observability(decisions=DecisionRecorder(keep_events=True)),
            )


class TestFrontierEquivalence:
    @pytest.mark.parametrize("workers,split", [(2, 1), (2, 2), (4, 2)])
    def test_goal_counts_exact(self, brandeis, serial_goal, workers, split):
        serial = frontier_count_goal_paths(
            brandeis, START, GOAL, END, config=CONFIG
        )
        par = parallel_count_goal_paths(
            brandeis, START, GOAL, END, config=CONFIG,
            workers=workers, split_depth=split,
        )
        assert par.path_count == serial.path_count == serial_goal[0].path_count
        assert par.terminal_path_counts == serial.terminal_path_counts

    def test_deadline_counts_exact(self, brandeis, serial_deadline):
        serial = frontier_count_deadline_paths(brandeis, START, MID, config=CONFIG)
        par = parallel_count_deadline_paths(
            brandeis, START, MID, config=CONFIG, workers=2, split_depth=1,
        )
        assert par.path_count == serial.path_count == serial_deadline.path_count
        assert par.terminal_path_counts == serial.terminal_path_counts

    def test_widths_are_upper_bounds(self, brandeis):
        serial = frontier_count_goal_paths(brandeis, START, GOAL, END, config=CONFIG)
        par = parallel_count_goal_paths(
            brandeis, START, GOAL, END, config=CONFIG, workers=2, split_depth=2,
        )
        assert par.total_states >= serial.total_states
        assert par.peak_frontier >= serial.peak_frontier

    def test_rejects_decision_recording(self, brandeis):
        with pytest.raises(ExplorationError, match="serially"):
            parallel_count_goal_paths(
                brandeis, START, GOAL, END, config=CONFIG, workers=2,
                obs=Observability(decisions=DecisionRecorder(keep_events=True)),
            )


class TestRandomCatalogs:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_goal_equivalence(self, seed):
        settings = GeneratorSettings(n_courses=10, n_terms=4)
        catalog = random_catalog(seed, settings)
        goal = random_course_set_goal(catalog, seed, size=2)
        start = settings.start_term
        end = start + (settings.n_terms - 1)
        serial = generate_goal_driven(catalog, start, goal, end, config=CONFIG)
        par = parallel_goal_driven(
            catalog, start, goal, end, config=CONFIG, workers=2, split_depth=1,
        )
        assert path_seq(par) == path_seq(serial)
        assert stats_key(par.stats) == stats_key(serial.stats)
        assert par.pruning_stats.as_dict() == serial.pruning_stats.as_dict()

    @pytest.mark.parametrize("seed", [1, 2])
    def test_deadline_and_counts(self, seed):
        settings = GeneratorSettings(n_courses=10, n_terms=4)
        catalog = random_catalog(seed, settings)
        start = settings.start_term
        end = start + (settings.n_terms - 1)
        serial = generate_deadline_driven(catalog, start, end, config=CONFIG)
        par = parallel_deadline_driven(
            catalog, start, end, config=CONFIG, workers=2, split_depth=1,
        )
        assert path_seq(par) == path_seq(serial)
        count = parallel_count_deadline_paths(
            catalog, start, end, config=CONFIG, workers=2, split_depth=1,
        )
        assert count.path_count == serial.path_count


class TestBudgetAbort:
    def test_max_nodes_aborts_both_ways_and_workers_exit(self, brandeis):
        config = ExplorationConfig(max_courses_per_term=3, max_nodes=500)
        with pytest.raises(BudgetExceededError) as serial_exc:
            generate_goal_driven(brandeis, START, GOAL, END, config=config)
        with pytest.raises(BudgetExceededError) as par_exc:
            parallel_goal_driven(
                brandeis, START, GOAL, END, config=config,
                workers=2, split_depth=1,
            )
        assert serial_exc.value.kind == par_exc.value.kind == "nodes"
        assert par_exc.value.limit == 500
        assert par_exc.value.partial_stats is not None
        assert par_exc.value.partial_stats.nodes_created > 0
        # The pool is shut down with cancel_futures before the abort
        # propagates — no orphaned worker processes.
        assert multiprocessing.active_children() == []

    def test_success_preserved_when_tree_fits(self, brandeis, serial_deadline):
        fits = ExplorationConfig(
            max_courses_per_term=3,
            max_nodes=serial_deadline.graph.num_nodes,
        )
        par = parallel_deadline_driven(
            brandeis, START, MID, config=fits, workers=2, split_depth=1,
        )
        assert par.path_count == serial_deadline.path_count


class TestValidationAndHelpers:
    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        with pytest.raises(ExplorationError):
            resolve_workers(-1)

    def test_resolve_split_depth(self):
        assert resolve_split_depth(3, horizon=8) == 3
        assert resolve_split_depth(None, horizon=1) == 1
        assert resolve_split_depth(None, horizon=4) == 2
        with pytest.raises(ExplorationError):
            resolve_split_depth(0, horizon=4)

    def test_end_before_start_rejected(self, brandeis):
        with pytest.raises(ExplorationError):
            parallel_goal_driven(
                brandeis, END, GOAL, START, config=CONFIG, workers=2
            )

    def test_pruning_stats_merge_sums(self):
        left = PruningStats()
        left.record("time_based", 2)
        right = PruningStats()
        right.record("time_based", 1)
        right.record("availability", 4)
        assert left.merge(right) is left
        assert left.as_dict() == {"time_based": 3, "availability": 4}
        assert left.total == 7


class TestNavigatorRouting:
    def test_explore_goal_workers_kwarg(self, brandeis):
        navigator = CourseNavigator(brandeis)
        serial = navigator.explore_goal(START, GOAL, MID, config=CONFIG)
        par = navigator.explore_goal(
            START, GOAL, MID, config=CONFIG, workers=2, split_depth=1
        )
        assert path_seq(par) == path_seq(serial)

    def test_count_goal_workers_kwarg(self, brandeis):
        navigator = CourseNavigator(brandeis)
        assert navigator.count_goal(
            START, GOAL, MID, config=CONFIG, workers=2
        ) == navigator.count_goal(START, GOAL, MID, config=CONFIG)


TIMING = re.compile(r"\([0-9.]+s\)")


def run_cli(capsys, *argv):
    code = cli_main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestCli:
    GOAL_ARGS = (
        "goal",
        "--start", "Fall 2013",
        "--end", "Fall 2014",
        "--goal-courses", "COSI 11a", "COSI 21a", "COSI 29a",
        "--limit", "3",
    )

    def test_workers_stdout_identical_modulo_timing(self, capsys):
        code_s, out_s, _ = run_cli(capsys, *self.GOAL_ARGS)
        code_p, out_p, _ = run_cli(capsys, *self.GOAL_ARGS, "--workers", "2")
        assert code_s == code_p == 0
        assert TIMING.sub("(T)", out_p) == TIMING.sub("(T)", out_s)

    def test_workers_zero_is_auto(self, capsys):
        code, out, _ = run_cli(capsys, *self.GOAL_ARGS, "--workers", "0")
        assert code == 0
        assert "goal paths" in out

    def test_count_only_with_workers(self, capsys):
        code_s, out_s, _ = run_cli(capsys, *self.GOAL_ARGS[:-2], "--count-only")
        code_p, out_p, _ = run_cli(
            capsys, *self.GOAL_ARGS[:-2], "--count-only", "--workers", "2"
        )
        assert code_s == code_p == 0
        assert out_p == out_s
        assert out_p.startswith("48 goal paths")

    def test_ranked_explain_with_workers_exits_2(self, capsys, tmp_path):
        code, _out, err = run_cli(
            capsys,
            "ranked",
            "--start", "Fall 2013",
            "--end", "Fall 2014",
            "--goal-courses", "COSI 11a", "COSI 21a", "COSI 29a",
            "--workers", "2",
            "--explain", str(tmp_path / "audit.jsonl"),
        )
        assert code == 2
        assert "serially" in err

    def test_negative_workers_exits_2(self, capsys):
        code, _out, err = run_cli(capsys, *self.GOAL_ARGS, "--workers", "-1")
        assert code == 2
        assert "workers" in err
