"""Tests for the from-scratch max-flow solvers."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.requirements.flow import FlowNetwork, max_flow

try:
    import networkx as nx
except ImportError:  # pragma: no cover
    nx = None


def _classic_network():
    """The CLRS example network with max flow 23."""
    network = FlowNetwork()
    edges = [
        ("s", "v1", 16),
        ("s", "v2", 13),
        ("v1", "v3", 12),
        ("v2", "v1", 4),
        ("v2", "v4", 14),
        ("v3", "v2", 9),
        ("v3", "t", 20),
        ("v4", "v3", 7),
        ("v4", "t", 4),
    ]
    for u, v, c in edges:
        network.add_edge(u, v, c)
    return network


class TestFlowNetworkBasics:
    def test_capacity_accumulates(self):
        network = FlowNetwork()
        network.add_edge("a", "b", 2)
        network.add_edge("a", "b", 3)
        assert network.capacity("a", "b") == 5

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlowNetwork().add_edge("a", "b", -1)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            FlowNetwork().add_edge("a", "a", 1)

    def test_same_source_sink_rejected(self):
        network = FlowNetwork()
        network.add_edge("a", "b", 1)
        with pytest.raises(ValueError):
            network.max_flow("a", "a")

    def test_missing_nodes_give_zero(self):
        network = FlowNetwork()
        network.add_edge("a", "b", 1)
        assert network.max_flow("a", "z") == 0

    def test_unknown_method_rejected(self):
        network = FlowNetwork()
        network.add_edge("a", "b", 1)
        with pytest.raises(ValueError, match="unknown method"):
            network.max_flow("a", "b", method="push_relabel")

    def test_nodes_iteration(self):
        network = FlowNetwork()
        network.add_node("x")
        network.add_edge("a", "b", 1)
        assert set(network.nodes()) == {"x", "a", "b"}


class TestMaxFlowValues:
    @pytest.mark.parametrize("method", ["dinic", "edmonds_karp"])
    def test_single_edge(self, method):
        network = FlowNetwork()
        network.add_edge("s", "t", 7)
        assert network.max_flow("s", "t", method=method) == 7

    @pytest.mark.parametrize("method", ["dinic", "edmonds_karp"])
    def test_series_bottleneck(self, method):
        network = FlowNetwork()
        network.add_edge("s", "m", 10)
        network.add_edge("m", "t", 3)
        assert network.max_flow("s", "t", method=method) == 3

    @pytest.mark.parametrize("method", ["dinic", "edmonds_karp"])
    def test_parallel_paths(self, method):
        network = FlowNetwork()
        network.add_edge("s", "a", 4)
        network.add_edge("a", "t", 4)
        network.add_edge("s", "b", 5)
        network.add_edge("b", "t", 5)
        assert network.max_flow("s", "t", method=method) == 9

    @pytest.mark.parametrize("method", ["dinic", "edmonds_karp"])
    def test_disconnected(self, method):
        network = FlowNetwork()
        network.add_edge("s", "a", 4)
        network.add_edge("b", "t", 4)
        assert network.max_flow("s", "t", method=method) == 0

    @pytest.mark.parametrize("method", ["dinic", "edmonds_karp"])
    def test_clrs_network(self, method):
        assert _classic_network().max_flow("s", "t", method=method) == 23

    @pytest.mark.parametrize("method", ["dinic", "edmonds_karp"])
    def test_needs_residual_rerouting(self, method):
        # The classic diamond where a greedy path must be undone.
        network = FlowNetwork()
        for u, v, c in [
            ("s", "a", 1),
            ("s", "b", 1),
            ("a", "b", 1),
            ("a", "t", 1),
            ("b", "t", 1),
        ]:
            network.add_edge(u, v, c)
        assert network.max_flow("s", "t", method=method) == 2

    def test_repeated_solves_are_independent(self):
        network = _classic_network()
        assert network.max_flow("s", "t") == 23
        assert network.max_flow("s", "t") == 23
        assert network.max_flow("s", "t", method="edmonds_karp") == 23

    def test_flow_on_reports_solution(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 3)
        network.add_edge("a", "t", 3)
        network.max_flow("s", "t")
        assert network.flow_on("s", "a") == 3
        assert network.flow_on("a", "t") == 3
        assert network.flow_on("t", "a") == 0

    def test_bipartite_matching(self):
        # 3 courses, 2 groups with capacities 1 and 2.
        network = FlowNetwork()
        network.add_edge("src", "c1", 1)
        network.add_edge("src", "c2", 1)
        network.add_edge("src", "c3", 1)
        network.add_edge("c1", "g1", 1)
        network.add_edge("c2", "g1", 1)
        network.add_edge("c2", "g2", 1)
        network.add_edge("c3", "g2", 1)
        network.add_edge("g1", "snk", 1)
        network.add_edge("g2", "snk", 2)
        assert network.max_flow("src", "snk") == 3

    def test_one_shot_helper(self):
        assert max_flow([("s", "t", 5)], "s", "t") == 5
        assert max_flow([("s", "t", 5)], "s", "t", method="edmonds_karp") == 5


def _random_network(seed, n_nodes, n_edges, max_capacity=10):
    rng = random.Random(seed)
    network = FlowNetwork()
    network.add_node(0)
    network.add_node(n_nodes - 1)
    edges = []
    for _ in range(n_edges):
        u = rng.randrange(n_nodes)
        v = rng.randrange(n_nodes)
        if u == v:
            continue
        c = rng.randint(0, max_capacity)
        network.add_edge(u, v, c)
        edges.append((u, v, c))
    return network, edges


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_dinic_matches_edmonds_karp(seed):
    network, _edges = _random_network(seed, n_nodes=8, n_edges=16)
    assert network.max_flow(0, 7, method="dinic") == network.max_flow(
        0, 7, method="edmonds_karp"
    )


@pytest.mark.skipif(nx is None, reason="networkx unavailable")
@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_matches_networkx(seed):
    network, edges = _random_network(seed, n_nodes=7, n_edges=14)
    graph = nx.DiGraph()
    graph.add_nodes_from([0, 6])
    for u, v, c in edges:
        if graph.has_edge(u, v):
            graph[u][v]["capacity"] += c
        else:
            graph.add_edge(u, v, capacity=c)
    expected = nx.maximum_flow_value(graph, 0, 6) if graph.number_of_edges() else 0
    assert network.max_flow(0, 6) == expected
