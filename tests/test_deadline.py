"""Tests for Algorithm 1 (deadline-driven generation) — including an exact
reconstruction of the paper's Fig. 3 learning graph."""

import pytest

from repro.core import ExplorationConfig, generate_deadline_driven
from repro.errors import BudgetExceededError, ExplorationError
from repro.semester import Term

from .conftest import F11, F12, S12, S13


class TestFig3Reproduction:
    """Fig. 3: all learning paths from Fall '11 to Spring '13."""

    @pytest.fixture
    def result(self, fig3_catalog):
        return generate_deadline_driven(fig3_catalog, F11, S13)

    def test_node_count_matches_figure(self, result):
        # The figure shows exactly nine nodes n1..n9.
        assert result.graph.num_nodes == 9

    def test_three_output_paths(self, result):
        assert result.path_count == 3

    def test_exact_path_set(self, result):
        plans = {
            tuple((str(term), selection) for term, selection in path)
            for path in result.paths()
        }
        assert plans == {
            # n1 -> n2 -> n5 -> n8
            (
                ("Fall 2011", frozenset({"11A"})),
                ("Spring 2012", frozenset({"21A"})),
                ("Fall 2012", frozenset({"29A"})),
            ),
            # n1 -> n3 -> n6 (dead end at Fall '12)
            (
                ("Fall 2011", frozenset({"11A", "29A"})),
                ("Spring 2012", frozenset({"21A"})),
            ),
            # n1 -> n4 -> n7 -> n9 (empty move through Spring '12)
            (
                ("Fall 2011", frozenset({"29A"})),
                ("Spring 2012", frozenset()),
                ("Fall 2012", frozenset({"11A"})),
            ),
        }

    def test_terminal_kinds(self, result):
        # n8 and n9 stop at the end semester; n6 is a dead end.
        assert result.stats.terminal_count("deadline") == 2
        assert result.stats.terminal_count("dead_end") == 1

    def test_stats_counters(self, result):
        assert result.stats.nodes_created == 9
        assert result.stats.edges_created == 8
        assert result.stats.elapsed_seconds > 0


class TestEdgeCases:
    def test_start_equals_end(self, fig3_catalog):
        result = generate_deadline_driven(fig3_catalog, F11, F11)
        assert result.path_count == 1
        only = next(result.paths())
        assert len(only) == 0

    def test_end_before_start_rejected(self, fig3_catalog):
        with pytest.raises(ExplorationError):
            generate_deadline_driven(fig3_catalog, S12, F11)

    def test_unknown_completed_rejected(self, fig3_catalog):
        with pytest.raises(ExplorationError, match="not in catalog"):
            generate_deadline_driven(fig3_catalog, F11, S13, completed={"99Z"})

    def test_completed_courses_not_reoffered(self, fig3_catalog):
        result = generate_deadline_driven(fig3_catalog, F11, S12, completed={"11A"})
        for path in result.paths():
            assert "11A" not in path.courses_taken()

    def test_budget_exceeded(self, fig3_catalog):
        with pytest.raises(BudgetExceededError) as excinfo:
            generate_deadline_driven(
                fig3_catalog, F11, S13, config=ExplorationConfig(max_nodes=3)
            )
        assert excinfo.value.kind == "nodes"

    def test_m_equal_one(self, fig3_catalog):
        result = generate_deadline_driven(
            fig3_catalog, F11, S13, config=ExplorationConfig(max_courses_per_term=1)
        )
        for path in result.paths():
            assert all(len(sel) <= 1 for sel in path.selections)

    def test_avoid_courses(self, fig3_catalog):
        config = ExplorationConfig(avoid_courses=frozenset({"29A"}))
        result = generate_deadline_driven(fig3_catalog, F11, S13, config=config)
        for path in result.paths():
            assert "29A" not in path.courses_taken()

    def test_all_paths_respect_schedule_and_prereqs(self, fig3_catalog):
        result = generate_deadline_driven(fig3_catalog, F11, S13)
        for path in result.paths():
            completed = set()
            for term, selection in path:
                for course_id in selection:
                    assert fig3_catalog.schedule.is_offered(course_id, term)
                    assert fig3_catalog[course_id].prereq.evaluate(completed)
                completed |= selection

    def test_paths_are_prefix_free_outputs(self, fig3_catalog):
        # Every output path ends at a leaf: no output is a prefix of another.
        result = generate_deadline_driven(fig3_catalog, F11, S13)
        plans = [path.selections for path in result.paths()]
        for i, a in enumerate(plans):
            for j, b in enumerate(plans):
                if i != j:
                    assert a[: len(b)] != b
