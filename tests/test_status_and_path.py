"""Tests for EnrollmentStatus and LearningPath."""

import math

import pytest

from repro.catalog import Catalog, Course, DeterministicOfferings, Schedule
from repro.graph import EnrollmentStatus, LearningPath
from repro.semester import Term

F11, S12, F12 = Term(2011, "Fall"), Term(2012, "Spring"), Term(2012, "Fall")


class TestEnrollmentStatus:
    def test_sets_coerced(self):
        status = EnrollmentStatus(F11, {"A"}, {"B"})
        assert isinstance(status.completed, frozenset)
        assert isinstance(status.options, frozenset)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="options may not include"):
            EnrollmentStatus(F11, {"A"}, {"A", "B"})

    def test_equality_ignores_options(self):
        a = EnrollmentStatus(F11, {"A"}, {"B"})
        b = EnrollmentStatus(F11, {"A"}, frozenset())
        assert a == b
        assert hash(a) == hash(b)
        assert a.key == b.key

    def test_inequality_on_term_or_completed(self):
        a = EnrollmentStatus(F11, {"A"})
        assert a != EnrollmentStatus(S12, {"A"})
        assert a != EnrollmentStatus(F11, {"B"})

    def test_after_selection(self):
        status = EnrollmentStatus(F11, frozenset(), {"11A", "29A"})
        child = status.after_selection(frozenset({"11A"}), options={"21A"})
        assert child.term == S12
        assert child.completed == {"11A"}
        assert child.options == {"21A"}

    def test_after_selection_outside_options_rejected(self):
        status = EnrollmentStatus(F11, frozenset(), {"11A"})
        with pytest.raises(ValueError, match="not in options"):
            status.after_selection(frozenset({"29A"}))

    def test_describe(self):
        status = EnrollmentStatus(F11, {"11A"}, {"29A"})
        text = status.describe()
        assert "Fall '11" in text
        assert "11A" in text and "29A" in text


def _make_path():
    s0 = EnrollmentStatus(F11, frozenset(), {"11A", "29A"})
    s1 = EnrollmentStatus(S12, frozenset({"11A", "29A"}), {"21A"})
    s2 = EnrollmentStatus(F12, frozenset({"11A", "29A", "21A"}))
    return LearningPath([s0, s1, s2], [frozenset({"11A", "29A"}), frozenset({"21A"})])


class TestLearningPathValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LearningPath([], [])

    def test_selection_count_mismatch(self):
        s0 = EnrollmentStatus(F11, frozenset())
        with pytest.raises(ValueError, match="selections"):
            LearningPath([s0], [frozenset({"A"})])

    def test_terms_must_advance_one(self):
        s0 = EnrollmentStatus(F11, frozenset())
        s2 = EnrollmentStatus(F12, frozenset({"A"}))
        with pytest.raises(ValueError, match="advance one term"):
            LearningPath([s0, s2], [frozenset({"A"})])

    def test_completed_must_grow_by_selection(self):
        s0 = EnrollmentStatus(F11, frozenset())
        s1 = EnrollmentStatus(S12, frozenset({"B"}))
        with pytest.raises(ValueError, match="grow by exactly"):
            LearningPath([s0, s1], [frozenset({"A"})])

    def test_single_status_path(self):
        path = LearningPath([EnrollmentStatus(F11, frozenset())], [])
        assert len(path) == 0
        assert path.start == path.end


class TestLearningPathAccessors:
    def test_iteration_and_steps(self):
        path = _make_path()
        steps = path.steps()
        assert steps == [(F11, ("11A", "29A")), (S12, ("21A",))]
        assert len(path) == 2

    def test_courses_taken(self):
        assert _make_path().courses_taken() == {"11A", "29A", "21A"}

    def test_extended(self):
        path = _make_path()
        s3 = EnrollmentStatus(Term(2013, "Spring"), path.end.completed)
        longer = path.extended(frozenset(), s3)
        assert len(longer) == 3
        assert len(path) == 2  # original untouched

    def test_equality_and_hash(self):
        assert _make_path() == _make_path()
        assert hash(_make_path()) == hash(_make_path())

    def test_to_dict(self):
        data = _make_path().to_dict()
        assert data["start_term"] == "Fall 2011"
        assert data["steps"][0]["take"] == ["11A", "29A"]
        assert data["final_completed"] == ["11A", "21A", "29A"]


class TestLearningPathCosts:
    @pytest.fixture
    def catalog(self):
        return Catalog(
            [
                Course("11A", workload_hours=12),
                Course("29A", workload_hours=10),
                Course("21A", workload_hours=14),
            ],
            schedule=Schedule(
                {"11A": {F11}, "29A": {F11}, "21A": {S12}}
            ),
        )

    def test_length_cost(self):
        assert _make_path().length_cost() == 2

    def test_workload_cost(self, catalog):
        assert _make_path().workload_cost(catalog) == 12 + 10 + 14

    def test_reliability_certain_schedule(self, catalog):
        model = DeterministicOfferings(catalog.schedule)
        path = _make_path()
        assert path.reliability(model) == 1.0
        assert path.reliability_cost(model) == 0.0

    def test_reliability_zero_probability(self, catalog):
        # 21A is not offered in Fall; reroute the path through a bad term.
        model = DeterministicOfferings(Schedule({"11A": {F11}, "29A": {F11}}))
        path = _make_path()
        assert path.reliability(model) == 0.0
        assert path.reliability_cost(model) == math.inf

    def test_reliability_multiplies(self):
        class Half:
            def probability(self, course_id, term):
                return 0.5

            def selection_probability(self, ids, term):
                result = 1.0
                for _ in ids:
                    result *= 0.5
                return result

        path = _make_path()
        assert path.reliability(Half()) == pytest.approx(0.125)
        assert path.reliability_cost(Half()) == pytest.approx(-math.log(0.125))
